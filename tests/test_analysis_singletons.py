"""Unit tests for singleton and disjoint-or-equal analyses."""

from repro.analysis import (
    check_disjoint_or_equal,
    implied_disjoint_or_equal,
    implied_singletons,
    is_implied_singleton,
)
from repro.generators import workloads
from repro.inference import ClosureEngine
from repro.nfd import parse_nfds
from repro.paths import parse_path
from repro.types import parse_schema
from repro.values import set_cardinalities


class TestSingletons:
    def test_paper_example(self):
        # R:[D -> A:B], R:[D -> A:C]: A must be a singleton (Section 2.1).
        schema = parse_schema("R = {<A: {<B, C>}, D>}")
        sigma = parse_nfds("R:[D -> A:B]\nR:[D -> A:C]")
        assert implied_singletons(schema, sigma, "R") == [parse_path("A")]

    def test_partial_determination_is_not_enough(self):
        schema = parse_schema("R = {<A: {<B, C>}, D>}")
        sigma = parse_nfds("R:[D -> A:B]")
        assert implied_singletons(schema, sigma, "R") == []

    def test_acedb_singletons(self):
        schema = workloads.acedb_schema()
        singles = implied_singletons(schema, workloads.acedb_sigma(),
                                     "Gene")
        names = {str(p) for p in singles}
        assert "name" in names
        assert "map_position" in names
        assert "references" not in names

    def test_acedb_instance_respects_the_inference(self):
        instance = workloads.acedb_instance()
        cards = set_cardinalities(instance)
        assert all(c == 1 for c in cards[parse_path("Gene:name")])
        assert all(c == 1
                   for c in cards[parse_path("Gene:map_position")])

    def test_non_set_path(self):
        schema = parse_schema("R = {<A: {<B, C>}, D>}")
        engine = ClosureEngine(schema, [])
        assert not is_implied_singleton(engine, parse_path("R"),
                                        parse_path("D"))


class TestDisjointOrEqual:
    def test_university_example(self):
        # Courses:[scourses:cnum -> school] means different schools'
        # course sets cannot share a cnum... via
        # Courses:[scourses:cnum -> scourses]? The direct pattern is
        # x0:[x1:x2 -> x1].
        schema = parse_schema("R = {<S: {<C, T>}, W>}")
        sigma = parse_nfds("R:[S:C -> S]")
        engine = ClosureEngine(schema, sigma)
        assert implied_disjoint_or_equal(engine, parse_path("R"),
                                         parse_path("S"))

    def test_not_implied_without_constraint(self):
        schema = parse_schema("R = {<S: {<C, T>}, W>}")
        engine = ClosureEngine(schema, [])
        assert not implied_disjoint_or_equal(engine, parse_path("R"),
                                             parse_path("S"))

    def test_empirical_check(self):
        from repro.values import Instance
        schema = parse_schema("R = {<S: {<C, T>}, W>}")
        disjoint = Instance(schema, {"R": [
            {"S": [{"C": 1, "T": 1}], "W": 1},
            {"S": [{"C": 2, "T": 2}], "W": 2},
        ]})
        assert check_disjoint_or_equal(disjoint, parse_path("R"),
                                       parse_path("S"))
        overlapping = Instance(schema, {"R": [
            {"S": [{"C": 1, "T": 1}, {"C": 2, "T": 2}], "W": 1},
            {"S": [{"C": 2, "T": 2}], "W": 2},
        ]})
        assert not check_disjoint_or_equal(overlapping, parse_path("R"),
                                           parse_path("S"))
