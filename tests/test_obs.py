"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the tracer's span nesting and completion ordering, the ring
buffer's explicit (never silent) truncation, histogram bucket-edge
semantics, the deterministic merge of child-process metrics, the
snapshot/diff window semantics of the stats classes, and the
:class:`RunReport` consolidation protocol.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import InferenceError
from repro.generators import workloads
from repro.inference import ClosureEngine, ImplicationSession
from repro.nfd import ValidatorEngine
from repro.obs import (
    Histogram,
    MetricsRegistry,
    RunReport,
    Tracer,
    supports_metrics,
)
from repro.paths import parse_path


class TestTracerSpans:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert outer.depth == 0
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1

    def test_ids_follow_opening_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        ids = {span.name: span.span_id for span in tracer.spans()}
        assert ids == {"a": 0, "b": 1, "c": 2}

    def test_completion_order_lists_children_first(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [span.name for span in tracer.spans()] == \
            ["parent", "child"][::-1]

    def test_count_charges_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.count("work")
            with tracer.span("inner") as inner:
                tracer.count("work", 2)
        assert outer.counters == {"work": 1}
        assert inner.counters == {"work": 2}

    def test_count_outside_any_span_is_noop(self):
        tracer = Tracer()
        tracer.count("orphan")
        assert tracer.spans() == []
        assert list(tracer.records()) == []

    def test_duration_uses_injected_clock(self):
        ticks = iter([0.0, 1.0, 3.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("timed") as span:
            pass
        assert span.start == 1.0
        assert span.duration == 2.5

    def test_exception_marks_span_failed_and_closes_it(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attrs["failed"] is True
        assert span.closed
        assert tracer.current is None


class TestTracerRingBuffer:
    def test_truncation_keeps_newest_and_is_flagged(self):
        tracer = Tracer(max_records=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert tracer.truncated
        assert tracer.dropped == 2
        kept = [span.name for span in tracer.spans()]
        assert kept == ["s2", "s3", "s4"]
        marker = list(tracer.records())[-1]
        assert marker == {"kind": "truncated", "dropped": 2,
                          "max_records": 3}

    def test_untruncated_trace_has_no_marker(self):
        tracer = Tracer(max_records=10)
        with tracer.span("only"):
            pass
        kinds = [record["kind"] for record in tracer.records()]
        assert kinds == ["span"]

    def test_jsonl_export_parses_and_flags_truncation(self, tmp_path):
        tracer = Tracer(max_records=2)
        for index in range(4):
            with tracer.span("work", index=index):
                tracer.count("steps", index)
        target = tmp_path / "trace.jsonl"
        tracer.write_jsonl(target)
        lines = target.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 3  # 2 kept + the truncation marker
        assert records[-1]["kind"] == "truncated"
        assert records[-1]["dropped"] == 2

    def test_max_records_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)


class TestHistogram:
    def test_value_on_edge_lands_in_edge_bucket(self):
        histogram = Histogram("h", edges=(1, 5, 10))
        for value in (1, 5, 10):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 0]

    def test_values_between_edges(self):
        histogram = Histogram("h", edges=(1, 5, 10))
        histogram.observe(0)    # <= 1
        histogram.observe(2)    # (1, 5]
        histogram.observe(7)    # (5, 10]
        histogram.observe(11)   # overflow
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.total == 20

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", edges=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("bad", edges=())


class TestMetricsRegistry:
    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")

    def test_count_all_with_prefix(self):
        registry = MetricsRegistry()
        registry.count_all({"a": 2, "b": 3}, prefix="x.")
        assert registry.as_dict()["counters"] == {"x.a": 2, "x.b": 3}

    def test_merge_semantics(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        left.gauge("g").set(1)
        right.gauge("g").set(9)
        left.histogram("h", edges=(1, 2)).observe(1)
        right.histogram("h", edges=(1, 2)).observe(2)
        left.merge(right)
        merged = left.as_dict()
        assert merged["counters"]["c"] == 5       # counters add
        assert merged["gauges"]["g"] == 9         # last write wins
        assert merged["histograms"]["h"]["counts"] == [1, 1, 0]

    def test_merge_order_independent_for_counters(self):
        deltas = [{"counters": {"c": n}, "gauges": {},
                   "histograms": {}} for n in (1, 2, 3)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for delta in deltas:
            forward.merge(delta)
        for delta in reversed(deltas):
            backward.merge(delta)
        assert forward.as_dict()["counters"] == \
            backward.as_dict()["counters"]

    def test_merge_rejects_edge_mismatch(self):
        left = MetricsRegistry()
        left.histogram("h", edges=(1, 2)).observe(1)
        with pytest.raises(ValueError):
            left.merge({"histograms": {"h": {
                "edges": [1, 3], "counts": [0, 0, 0],
                "total": 0, "count": 0}}})

    def test_json_export_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        assert json.loads(registry.to_json())["counters"]["c"] == 7


class TestSnapshotDiff:
    """Cumulative counters + snapshot()/diff() windows, never resets."""

    def _course(self):
        return workloads.course_schema(), list(workloads.course_sigma())

    def test_engine_counters_are_cumulative(self):
        schema, sigma = self._course()
        engine = ClosureEngine(schema, sigma)
        base = parse_path("Course")
        engine.closure(base, {parse_path("cnum")})
        first = engine.snapshot()
        engine.closure(base, {parse_path("time")})
        second = engine.snapshot()
        assert second.saturations >= first.saturations
        assert second.attempts >= first.attempts

    def test_engine_diff_isolates_the_window(self):
        schema, sigma = self._course()
        engine = ClosureEngine(schema, sigma)
        base = parse_path("Course")
        engine.closure(base, {parse_path("cnum")})
        before = engine.snapshot()
        engine.closure(base, {parse_path("time")})
        window = engine.snapshot().diff(before)
        assert window.saturations == \
            engine.snapshot().saturations - before.saturations
        assert window.attempts >= 0
        # point-in-time maps keep the later snapshot's values
        assert window.usables == engine.snapshot().usables

    def test_engine_diff_rejects_strategy_mismatch(self):
        schema, sigma = self._course()
        worklist = ClosureEngine(schema, sigma).snapshot()
        naive = ClosureEngine(schema, sigma,
                              strategy="naive").snapshot()
        with pytest.raises(InferenceError):
            worklist.diff(naive)

    def test_session_diff_isolates_the_window(self):
        schema, sigma = self._course()
        session = ImplicationSession(schema, sigma)
        base = parse_path("Course")
        session.closure(base, {parse_path("cnum")})
        before = session.snapshot()
        session.closure(base, {parse_path("cnum")})   # memo hit
        window = session.snapshot().diff(before)
        assert window.queries == 1
        assert window.hits == 1
        assert window.misses == 0
        # memo size is point-in-time, not a delta
        assert window.memo_size == session.snapshot().memo_size

    def test_session_diff_rejects_fingerprint_mismatch(self):
        schema, sigma = self._course()
        full = ImplicationSession(schema, sigma).snapshot()
        smaller = ImplicationSession(schema, sigma[:-1]).snapshot()
        with pytest.raises(InferenceError):
            full.diff(smaller)

    def test_validator_diff_isolates_the_window(self):
        schema, sigma = self._course()
        engine = ValidatorEngine(schema, sigma)
        instance = workloads.course_instance()
        engine.validate(instance)
        before = engine.snapshot()
        engine.validate(instance)
        window = engine.snapshot().diff(before)
        assert window.validations == 1
        assert window.elements_walked > 0
        # per-NFD group counts subtract too
        assert all(count >= 0 for count in window.groups.values())
        # trie_nodes is fixed at compile time, not a delta
        assert window.trie_nodes == engine.snapshot().trie_nodes


class TestDeterministicFanoutMerge:
    """jobs=N folds worker deltas; totals match the serial run."""

    def _broken_warehouse(self):
        instance = workloads.warehouse_instance().with_relation(
            "StoreA", [
                {"order_id": 1, "customer": "ada", "lines": []},
                {"order_id": 1, "customer": "grace", "lines": []},
            ])
        return instance.with_relation("StoreB", [
            {"order_id": 2, "customer": "ada", "lines": []},
            {"order_id": 2, "customer": "grace", "lines": []},
        ])

    @staticmethod
    def _comparable(stats):
        payload = stats.as_dict()
        payload.pop("wall_time")  # serial vs summed-worker clocks differ
        return payload

    def test_merged_stats_equal_serial_stats(self):
        schema = workloads.warehouse_schema()
        sigma = workloads.warehouse_sigma()
        instance = self._broken_warehouse()
        serial = ValidatorEngine(schema, sigma)
        serial_result = serial.validate(instance, all_violations=True)
        fanout = ValidatorEngine(schema, sigma)
        fanout_result = fanout.validate(instance, all_violations=True,
                                        jobs=4)
        assert [v.describe() for v in fanout_result.violations] == \
            [v.describe() for v in serial_result.violations]
        assert self._comparable(fanout.stats) == \
            self._comparable(serial.stats)

    def test_merged_stats_deterministic_across_runs(self):
        schema = workloads.warehouse_schema()
        sigma = workloads.warehouse_sigma()
        instance = self._broken_warehouse()
        snapshots = []
        for _ in range(2):
            engine = ValidatorEngine(schema, sigma)
            engine.validate(instance, all_violations=True, jobs=4)
            snapshots.append(self._comparable(engine.stats))
        assert snapshots[0] == snapshots[1]


class TestRunReport:
    def test_sections_freeze_at_add_time(self):
        schema = workloads.course_schema()
        sigma = list(workloads.course_sigma())
        engine = ClosureEngine(schema, sigma)
        engine.closure(parse_path("Course"), {parse_path("cnum")})
        report = RunReport(command="test").add("closure", engine.stats)
        frozen = report.section("closure")
        engine.closure(parse_path("Course"), {parse_path("time")})
        assert report.section("closure") == frozen
        assert report.section("closure") != engine.stats.as_metrics()

    def test_section_text_matches_engine_rendering(self):
        schema = workloads.course_schema()
        sigma = list(workloads.course_sigma())
        engine = ClosureEngine(schema, sigma)
        engine.closure(parse_path("Course"), {parse_path("cnum")})
        snapshot = engine.stats
        report = RunReport().add("closure", snapshot)
        assert report.section_text("closure") == snapshot.to_text()

    def test_mapping_sections_render_as_json(self):
        report = RunReport().add("extra", {"answer": 42})
        assert json.loads(report.section_text("extra")) == {"answer": 42}

    def test_rejects_non_metric_sources(self):
        with pytest.raises(TypeError):
            RunReport().add("bad", object())

    def test_supports_metrics_protocol(self):
        schema = workloads.course_schema()
        sigma = list(workloads.course_sigma())
        assert supports_metrics(ClosureEngine(schema, sigma).stats)
        assert not supports_metrics(object())

    def test_json_export_contains_all_sections(self, tmp_path):
        schema = workloads.course_schema()
        sigma = list(workloads.course_sigma())
        session = ImplicationSession(schema, sigma)
        session.closure(parse_path("Course"), {parse_path("cnum")})
        validator = ValidatorEngine(schema, sigma)
        validator.validate(workloads.course_instance())
        report = (RunReport(command="analyze")
                  .add("closure", session.engine.stats)
                  .add("session", session.stats)
                  .add("validator", validator.stats))
        target = tmp_path / "metrics.json"
        report.write_json(target)
        payload = json.loads(target.read_text())
        assert payload["command"] == "analyze"
        assert set(payload["sections"]) == \
            {"closure", "session", "validator"}
        assert payload["sections"]["session"]["queries"] == 1


class TestCompareSnapshots:
    """compare_snapshots: the perf-trajectory guardrail behind the
    benchmark suite's ``--compare BASELINE.json`` mode."""

    def _registry(self, **gauges):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        for name, value in gauges.items():
            registry.gauge(name.replace("__", ".")).set(value)
        return registry

    def test_holding_the_line_passes(self):
        from repro.obs import compare_snapshots
        baseline = self._registry(**{"stream.elements_per_sec": 1000})
        current = self._registry(**{"stream.elements_per_sec": 900})
        assert compare_snapshots(current, baseline) == []

    def test_regression_beyond_tolerance_fails(self):
        from repro.obs import compare_snapshots
        baseline = self._registry(**{"stream.elements_per_sec": 1000})
        current = self._registry(**{"stream.elements_per_sec": 700})
        messages = compare_snapshots(current, baseline, tolerance=0.2)
        assert len(messages) == 1
        assert "stream.elements_per_sec" in messages[0]
        assert "30.0%" in messages[0]

    def test_missing_gauge_is_a_regression(self):
        from repro.obs import compare_snapshots
        baseline = self._registry(**{"stream.elements_per_sec": 1000})
        current = self._registry()
        messages = compare_snapshots(current, baseline)
        assert messages and "missing" in messages[0]

    def test_only_rate_gauges_are_compared(self):
        from repro.obs import compare_snapshots
        baseline = self._registry(**{"stream.spills": 9,
                                     "stream.rows_spilled": 4500})
        current = self._registry(**{"stream.spills": 90,
                                    "stream.rows_spilled": 1})
        assert compare_snapshots(current, baseline) == []

    def test_accepts_plain_dicts(self):
        from repro.obs import compare_snapshots
        baseline = {"gauges": {"x_per_sec": 100.0}}
        current = {"gauges": {"x_per_sec": 50.0}}
        assert compare_snapshots(current, baseline)
        assert compare_snapshots(current, baseline, tolerance=0.6) == []

    def test_rejects_bad_tolerance(self):
        from repro.obs import compare_snapshots
        with pytest.raises(ValueError):
            compare_snapshots({}, {}, tolerance=1.5)

    def test_improvements_never_flag(self):
        from repro.obs import compare_snapshots
        baseline = self._registry(**{"stream.elements_per_sec": 1000})
        current = self._registry(**{"stream.elements_per_sec": 5000})
        assert compare_snapshots(current, baseline) == []
