"""Unit tests for the type visitors and folds."""

from repro.types import (
    INT,
    STRING,
    TypeVisitor,
    count_nodes,
    fold_type,
    parse_type,
    set_paths_of_type,
)


class TestTypeVisitor:
    def test_dispatch(self):
        visits: list[str] = []

        class Recorder(TypeVisitor):
            def visit_base(self, t):
                visits.append(f"base:{t.name}")

            def visit_set(self, t):
                visits.append("set")
                return self.visit(t.element)

            def visit_record(self, t):
                visits.append("record")
                for _, field in t.fields:
                    self.visit(field)

        Recorder().visit(parse_type("{<A: int, B: {<C: string>}>}"))
        assert visits == ["set", "record", "base:int", "set", "record",
                          "base:string"]

    def test_default_visitor_recurses_silently(self):
        TypeVisitor().visit(parse_type("{<A: int, B: {<C: string>}>}"))


class TestFoldType:
    def test_count_base_types(self):
        t = parse_type("{<A: int, B: {<C: string, D: int>}>}")
        total = fold_type(
            t,
            on_base=lambda base: 1,
            on_set=lambda _, inner: inner,
            on_record=lambda _, children: sum(children.values()),
        )
        assert total == 3

    def test_render_via_fold(self):
        t = parse_type("{<A: int>}")
        rendered = fold_type(
            t,
            on_base=lambda base: base.name,
            on_set=lambda _, inner: "{" + inner + "}",
            on_record=lambda record, children: "<" + ", ".join(
                f"{label}: {children[label]}" for label in record.labels
            ) + ">",
        )
        assert rendered == "{<A: int>}"


class TestHelpers:
    def test_count_nodes(self):
        assert count_nodes(INT) == 1
        assert count_nodes(parse_type("{<A: int>}")) == 3
        assert count_nodes(parse_type("{<A: int, B: {<C: int>}>}")) == 6

    def test_set_paths_of_type(self):
        t = parse_type("{<A: int, B: {<C: {<D: int>}>}, E: {<F: int>}>}")
        found = set_paths_of_type(t)
        assert () in found                      # the outer set itself
        assert ("B",) in found
        assert ("B", "C") in found
        assert ("E",) in found
        assert ("A",) not in found

    def test_base_type_has_no_set_paths(self):
        assert set_paths_of_type(STRING) == []
