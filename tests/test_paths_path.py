"""Unit tests for Path: prefixes, follows, composition."""

import pytest

from repro.errors import ParseError, PathError
from repro.paths import EPSILON, Path, common_prefix, parse_path


class TestConstruction:
    def test_from_labels(self):
        path = Path(("A", "B"))
        assert len(path) == 2
        assert path.first == "A"
        assert path.last == "B"

    def test_parse(self):
        assert parse_path("A:B:C") == Path(("A", "B", "C"))
        assert parse_path(" A : B ") == Path(("A", "B"))

    @pytest.mark.parametrize("text", ["", "ε", "∅", "0"])
    def test_parse_empty_markers(self, text):
        assert parse_path(text) == EPSILON

    def test_parse_invalid(self):
        with pytest.raises(ParseError):
            parse_path("A:9x")
        with pytest.raises(ParseError):
            parse_path("A::B")

    def test_invalid_label(self):
        with pytest.raises(PathError):
            Path(("A", "b c"))

    def test_str(self):
        assert str(parse_path("A:B")) == "A:B"
        assert str(EPSILON) == "ε"

    def test_empty_path_accessors_raise(self):
        with pytest.raises(PathError):
            EPSILON.first
        with pytest.raises(PathError):
            EPSILON.last
        with pytest.raises(PathError):
            EPSILON.parent
        with pytest.raises(PathError):
            EPSILON.tail


class TestStructure:
    def test_parent_and_tail(self):
        path = parse_path("A:B:C")
        assert path.parent == parse_path("A:B")
        assert path.tail == parse_path("B:C")

    def test_indexing_and_slicing(self):
        path = parse_path("A:B:C")
        assert path[0] == "A"
        assert path[:2] == parse_path("A:B")
        assert path[1:] == parse_path("B:C")

    def test_concat_and_child(self):
        assert parse_path("A").concat(parse_path("B:C")) == \
            parse_path("A:B:C")
        assert parse_path("A").child("B") == parse_path("A:B")
        assert parse_path("A") / "B" / parse_path("C") == \
            parse_path("A:B:C")

    def test_epsilon_is_falsy(self):
        assert not EPSILON
        assert parse_path("A")


class TestPrefixRelations:
    def test_prefix(self):
        assert parse_path("A").is_prefix_of(parse_path("A:B"))
        assert parse_path("A:B").is_prefix_of(parse_path("A:B"))
        assert EPSILON.is_prefix_of(parse_path("A"))
        assert not parse_path("B").is_prefix_of(parse_path("A:B"))

    def test_proper_prefix(self):
        assert parse_path("A").is_proper_prefix_of(parse_path("A:B"))
        assert not parse_path("A:B").is_proper_prefix_of(parse_path("A:B"))
        assert EPSILON.is_proper_prefix_of(parse_path("A"))
        assert not EPSILON.is_proper_prefix_of(EPSILON)

    def test_strip_prefix(self):
        assert parse_path("A:B:C").strip_prefix(parse_path("A")) == \
            parse_path("B:C")
        with pytest.raises(PathError):
            parse_path("A:B").strip_prefix(parse_path("B"))

    def test_prefixes(self):
        path = parse_path("A:B:C")
        assert path.prefixes() == [parse_path("A"), parse_path("A:B"),
                                   parse_path("A:B:C")]
        assert path.prefixes(include_self=False) == [
            parse_path("A"), parse_path("A:B")]
        assert path.prefixes(include_empty=True)[0] == EPSILON

    def test_common_prefix(self):
        assert common_prefix(parse_path("A:B:C"), parse_path("A:B:D")) \
            == parse_path("A:B")
        assert common_prefix(parse_path("A"), parse_path("B")) == EPSILON


class TestFollows:
    """Definition 3.2 with the paper's own examples."""

    def test_single_label_follows_everything_nonempty(self):
        # "a path A follows any path p, |p| >= 1"
        assert parse_path("A").follows(parse_path("X"))
        assert parse_path("A").follows(parse_path("X:Y:Z"))

    def test_paper_examples(self):
        ab = parse_path("A:B")
        assert ab.follows(parse_path("A:B"))
        assert ab.follows(parse_path("A:C:D"))
        assert not ab.follows(parse_path("A"))
        assert not ab.follows(parse_path("F:G"))

    def test_empty_path_follows_nothing(self):
        assert not EPSILON.follows(parse_path("A"))

    def test_nothing_follows_epsilon(self):
        assert not parse_path("A").follows(EPSILON)


class TestIdentity:
    def test_equality_and_hash(self):
        assert parse_path("A:B") == Path(("A", "B"))
        assert hash(parse_path("A:B")) == hash(Path(("A", "B")))

    def test_ordering_is_lexicographic(self):
        paths = sorted([parse_path("B"), parse_path("A:C"),
                        parse_path("A")])
        assert paths == [parse_path("A"), parse_path("A:C"),
                         parse_path("B")]

    def test_immutable(self):
        with pytest.raises(AttributeError):
            parse_path("A").labels = ()
