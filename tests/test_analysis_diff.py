"""Unit tests for semantic constraint-set diffing."""

from repro.analysis import diff_sigmas
from repro.generators import workloads
from repro.nfd import parse_nfd, parse_nfds
from repro.types import parse_schema


class TestDiffSigmas:
    def test_pure_refactoring_is_equivalent(self):
        schema = workloads.course_schema()
        local = parse_nfds("Course:students:[sid -> grade]")
        simple = parse_nfds(
            "Course:[students, students:sid -> students:grade]")
        diff = diff_sigmas(schema, local, simple)
        assert diff.equivalent
        assert "equivalent" in diff.to_text()

    def test_reordered_lhs_is_equivalent(self):
        schema = parse_schema("R = {<A, B, C>}")
        diff = diff_sigmas(schema, parse_nfds("R:[A, B -> C]"),
                           parse_nfds("R:[B, A -> C]"))
        assert diff.equivalent

    def test_strengthening_detected(self):
        schema = parse_schema("R = {<A, B, C>}")
        old = parse_nfds("R:[A -> B]")
        new = parse_nfds("R:[A -> B]\nR:[B -> C]")
        diff = diff_sigmas(schema, old, new)
        assert diff.strengthened == [parse_nfd("R:[B -> C]")]
        assert diff.weakened == []
        assert not diff.equivalent
        assert "new requirements" in diff.to_text()

    def test_weakening_detected(self):
        schema = parse_schema("R = {<A, B, C>}")
        old = parse_nfds("R:[A -> B]\nR:[B -> C]")
        new = parse_nfds("R:[A -> B]")
        diff = diff_sigmas(schema, old, new)
        assert diff.weakened == [parse_nfd("R:[B -> C]")]
        assert "dropped guarantees" in diff.to_text()

    def test_implied_addition_is_not_strengthening(self):
        schema = parse_schema("R = {<A, B, C>}")
        old = parse_nfds("R:[A -> B]\nR:[B -> C]")
        new = parse_nfds("R:[A -> B]\nR:[B -> C]\nR:[A -> C]")
        diff = diff_sigmas(schema, old, new)
        assert diff.equivalent
        assert parse_nfd("R:[A -> C]") in diff.carried

    def test_swap_is_both(self):
        schema = parse_schema("R = {<A, B>}")
        diff = diff_sigmas(schema, parse_nfds("R:[A -> B]"),
                           parse_nfds("R:[B -> A]"))
        assert diff.strengthened == [parse_nfd("R:[B -> A]")]
        assert diff.weakened == [parse_nfd("R:[A -> B]")]
        assert diff.carried == []
