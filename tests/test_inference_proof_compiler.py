"""Unit and randomized tests for proof compilation.

The compiler's contract: for every implied NFD it emits a Derivation —
machine-checked step by step by the rule objects — whose conclusion is
exactly the queried NFD.  Randomized sweeps enforce the contract across
schemas, constraint sets, and base-path shapes.
"""

import random

import pytest

from repro.errors import InferenceError
from repro.generators import random_nfd, random_schema, random_sigma
from repro.generators import workloads
from repro.inference import ClosureEngine, compile_proof
from repro.nfd import NFD, parse_nfds
from repro.types import parse_schema


class TestCompile:
    def test_section_3_1(self, section_3_1_engine):
        target = NFD.parse("R:A:[B -> E]")
        proof = compile_proof(section_3_1_engine, target)
        assert proof.conclusion() == target
        rules_used = {step.rule for step in proof.steps}
        # the compiled proof exercises the same rule families as the
        # paper's hand proof
        assert "singleton" in rules_used
        assert "transitivity" in rules_used
        assert "prefix" in rules_used
        assert "pull-out" in rules_used

    def test_flat_chain(self):
        schema = parse_schema("R = {<A, B, C>}")
        engine = ClosureEngine(schema, parse_nfds("R:[A -> B]\nR:[B -> C]"))
        proof = compile_proof(engine, NFD.parse("R:[A -> C]"))
        assert proof.conclusion() == NFD.parse("R:[A -> C]")

    def test_trivial(self, course_engine):
        target = NFD.parse("Course:[cnum -> cnum]")
        proof = compile_proof(course_engine, target)
        assert proof.conclusion() == target
        assert proof.steps[-1].rule in ("reflexivity",)

    def test_trivial_nested_base(self, course_engine):
        target = NFD.parse("Course:students:[sid -> sid]")
        proof = compile_proof(course_engine, target)
        assert proof.conclusion() == target

    def test_intro_inference(self, course_engine):
        target = NFD.parse("Course:[students:sid, time -> books]")
        proof = compile_proof(course_engine, target)
        assert proof.conclusion() == target
        # cites the scheduling constraint
        cited = {p for step in proof.steps for p in step.premise_labels}
        assert any(label.startswith("s") for label in cited)

    def test_degenerate_conclusion(self):
        schema = parse_schema("R = {<A: {<F, G>}, D>}")
        sigma = parse_nfds("R:A:[∅ -> F]")
        engine = ClosureEngine(schema, sigma)
        target = NFD.parse("R:A:[G -> F]")  # augmentation of s1
        proof = compile_proof(engine, target)
        assert proof.conclusion() == target

    def test_not_implied_raises(self, section_3_1_engine):
        with pytest.raises(InferenceError):
            compile_proof(section_3_1_engine, NFD.parse("R:A:[E -> B]"))


class TestRandomizedContract:
    def test_every_implied_nfd_compiles(self):
        rng = random.Random(404)
        compiled = 0
        for _ in range(30):
            schema = random_schema(rng, max_fields=3, max_depth=2,
                                   set_probability=0.5)
            sigma = random_sigma(rng, schema, count=rng.randint(1, 4))
            engine = ClosureEngine(schema, sigma)
            for _ in range(5):
                candidate = random_nfd(rng, schema, max_lhs=2,
                                       local_probability=0.4)
                if not engine.implies(candidate):
                    continue
                proof = compile_proof(engine, candidate)
                assert proof.conclusion() == candidate, candidate
                compiled += 1
        assert compiled > 20

    def test_appendix_a_examples_compile(self):
        for schema, sigma, lhs_texts in [
            (workloads.example_a1_schema(), workloads.example_a1_sigma(),
             ["B"]),
            (workloads.example_a2_schema(), workloads.example_a2_sigma(),
             ["A:B:C"]),
        ]:
            from repro.paths import parse_path
            engine = ClosureEngine(schema, sigma)
            lhs = {parse_path(t) for t in lhs_texts}
            for q in engine.closure(parse_path("R"), lhs):
                target = NFD(parse_path("R"), lhs, q)
                proof = compile_proof(engine, target)
                assert proof.conclusion() == target
