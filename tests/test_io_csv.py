"""Unit tests for CSV ingestion and the flat-to-nested pipeline."""

import pytest

from repro.design import NestPlan
from repro.errors import ParseError
from repro.inference import FD
from repro.io.csv_io import dump_csv, load_csv
from repro.nfd import satisfies_all_fast
from repro.values import check_instance

CSV_TEXT = """cnum,time,sid,grade
cis550,10,1,A
cis550,10,2,B
cis500,12,1,A
"""


class TestLoadCSV:
    def test_typed_load(self):
        instance = load_csv(CSV_TEXT, "Enrollment",
                            types={"time": "int", "sid": "int"})
        check_instance(instance)
        relation = instance.relation("Enrollment")
        assert len(relation) == 3
        row = next(iter(relation))
        assert isinstance(row.get("time").value, int)
        assert isinstance(row.get("cnum").value, str)

    def test_default_string_columns(self):
        instance = load_csv("a,b\nx,y\n", "R")
        row = next(iter(instance.relation("R")))
        assert row.get("a").value == "x"

    def test_bool_conversion(self):
        instance = load_csv("flag\ntrue\nno\n", "R",
                            types={"flag": "bool"})
        values = {row.get("flag").value
                  for row in instance.relation("R")}
        assert values == {True, False}

    def test_bad_int_rejected(self):
        with pytest.raises(ParseError):
            load_csv("n\nnot_a_number\n", "R", types={"n": "int"})

    def test_bad_bool_rejected(self):
        with pytest.raises(ParseError):
            load_csv("f\nmaybe\n", "R", types={"f": "bool"})

    def test_ragged_row_rejected(self):
        with pytest.raises(ParseError) as excinfo:
            load_csv("a,b\n1\n", "R")
        assert "line 2" in str(excinfo.value)

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            load_csv("", "R")

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            load_csv("a\n1\n", "R", types={"a": "float"})


class TestDumpCSV:
    def test_roundtrip(self):
        instance = load_csv(CSV_TEXT, "Enrollment",
                            types={"time": "int", "sid": "int"})
        text = dump_csv(instance, "Enrollment")
        again = load_csv(text, "Enrollment",
                         types={"time": "int", "sid": "int"})
        assert again.relation("Enrollment") == \
            instance.relation("Enrollment")

    def test_nested_rejected(self):
        from repro.generators import workloads
        with pytest.raises(ParseError):
            dump_csv(workloads.course_instance(), "Course")


class TestCSVToNestedPipeline:
    def test_ingest_and_nest(self):
        flat = load_csv(CSV_TEXT, "Enrollment",
                        types={"time": "int", "sid": "int"})
        plan = NestPlan("Enrollment", ["cnum", "time", "sid", "grade"])
        plan.nest("students", ["sid", "grade"])
        nested = plan.apply_instance(flat)
        check_instance(nested)
        assert len(nested.relation("Enrollment")) == 2
        report = plan.report(
            flat.schema.relation_type("Enrollment"),
            [FD({"cnum"}, "time")])
        assert satisfies_all_fast(nested, report.all_nfds())
