"""Unit tests for the nested normalization pipeline.

Covers the synthesis stages of :mod:`repro.design.synthesize` — the
flatten/rewrite front end, candidate generation, scoring, the
preservation verdict, round-trip validation — plus the ``repro
normalize`` CLI surface and the ``analyze --strategy`` regression.
"""

import json

import pytest

from repro.analysis.carryover import nfd_through_unnest, sigma_through_unnest
from repro.cli import main
from repro.design import (
    DesignReport,
    candidate_plans,
    synthesize_design,
    sweep_normalize,
)
from repro.design.bcnf import project_fds
from repro.errors import InferenceError
from repro.inference import FD, NonEmptySpec
from repro.io import dump_bundle
from repro.generators import workloads
from repro.nfd import parse_nfd, satisfies_all_fast
from repro.types import SetType, parse_schema
from repro.values import Instance
from repro.values.restructure import flatten_type, flatten_value


ENROLL = "Enroll = {<cnum: string, time: int, sid: int, grade: string>}"


def _enroll():
    schema = parse_schema(ENROLL)
    sigma = [parse_nfd("Enroll:[cnum -> time]"),
             parse_nfd("Enroll:[cnum, sid -> grade]")]
    return schema, sigma


class TestSynthesizeEnroll:
    """The paper's running example: the flat course/enrollment feed."""

    def test_nests_the_partial_dependency(self):
        schema, sigma = _enroll()
        report = synthesize_design(schema, sigma)
        assert report.steps == 1
        [(label, nested)] = report.plan.steps
        assert set(nested) == {"sid", "grade"}

    def test_redundancy_removed(self):
        schema, sigma = _enroll()
        report = synthesize_design(schema, sigma)
        assert report.violations_flat == 1
        assert report.violations == 0

    def test_preserved_beyond_flat_projections(self):
        # the inter-set dependency cnum, sid -> grade is preserved by
        # the local form + structural NFDs, but its flat projections
        # lose it — Section 4's point, and why both verdicts exist
        schema, sigma = _enroll()
        report = synthesize_design(schema, sigma)
        assert report.preserved
        assert not report.projection_preserved

    def test_modes_agree(self):
        schema, sigma = _enroll()
        by_mode = {
            mode: synthesize_design(schema, sigma, mode=mode)
            for mode in ("session", "fresh")
        }
        assert by_mode["session"].plan.steps == \
            by_mode["fresh"].plan.steps
        assert by_mode["session"].preserved == \
            by_mode["fresh"].preserved

    def test_strategies_agree(self):
        schema, sigma = _enroll()
        dense = synthesize_design(schema, sigma, strategy="dense")
        worklist = synthesize_design(schema, sigma,
                                     strategy="worklist")
        assert dense.plan.steps == worklist.plan.steps
        assert dense.to_text() == worklist.to_text()

    def test_gated_semantics(self):
        schema, sigma = _enroll()
        report = synthesize_design(
            schema, sigma, nonempty=NonEmptySpec.all_nonempty())
        assert report.steps == 1
        assert report.preserved

    def test_metrics_are_numbers(self):
        schema, sigma = _enroll()
        metrics = synthesize_design(schema, sigma).as_metrics()
        assert all(isinstance(value, (int, float))
                   for value in metrics.values())
        assert metrics["steps"] == 1
        assert metrics["preserved"] == 1
        assert metrics["rule_applications"] > 0

    def test_to_text_mentions_the_plan(self):
        schema, sigma = _enroll()
        text = synthesize_design(schema, sigma).to_text()
        assert "nest" in text
        assert "sid" in text and "grade" in text
        assert "preserved=yes" in text

    def test_report_is_a_design_report(self):
        schema, sigma = _enroll()
        assert isinstance(synthesize_design(schema, sigma),
                          DesignReport)


class TestSynthesizeNested:
    """Nested inputs flatten first; locally-scoped rules are dropped."""

    def test_course_keeps_flat(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        report = synthesize_design(schema, sigma)
        assert report.unnest_order  # it really was nested
        assert report.dropped > 0
        assert report.preserved

    def test_unknown_relation_rejected(self):
        schema, sigma = _enroll()
        with pytest.raises(InferenceError):
            synthesize_design(schema, sigma, "NoSuchRelation")

    def test_multi_relation_needs_explicit_choice(self):
        schema = parse_schema(
            "R = {<a: int, b: int>} ; S = {<c: int, d: int>}")
        sigma = [parse_nfd("R:[a -> b]")]
        with pytest.raises(InferenceError):
            synthesize_design(schema, sigma)
        report = synthesize_design(schema, sigma, "R")
        assert report.relation == "R"
        # S's rules are foreign to R
        foreign = synthesize_design(
            schema, sigma + [parse_nfd("S:[c -> d]")], "R")
        assert foreign.foreign == 1

    def test_bad_mode_rejected(self):
        schema, sigma = _enroll()
        with pytest.raises(InferenceError):
            synthesize_design(schema, sigma, mode="telepathy")


class TestCandidatePlans:
    COVER = [FD({"cnum"}, "time"), FD({"cnum", "sid"}, "grade")]

    def test_flat_identity_first(self):
        plans = candidate_plans("R", ("cnum", "time", "sid", "grade"),
                                self.COVER)
        assert not plans[0].steps

    def test_deterministic(self):
        attrs = ("cnum", "time", "sid", "grade")
        first = candidate_plans("R", attrs, self.COVER)
        second = candidate_plans("R", attrs, self.COVER)
        assert [p.steps for p in first] == [p.steps for p in second]

    def test_deduplicates(self):
        # both orderings of a single group collapse to the same steps
        plans = candidate_plans("R", ("a", "b"), [FD({"a"}, "b")])
        signatures = [tuple(p.steps) for p in plans]
        assert len(signatures) == len(set(signatures))


class TestFlatten:
    def test_flatten_type_unnests_everything(self):
        schema = workloads.course_schema()
        flat, order = flatten_type(schema.relation_type("Course"))
        assert set(order) == {"students", "books"}
        assert all(not isinstance(ft, SetType)
                   for _, ft in flat.element.fields)

    def test_flatten_value_matches_iterated_unnest(self):
        schema = workloads.course_schema()
        instance = workloads.course_instance()
        _, order = flatten_type(schema.relation_type("Course"))
        flat = flatten_value(instance.relation("Course"), order)
        assert len(flat.elements) >= len(
            instance.relation("Course").elements)

    def test_roundtrip_through_nest(self):
        schema, sigma = _enroll()
        report = synthesize_design(schema, sigma)
        flat = Instance(schema, {"Enroll": [
            {"cnum": "db", "time": 1, "sid": 1, "grade": "A"},
            {"cnum": "db", "time": 1, "sid": 2, "grade": "B"},
        ]})
        nested = report.plan.apply_instance(flat)
        assert satisfies_all_fast(nested,
                                  report.plan_report.all_nfds())


class TestCarryoverUnnest:
    def test_scope_vanishes(self):
        local = parse_nfd("Course:students:[sid -> grade]")
        assert nfd_through_unnest(local, "students") is None

    def test_paths_rewritten(self):
        inter = parse_nfd(
            "Course:[cnum, students:sid -> students:grade]")
        rewritten = nfd_through_unnest(inter, "students")
        assert rewritten is not None
        assert str(rewritten) == "Course:[cnum, sid -> grade]"

    def test_set_attribute_itself_dropped(self):
        structural = parse_nfd("Course:[cnum -> students]")
        assert nfd_through_unnest(structural, "students") is None

    def test_sigma_through_unnest_counts(self):
        sigma = [
            parse_nfd("Course:[cnum -> time]"),
            parse_nfd("Course:students:[sid -> grade]"),
        ]
        survived = sigma_through_unnest(sigma, "students")
        assert [str(nfd) for nfd in survived] == \
            ["Course:[cnum -> time]"]


class TestProjectionOracle:
    def test_engine_oracle_matches_attribute_closure(self):
        attrs = ("a", "b", "c", "d")
        fds = [FD({"a"}, "b"), FD({"b"}, "c")]
        oracle_calls = []

        def oracle(combo):
            oracle_calls.append(combo)
            closed = set(combo)
            changed = True
            while changed:
                changed = False
                for fd in fds:
                    if fd.lhs <= closed and fd.rhs not in closed:
                        closed.add(fd.rhs)
                        changed = True
            return closed

        plain = project_fds(attrs, fds, ("a", "b", "c"))
        routed = project_fds(attrs, fds, ("a", "b", "c"),
                             closure=oracle)
        assert plain == routed
        assert oracle_calls  # the hook really ran


class TestSweep:
    def test_jobs_invariant(self):
        serial = sweep_normalize(6, jobs=1, seed=11)
        parallel = sweep_normalize(6, jobs=3, seed=11)
        assert serial.to_text() == parallel.to_text()

    def test_gate_predicate(self):
        summary = sweep_normalize(5, seed=0)
        assert summary.ok(min_preserved=0.95)
        assert not summary.ok(min_preserved=1.01)

    def test_metrics_shape(self):
        metrics = sweep_normalize(4, seed=2).as_metrics()
        assert metrics["schemas"] == 4
        assert 0.0 <= metrics["preserved_rate"] <= 1.0


@pytest.fixture
def enroll_bundle(tmp_path):
    schema, sigma = _enroll()
    path = tmp_path / "enroll.json"
    path.write_text(dump_bundle(schema, sigma))
    return str(path)


class TestNormalizeCLI:
    def test_bundle_report(self, enroll_bundle, capsys):
        assert main(["normalize", enroll_bundle]) == 0
        out = capsys.readouterr().out
        assert "winning plan: 1 nest step(s)" in out
        assert "preserved=yes" in out

    def test_sweep_gate(self, capsys):
        assert main(["normalize", "--sweep", "4", "--seed", "7"]) == 0
        assert "sweep: 4 schema(s)" in capsys.readouterr().out

    def test_sweep_gate_failure_exit(self, capsys):
        assert main(["normalize", "--sweep", "2",
                     "--min-preserved", "1.01"]) == 1

    def test_metrics_json(self, enroll_bundle, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["normalize", enroll_bundle,
                     "--metrics-json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["command"] == "normalize"
        assert data["sections"]["design"]["preserved"] == 1

    def test_trace(self, enroll_bundle, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["normalize", enroll_bundle,
                     "--trace", str(trace)]) == 0
        spans = [json.loads(line)
                 for line in trace.read_text().splitlines()]
        assert any(s.get("name") == "design.synthesize"
                   for s in spans)

    def test_no_input_is_usage_error(self, capsys):
        assert main(["normalize"]) == 2


class TestAnalyzeStrategyRegression:
    """``repro analyze --strategy dense`` must match the worklist."""

    def test_dense_equals_worklist_stdout(self, tmp_path, capsys):
        path = tmp_path / "course.json"
        path.write_text(dump_bundle(workloads.course_schema(),
                                    workloads.course_sigma()))
        assert main(["analyze", str(path),
                     "--strategy", "worklist"]) == 0
        worklist_out = capsys.readouterr().out
        assert main(["analyze", str(path),
                     "--strategy", "dense"]) == 0
        dense_out = capsys.readouterr().out
        assert dense_out == worklist_out

    def test_library_strategy_kwarg(self):
        from repro.analysis import analyze_constraints

        schema, sigma = _enroll()
        dense = analyze_constraints(schema, sigma, strategy="dense")
        worklist = analyze_constraints(schema, sigma,
                                       strategy="worklist")
        assert dense.to_text() == worklist.to_text()
