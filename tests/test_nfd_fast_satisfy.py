"""The hash-grouped checker must agree with the literal one everywhere."""

import random

from repro.generators import random_instance, random_nfd, random_schema
from repro.generators import workloads
from repro.nfd import parse_nfd, satisfies, satisfies_fast


class TestAgreementOnWorkloads:
    def test_course(self):
        instance = workloads.course_instance()
        for nfd in workloads.course_sigma():
            assert satisfies_fast(instance, nfd) == \
                satisfies(instance, nfd)

    def test_figure1(self):
        instance = workloads.figure1_instance()
        nfd = workloads.figure1_nfd()
        assert satisfies_fast(instance, nfd) == satisfies(instance, nfd)

    def test_example_3_2(self):
        instance = workloads.example_3_2_instance()
        for text in ["R:[A -> B:C]", "R:[B:C -> D]", "R:[A -> D]",
                     "R:[B:C -> E]", "R:[B -> E]", "R:[A, B -> E]"]:
            nfd = parse_nfd(text)
            assert satisfies_fast(instance, nfd) == \
                satisfies(instance, nfd), text


class TestAgreementRandomized:
    def test_random_sweep_no_empty_sets(self):
        rng = random.Random(7)
        for _ in range(60):
            schema = random_schema(rng, max_fields=3, max_depth=2)
            instance = random_instance(rng, schema, tuples=2, domain=2)
            nfd = random_nfd(rng, schema, max_lhs=2)
            assert satisfies_fast(instance, nfd) == \
                satisfies(instance, nfd), (nfd, instance)

    def test_random_sweep_with_empty_sets(self):
        rng = random.Random(8)
        for _ in range(60):
            schema = random_schema(rng, max_fields=3, max_depth=2)
            instance = random_instance(rng, schema, tuples=2, domain=2,
                                       empty_probability=0.3)
            nfd = random_nfd(rng, schema, max_lhs=2)
            assert satisfies_fast(instance, nfd) == \
                satisfies(instance, nfd), (nfd, instance)
