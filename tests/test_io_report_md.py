"""Unit tests for the Markdown report renderer."""

from repro.generators import workloads
from repro.io import markdown_report


class TestMarkdownReport:
    def test_clean_bundle(self):
        text = markdown_report(workloads.course_schema(),
                               workloads.course_sigma(),
                               workloads.course_instance(),
                               title="Course database")
        assert text.startswith("# Course database")
        assert "## Schema" in text
        assert "## Constraints" in text
        assert "## Analysis" in text
        assert "## Instance" in text
        assert "satisfies" in text
        assert "minimal keys" in text
        assert "`Course:[cnum -> time]`" in text

    def test_violations_surface(self):
        broken = workloads.course_instance().with_relation("Course", [
            {"cnum": "a", "time": 1,
             "students": [{"sid": 1, "age": 20, "grade": "A"}],
             "books": [{"isbn": 1, "title": "X"}]},
            {"cnum": "b", "time": 2,
             "students": [{"sid": 1, "age": 30, "grade": "A"}],
             "books": [{"isbn": 1, "title": "X"}]},
        ])
        text = markdown_report(workloads.course_schema(),
                               workloads.course_sigma(), broken)
        assert "**Violation:**" in text
        assert "violation(s)" in text

    def test_without_instance(self):
        text = markdown_report(workloads.acedb_schema(),
                               workloads.acedb_sigma())
        assert "## Instance" not in text
        assert "singleton sets" in text

    def test_empty_sigma(self):
        text = markdown_report(workloads.course_schema(), [])
        assert "*(none declared)*" in text
