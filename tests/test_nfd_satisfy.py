"""Unit tests for NFD satisfaction (Definition 2.4).

Covers the paper's running examples, the coincidence condition, empty-set
behaviour, and the set-property consequences of Section 2.1.
"""

from repro.nfd import parse_nfd, satisfies, satisfies_all
from repro.types import parse_schema
from repro.values import Instance


class TestCourseExamples:
    """Examples 2.1-2.5 against the Section 2 instance."""

    def test_all_intro_constraints_hold(self, course_instance,
                                        course_sigma):
        assert satisfies_all(course_instance, course_sigma)

    def test_key_violation_detected(self, course_instance):
        # sid 1001 is in both courses with different cnum.
        assert not satisfies(course_instance,
                             parse_nfd("Course:[students:sid -> cnum]"))

    def test_local_vs_global_grades(self, course_schema):
        # Same student, different grades in different courses: the local
        # dependency holds, the global one does not.
        instance = Instance(course_schema, {"Course": [
            {"cnum": "a", "time": 1,
             "students": [{"sid": 1, "age": 20, "grade": "A"}],
             "books": [{"isbn": 1, "title": "t"}]},
            {"cnum": "b", "time": 2,
             "students": [{"sid": 1, "age": 20, "grade": "B"}],
             "books": [{"isbn": 1, "title": "t"}]},
        ]})
        assert satisfies(instance,
                         parse_nfd("Course:students:[sid -> grade]"))
        assert not satisfies(
            instance,
            parse_nfd("Course:[students:sid -> students:grade]"))

    def test_global_age_consistency_violation(self, course_schema):
        instance = Instance(course_schema, {"Course": [
            {"cnum": "a", "time": 1,
             "students": [{"sid": 1, "age": 20, "grade": "A"}],
             "books": [{"isbn": 1, "title": "t"}]},
            {"cnum": "b", "time": 2,
             "students": [{"sid": 1, "age": 21, "grade": "A"}],
             "books": [{"isbn": 1, "title": "t"}]},
        ]})
        assert not satisfies(
            instance,
            parse_nfd("Course:[students:sid -> students:age]"))


class TestFigure1:
    def test_violation(self, figure1_instance):
        assert not satisfies(figure1_instance, parse_nfd("R:[B:C -> E:F]"))

    def test_first_tuple_alone_satisfies(self):
        schema = parse_schema("R = {<A, B: {<C, D>}, E: {<F, G>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1, "D": 3}],
             "E": [{"F": 5, "G": 6}, {"F": 5, "G": 7}]},
        ]})
        assert satisfies(instance, parse_nfd("R:[B:C -> E:F]"))

    def test_unintuitive_consequence_all_f_equal(self):
        # With B non-empty, the diagonal forces every F within E equal.
        schema = parse_schema("R = {<A, B: {<C, D>}, E: {<F, G>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1, "D": 3}],
             "E": [{"F": 5, "G": 6}, {"F": 6, "G": 7}]},
        ]})
        assert not satisfies(instance, parse_nfd("R:[B:C -> E:F]"))


class TestCoincidenceCondition:
    """Paths sharing a prefix share the element binding."""

    def test_books_isbn_title_use_same_book(self, course_schema):
        # Two books inside one course: isbn 1/title X and isbn 2/title Y.
        # Without shared bindings the antecedent isbn(1)=isbn(1) could
        # pair with title Y; with sharing, the NFD holds.
        instance = Instance(course_schema, {"Course": [
            {"cnum": "a", "time": 1,
             "students": [{"sid": 1, "age": 20, "grade": "A"}],
             "books": [{"isbn": 1, "title": "X"},
                       {"isbn": 2, "title": "Y"}]},
        ]})
        assert satisfies(instance,
                         parse_nfd("Course:[books:isbn -> books:title]"))

    def test_cross_tuple_title_clash(self, course_schema):
        instance = Instance(course_schema, {"Course": [
            {"cnum": "a", "time": 1,
             "students": [{"sid": 1, "age": 20, "grade": "A"}],
             "books": [{"isbn": 1, "title": "X"}]},
            {"cnum": "b", "time": 2,
             "students": [{"sid": 2, "age": 21, "grade": "A"}],
             "books": [{"isbn": 1, "title": "Z"}]},
        ]})
        assert not satisfies(
            instance, parse_nfd("Course:[books:isbn -> books:title]"))


class TestDegenerateAndSetValued:
    def test_degenerate_constant(self):
        schema = parse_schema("R = {<A, E: {<F, G>}>}")
        constant = Instance(schema, {"R": [
            {"A": 1, "E": [{"F": 7, "G": 1}, {"F": 7, "G": 2}]},
        ]})
        varying = Instance(schema, {"R": [
            {"A": 1, "E": [{"F": 7, "G": 1}, {"F": 8, "G": 2}]},
        ]})
        nfd = parse_nfd("R:E:[∅ -> F]")
        assert satisfies(constant, nfd)
        assert not satisfies(varying, nfd)

    def test_set_valued_rhs_compares_sets(self):
        schema = parse_schema("R = {<A, B: {<C>}>}")
        equal_sets = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1}, {"C": 2}]},
            {"A": 1, "B": [{"C": 2}, {"C": 1}]},
        ]})
        assert satisfies(equal_sets, parse_nfd("R:[A -> B]"))
        different = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1}]},
            {"A": 1, "B": [{"C": 2}]},
        ]})
        assert not satisfies(different, parse_nfd("R:[A -> B]"))


class TestEmptySets:
    """Example 3.2 and the trivially-true clause."""

    def test_example_3_2_verdicts(self, example_3_2_instance):
        verdicts = {
            "R:[A -> B:C]": True,
            "R:[B:C -> D]": True,
            "R:[A -> D]": False,
            "R:[B:C -> E]": True,
            "R:[B -> E]": False,
        }
        for text, expected in verdicts.items():
            assert satisfies(example_3_2_instance,
                             parse_nfd(text)) is expected, text

    def test_undefined_path_excuses_the_pair(self):
        # B empty in one tuple: pairs involving it are trivially true for
        # any NFD mentioning B:C.
        schema = parse_schema("R = {<A, B: {<C>}, D>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [], "D": 1},
            {"A": 1, "B": [{"C": 5}], "D": 2},
        ]})
        assert satisfies(instance, parse_nfd("R:[A, B:C -> D]"))

    def test_empty_relation_satisfies_everything(self, course_schema,
                                                 course_sigma):
        instance = Instance(course_schema, {"Course": []})
        assert satisfies_all(instance, course_sigma)
