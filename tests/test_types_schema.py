"""Unit tests for Schema."""

import pytest

from repro.errors import SchemaError
from repro.types import INT, RecordType, Schema, SetType, parse_type


def _relation():
    return SetType(RecordType([("A", INT)]))


class TestSchemaConstruction:
    def test_basic(self):
        schema = Schema({"R": _relation()})
        assert "R" in schema
        assert schema.relation_names == ("R",)
        assert schema.relation_type("R") == _relation()
        assert schema.element_type("R") == _relation().element

    def test_multiple_relations_keep_order(self):
        schema = Schema({"R": _relation(), "S": _relation()})
        assert schema.relation_names == ("R", "S")
        assert len(schema) == 2

    def test_relation_must_be_set_of_records(self):
        with pytest.raises(SchemaError):
            Schema({"R": INT})
        with pytest.raises(SchemaError):
            Schema({"R": RecordType([("A", INT)])})

    def test_invalid_relation_name(self):
        with pytest.raises(SchemaError):
            Schema({"bad name": _relation()})

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema({})

    def test_repeated_labels_rejected(self):
        bad = parse_type("{<A, B: {<A>}>}")
        # parse_type itself does not enforce global uniqueness...
        with pytest.raises(SchemaError):
            Schema({"R": bad})

    def test_unknown_relation_lookup(self):
        schema = Schema({"R": _relation()})
        with pytest.raises(SchemaError) as excinfo:
            schema.relation_type("S")
        assert "R" in str(excinfo.value)


class TestSchemaIdentity:
    def test_equality_and_hash(self):
        first = Schema({"R": _relation()})
        second = Schema({"R": _relation()})
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality(self):
        first = Schema({"R": _relation()})
        second = Schema({"S": _relation()})
        assert first != second

    def test_immutable(self):
        schema = Schema({"R": _relation()})
        with pytest.raises(AttributeError):
            schema._relations = {}

    def test_iteration(self):
        schema = Schema({"R": _relation(), "S": _relation()})
        assert list(schema) == ["R", "S"]
        assert dict(schema.items())["R"] == _relation()
