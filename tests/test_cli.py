"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.generators import workloads
from repro.io import dump_bundle, load_bundle
from repro.nfd import satisfies_all_fast


@pytest.fixture
def course_bundle(tmp_path):
    path = tmp_path / "course.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma(),
                                workloads.course_instance()))
    return str(path)


@pytest.fixture
def broken_bundle(tmp_path):
    instance = workloads.course_instance().with_relation("Course", [
        {"cnum": "a", "time": 1,
         "students": [{"sid": 1, "age": 20, "grade": "A"}],
         "books": [{"isbn": 1, "title": "X"}]},
        {"cnum": "b", "time": 2,
         "students": [{"sid": 1, "age": 99, "grade": "A"}],
         "books": [{"isbn": 1, "title": "X"}]},
    ])
    path = tmp_path / "broken.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma(), instance))
    return str(path)


class TestCheck:
    def test_clean(self, course_bundle, capsys):
        assert main(["check", course_bundle]) == 0
        assert "satisfies all" in capsys.readouterr().out

    def test_violations_reported(self, broken_bundle, capsys):
        assert main(["check", broken_bundle]) == 1
        out = capsys.readouterr().out
        assert "students:sid" in out
        assert "violation" in out

    def test_stats_go_to_stderr(self, course_bundle, capsys):
        assert main(["check", course_bundle, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "validator stats" not in captured.out
        assert "validator stats (single-pass batch engine)" in \
            captured.err
        assert "elements walked" in captured.err
        assert "satisfies all" in captured.out

    def test_stats_keep_exit_code_on_violation(self, broken_bundle,
                                               capsys):
        assert main(["check", broken_bundle, "--stats"]) == 1
        captured = capsys.readouterr()
        assert "violation" in captured.out
        assert "validator stats" in captured.err

    def test_stats_off_by_default(self, course_bundle, capsys):
        assert main(["check", course_bundle]) == 0
        assert "validator stats" not in capsys.readouterr().err


class TestImplies:
    def test_implied(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[students:sid, time -> books]"]) == 0
        assert "implied" in capsys.readouterr().out

    def test_not_implied(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[time -> cnum]"]) == 1
        assert "not implied" in capsys.readouterr().out

    def test_nonempty_gating(self, tmp_path, capsys):
        schema = workloads.example_3_2_schema()
        from repro.nfd import parse_nfds
        sigma = parse_nfds("R:[A -> B:C]\nR:[B:C -> D]")
        path = tmp_path / "b.json"
        path.write_text(dump_bundle(schema, sigma))
        # fully pessimistic: only the relation is declared non-empty
        assert main(["implies", str(path), "R:[A -> D]",
                     "--nonempty", "R"]) == 1
        # default (Section 3.1 assumption): the chain goes through
        assert main(["implies", str(path), "R:[A -> D]"]) == 0

    def test_spec_persisted_in_bundle(self, tmp_path, capsys):
        from repro.inference import NonEmptySpec
        from repro.nfd import parse_nfds
        from repro.paths import parse_path
        schema = workloads.example_3_2_schema()
        sigma = parse_nfds("R:[A -> B:C]\nR:[B:C -> D]")
        spec = NonEmptySpec({parse_path("R")})
        path = tmp_path / "gated.json"
        path.write_text(dump_bundle(schema, sigma, nonempty=spec))
        # the bundle's own spec gates the inference ...
        assert main(["implies", str(path), "R:[A -> D]"]) == 1
        # ... and explicit flags override it
        assert main(["implies", str(path), "R:[A -> D]",
                     "--nonempty", "R", "--nonempty", "R:B"]) == 0


class TestClosure:
    def test_closure_output(self, course_bundle, capsys):
        assert main(["closure", course_bundle, "Course", "cnum"]) == 0
        out = capsys.readouterr().out
        assert "books" in out
        assert "time" in out


class TestExplain:
    def test_explains_implied(self, course_bundle, capsys):
        assert main(["explain", course_bundle,
                     "Course:[students:sid, time -> books]"]) == 0
        assert "transitivity" in capsys.readouterr().out

    def test_rejects_non_implied(self, course_bundle, capsys):
        assert main(["explain", course_bundle,
                     "Course:[time -> cnum]"]) == 1


class TestProve:
    def test_compiles_proof(self, course_bundle, capsys):
        assert main(["prove", course_bundle,
                     "Course:[students:sid, time -> books]"]) == 0
        out = capsys.readouterr().out
        assert "hypotheses" in out
        assert "by transitivity" in out

    def test_not_implied(self, course_bundle, capsys):
        assert main(["prove", course_bundle,
                     "Course:[time -> cnum]"]) == 1


class TestCounter:
    def test_prints_tables(self, course_bundle, capsys):
        assert main(["counter", course_bundle,
                     "Course:[time -> cnum]"]) == 0
        assert "cnum" in capsys.readouterr().out

    def test_writes_bundle(self, course_bundle, tmp_path, capsys):
        out_path = tmp_path / "witness.json"
        assert main(["counter", course_bundle, "Course:[time -> cnum]",
                     "-o", str(out_path)]) == 0
        schema, sigma, witness = load_bundle(out_path.read_text())
        assert witness is not None
        assert satisfies_all_fast(witness, sigma)

    def test_implied_has_no_countermodel(self, course_bundle, capsys):
        assert main(["counter", course_bundle,
                     "Course:[cnum -> time]"]) == 1


class TestRenderKeysRepair:
    def test_render(self, course_bundle, capsys):
        assert main(["render", course_bundle]) == 0
        assert "cis550" in capsys.readouterr().out

    def test_keys(self, course_bundle, capsys):
        assert main(["keys", course_bundle]) == 0
        assert "cnum" in capsys.readouterr().out

    def test_repair_roundtrip(self, broken_bundle, tmp_path, capsys):
        out_path = tmp_path / "fixed.json"
        assert main(["repair", broken_bundle, "-o", str(out_path)]) == 0
        schema, sigma, fixed = load_bundle(out_path.read_text())
        assert satisfies_all_fast(fixed, sigma)

    def test_repair_in_place_unchanged(self, course_bundle, capsys):
        assert main(["repair", course_bundle]) == 0
        assert "unchanged" in capsys.readouterr().out


class TestAnalyze:
    def test_report(self, course_bundle, capsys):
        assert main(["analyze", course_bundle]) == 0
        out = capsys.readouterr().out
        assert "minimal keys" in out
        assert "cnum" in out
        assert "minimal cover" in out


class TestDiff:
    def test_equivalent_sets(self, course_bundle, tmp_path, capsys):
        # a reformulated bundle: the local grade NFD in simple form
        from repro.nfd import to_simple
        sigma = [to_simple(nfd) for nfd in workloads.course_sigma()]
        other = tmp_path / "reformulated.json"
        other.write_text(dump_bundle(workloads.course_schema(), sigma))
        assert main(["diff", course_bundle, str(other)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_weakening_flagged(self, course_bundle, tmp_path, capsys):
        sigma = workloads.course_sigma()[:-1]  # drop the scheduling rule
        other = tmp_path / "weaker.json"
        other.write_text(dump_bundle(workloads.course_schema(), sigma))
        assert main(["diff", course_bundle, str(other)]) == 1
        assert "dropped guarantees" in capsys.readouterr().out

    def test_schema_mismatch(self, course_bundle, tmp_path, capsys):
        from repro.types import parse_schema
        other = tmp_path / "other_schema.json"
        other.write_text(dump_bundle(parse_schema("R = {<A>}"), []))
        assert main(["diff", course_bundle, str(other)]) == 2


class TestReport:
    def test_prints_markdown(self, course_bundle, capsys):
        assert main(["report", course_bundle, "--title", "My DB"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# My DB")
        assert "## Analysis" in out

    def test_writes_file(self, course_bundle, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main(["report", course_bundle, "-o", str(out_path)]) == 0
        assert out_path.read_text().startswith("# Constraint report")


class TestErrors:
    def test_missing_bundle(self, capsys):
        assert main(["check", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_check_without_instance(self, tmp_path, capsys):
        path = tmp_path / "no_instance.json"
        path.write_text(dump_bundle(workloads.course_schema(),
                                    workloads.course_sigma()))
        assert main(["check", str(path)]) == 2


class TestCounterNonemptySpec:
    """The counter command must not silently drop a restrictive
    non-empty spec: the Appendix-A construction is Section 3.1 only."""

    def test_flag_rejected(self, course_bundle, capsys):
        assert main(["counter", course_bundle, "Course:[time -> cnum]",
                     "--nonempty", "Course:students"]) == 2
        err = capsys.readouterr().err
        assert "Section 3.1" in err

    def test_bundle_spec_rejected(self, tmp_path, capsys):
        import json

        payload = json.loads(dump_bundle(workloads.course_schema(),
                                         workloads.course_sigma(),
                                         workloads.course_instance()))
        payload["nonempty"] = ["Course:students"]
        path = tmp_path / "gated.json"
        path.write_text(json.dumps(payload))
        assert main(["counter", str(path),
                     "Course:[time -> cnum]"]) == 2
        assert "Section 3.1" in capsys.readouterr().err

    def test_all_nonempty_spec_allowed(self, tmp_path, capsys):
        import json

        payload = json.loads(dump_bundle(workloads.course_schema(),
                                         workloads.course_sigma(),
                                         workloads.course_instance()))
        payload["nonempty"] = "*"
        path = tmp_path / "explicit31.json"
        path.write_text(json.dumps(payload))
        assert main(["counter", str(path),
                     "Course:[time -> cnum]"]) == 0


class TestStrategyFlag:
    def test_dense_implies_matches_default(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[students:sid, time -> books]"]) == 0
        default = capsys.readouterr().out
        assert main(["implies", course_bundle,
                     "Course:[students:sid, time -> books]",
                     "--strategy", "dense"]) == 0
        assert capsys.readouterr().out == default
        assert main(["implies", course_bundle,
                     "Course:[time -> cnum]",
                     "--strategy", "dense"]) == 1

    def test_dense_closure_and_keys_match_default(self, course_bundle,
                                                  capsys):
        assert main(["closure", course_bundle, "Course", "cnum"]) == 0
        closure_out = capsys.readouterr().out
        assert main(["closure", course_bundle, "Course", "cnum",
                     "--strategy", "dense"]) == 0
        assert capsys.readouterr().out == closure_out
        assert main(["keys", course_bundle]) == 0
        keys_out = capsys.readouterr().out
        assert main(["keys", course_bundle,
                     "--strategy", "dense"]) == 0
        assert capsys.readouterr().out == keys_out

    def test_dense_stats_name_the_strategy(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[students:sid, time -> books]",
                     "--strategy", "dense", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "engine stats (dense strategy)" in err
        assert "mask tests" in err

    def test_unknown_strategy_rejected(self, course_bundle, capsys):
        with pytest.raises(SystemExit):
            main(["implies", course_bundle, "Course:[cnum -> time]",
                  "--strategy", "magic"])


class TestStatsFlag:
    def test_implies_prints_stats_to_stderr(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[students:sid, time -> books]",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert "engine stats" not in captured.out
        assert "engine stats (worklist strategy)" in captured.err
        assert "apply attempts" in captured.err

    def test_exit_codes_unchanged_by_stats(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[time -> cnum]", "--stats"]) == 1
        assert main(["closure", course_bundle, "Course", "cnum",
                     "--stats"]) == 0
        assert main(["counter", course_bundle, "Course:[time -> cnum]",
                     "--stats"]) == 0
        assert "engine stats" in capsys.readouterr().err

    def test_stats_off_by_default(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[cnum -> time]"]) == 0
        assert "engine stats" not in capsys.readouterr().err


class TestClosureBaseValidation:
    def test_unknown_relation_is_usage_error(self, course_bundle, capsys):
        assert main(["closure", course_bundle, "Nope", "cnum"]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_base_is_usage_error(self, course_bundle, capsys):
        assert main(["closure", course_bundle, "", ""]) == 2
        assert "bad closure base" in capsys.readouterr().err

    def test_non_set_base_is_usage_error(self, course_bundle, capsys):
        assert main(["closure", course_bundle, "Course:cnum"]) == 2
        assert "set-valued" in capsys.readouterr().err


class TestCacheStatsFlag:
    def test_implies_prints_session_stats_to_stderr(self, course_bundle,
                                                    capsys):
        assert main(["implies", course_bundle,
                     "Course:[students:sid, time -> books]",
                     "--cache-stats"]) == 0
        captured = capsys.readouterr()
        assert "session stats" not in captured.out
        assert "session stats (fingerprint " in captured.err
        assert "hit rate" in captured.err

    def test_exit_codes_unchanged_by_cache_stats(self, course_bundle,
                                                 capsys):
        assert main(["implies", course_bundle,
                     "Course:[time -> cnum]", "--cache-stats"]) == 1
        assert main(["closure", course_bundle, "Course", "cnum",
                     "--cache-stats"]) == 0
        assert main(["keys", course_bundle, "--cache-stats"]) == 0
        assert main(["analyze", course_bundle, "--cache-stats"]) == 0
        assert "session stats" in capsys.readouterr().err

    def test_diff_prints_both_sessions(self, course_bundle, capsys):
        assert main(["diff", course_bundle, course_bundle,
                     "--cache-stats"]) == 0
        err = capsys.readouterr().err
        assert err.count("session stats (fingerprint ") == 2

    def test_cache_stats_off_by_default(self, course_bundle, capsys):
        assert main(["implies", course_bundle,
                     "Course:[cnum -> time]"]) == 0
        assert main(["keys", course_bundle]) == 0
        assert "session stats" not in capsys.readouterr().err


@pytest.fixture
def broken_warehouse_bundle(tmp_path):
    instance = workloads.warehouse_instance().with_relation("StoreA", [
        {"order_id": 1, "customer": "ada", "lines": []},
        {"order_id": 1, "customer": "grace", "lines": []},
    ]).with_relation("StoreB", [
        {"order_id": 2, "customer": "ada", "lines": []},
        {"order_id": 2, "customer": "grace", "lines": []},
    ])
    path = tmp_path / "warehouse.json"
    path.write_text(dump_bundle(workloads.warehouse_schema(),
                                workloads.warehouse_sigma(), instance))
    return str(path)


class TestJobsFlag:
    def test_keys_parallel_output_is_byte_identical(self, course_bundle,
                                                    capsys):
        assert main(["keys", course_bundle]) == 0
        serial = capsys.readouterr()
        assert main(["keys", course_bundle, "--jobs", "4"]) == 0
        parallel = capsys.readouterr()
        assert parallel.out == serial.out
        assert "cnum" in serial.out

    def test_check_parallel_output_is_byte_identical(
            self, broken_warehouse_bundle, capsys):
        assert main(["check", broken_warehouse_bundle]) == 1
        serial = capsys.readouterr()
        assert main(["check", broken_warehouse_bundle,
                     "--jobs", "2"]) == 1
        parallel = capsys.readouterr()
        assert parallel.out == serial.out
        assert "violation" in serial.out

    def test_check_clean_parallel_exit_code(self, course_bundle, capsys):
        assert main(["check", course_bundle, "--jobs", "2"]) == 0
        assert "satisfies all" in capsys.readouterr().out

    def test_jobs_disable_cache_stats_with_notice(self, course_bundle,
                                                  capsys):
        assert main(["keys", course_bundle, "--jobs", "4",
                     "--cache-stats"]) == 0
        captured = capsys.readouterr()
        assert "session stats" not in captured.err
        assert "cache stats unavailable" in captured.err


@pytest.fixture
def course_jsonl(tmp_path):
    from repro.io.stream import dump_jsonl, iter_set_elements
    path = tmp_path / "course.jsonl"
    dump_jsonl(path, iter_set_elements(
        workloads.course_instance().relation("Course")))
    return str(path)


class TestCheckStreamDegenerate:
    """``check --stream`` edge cases: bad shard counts, empty dumps,
    over-sharding, and an already-expired deadline all end cleanly —
    a typed message on stderr and exit 2, or a normal verdict — never
    a traceback or a silent success."""

    def test_shards_zero_is_an_error(self, course_bundle, course_jsonl,
                                     capsys):
        assert main(["check", course_bundle, "--stream", course_jsonl,
                     "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_shards_negative_is_an_error(self, course_bundle,
                                         course_jsonl, capsys):
        assert main(["check", course_bundle, "--stream", course_jsonl,
                     "--shards", "-3"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_empty_jsonl_is_a_typed_error(self, course_bundle, tmp_path,
                                          capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["check", course_bundle, "--stream", str(empty),
                     "--shards", "2"]) == 2
        assert "empty stream" in capsys.readouterr().err

    def test_more_shards_than_lines_is_fine(self, course_bundle,
                                            course_jsonl, capsys):
        # empty shards are legal; the verdict matches the serial scan
        assert main(["check", course_bundle, "--stream", course_jsonl,
                     "--shards", "50"]) == 0
        assert "satisfies all" in capsys.readouterr().out

    def test_zero_deadline_means_already_exhausted(self, course_bundle,
                                                   course_jsonl, capsys):
        # deadline=0 is an expired budget, not "no deadline": the
        # verdict is unknown, so the exit code is 2, not 0
        assert main(["check", course_bundle, "--stream", course_jsonl,
                     "--deadline", "0"]) == 2
        captured = capsys.readouterr()
        assert "budget exhausted (deadline)" in captured.err
        assert "satisfies all" not in captured.out

    def test_backend_choices_agree(self, course_bundle, course_jsonl,
                                   capsys):
        for backend in ("dict", "numpy", "auto"):
            assert main(["check", course_bundle, "--stream",
                         course_jsonl, "--backend", backend]) == 0, \
                backend
            assert "satisfies all" in capsys.readouterr().out
