"""Unit tests for path evaluation on values (Section 2.1 semantics)."""

import pytest

from repro.errors import PathError, ValueError_
from repro.paths import parse_path
from repro.types import parse_schema
from repro.values import (
    Instance,
    first_value,
    from_python,
    iter_base_sets,
    path_defined,
    values_at,
)


@pytest.fixture
def paper_value():
    """The Section 2.1 example: A maps to {<B:10,C:20>, <B:15,C:21>}."""
    return from_python({
        "A": [{"B": 10, "C": 20}, {"B": 15, "C": 21}],
    })


class TestValuesAt:
    def test_empty_path_yields_value(self, paper_value):
        assert values_at(paper_value, parse_path("")) == [paper_value]

    def test_projection(self, paper_value):
        results = values_at(paper_value, parse_path("A"))
        assert len(results) == 1
        assert results[0].is_set()

    def test_traversal_is_multivalued(self, paper_value):
        # A:B(v) = 10 or A:B(v) = 15 — the paper's example.
        results = {v.value for v in values_at(paper_value,
                                              parse_path("A:B"))}
        assert results == {10, 15}

    def test_empty_set_yields_nothing(self):
        value = from_python({"A": []})
        assert values_at(value, parse_path("A:B")) == []

    def test_unknown_field(self, paper_value):
        with pytest.raises(PathError):
            values_at(paper_value, parse_path("Z"))

    def test_path_into_atom(self):
        value = from_python({"A": 1})
        with pytest.raises(PathError):
            values_at(value, parse_path("A:B"))

    def test_first_value(self, paper_value):
        assert first_value(paper_value, parse_path("A")).is_set()
        with pytest.raises(ValueError_):
            first_value(from_python({"A": []}), parse_path("A:B"))


class TestPathDefined:
    def test_defined_on_full_sets(self, paper_value):
        assert path_defined(paper_value, parse_path("A:B"))

    def test_undefined_through_empty_set(self):
        value = from_python({"A": []})
        assert not path_defined(value, parse_path("A:B"))

    def test_path_ending_at_empty_set_is_defined(self):
        value = from_python({"A": []})
        assert path_defined(value, parse_path("A"))

    def test_partially_empty_branch_is_undefined(self):
        # One branch dies: the paper's "always yields a value" fails.
        value = from_python({
            "A": [{"B": []}, {"B": [{"C": 1}]}],
        })
        assert not path_defined(value, parse_path("A:B:C"))

    def test_empty_path_always_defined(self, paper_value):
        assert path_defined(paper_value, parse_path(""))


class TestIterBaseSets:
    @pytest.fixture
    def instance(self):
        schema = parse_schema("R = {<A: {<B: {<C>}>}>}")
        return Instance(schema, {"R": [
            {"A": [{"B": [{"C": 1}]}, {"B": [{"C": 2}, {"C": 3}]}]},
        ]})

    def test_relation_base(self, instance):
        sets = list(iter_base_sets(instance, parse_path("R")))
        assert len(sets) == 1
        assert sets[0] == instance.relation("R")

    def test_one_level(self, instance):
        sets = list(iter_base_sets(instance, parse_path("R:A")))
        assert len(sets) == 1
        assert len(sets[0]) == 2

    def test_two_levels(self, instance):
        sets = list(iter_base_sets(instance, parse_path("R:A:B")))
        assert len(sets) == 2
        sizes = sorted(len(s) for s in sets)
        assert sizes == [1, 2]

    def test_empty_relation_yields_it(self):
        schema = parse_schema("R = {<A: {<B>}>}")
        instance = Instance(schema, {"R": []})
        sets = list(iter_base_sets(instance, parse_path("R")))
        assert len(sets) == 1 and sets[0].is_empty
        # but traversing deeper yields no base sets at all
        assert list(iter_base_sets(instance, parse_path("R:A"))) == []
