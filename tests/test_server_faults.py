"""Fault injection against the daemon: every failure is typed & bounded.

Each test drives a live server — :class:`BackgroundServer` in-process,
or a real ``repro serve`` subprocess where the fault is process death —
through one hostile scenario: malformed JSON, oversized frames, unknown
request types, handshake violations, clients vanishing mid-request, the
server dying mid-stream, deadline expiry, and admission-control
overflow.  The contract under test is uniform:

* the daemon answers with a *typed* error (a code from
  ``protocol.ERROR_CODES``) or closes the connection cleanly — it never
  hangs and never stack-traces to stderr;
* the warm pool survives every fault: after each scenario the same
  server still answers a correct query.

Every socket operation here carries an explicit timeout, so a
regression that *would* hang fails fast instead.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path as FsPath

import pytest

from repro.generators import workloads
from repro.inference import ImplicationSession
from repro.io.json_io import dump_bundle
from repro.server import (BackgroundServer, ClientError, ReproClient,
                          ServerConfig, ServerError)
from repro.server.protocol import PROTOCOL_VERSION, encode

#: Per-operation socket timeout: generous enough for a loaded CI
#: machine, small enough that a hang fails the test quickly.
TIMEOUT = 10.0
REPO_ROOT = FsPath(__file__).resolve().parents[1]


def _bundle() -> dict:
    return json.loads(dump_bundle(workloads.course_schema(),
                                  workloads.course_sigma(),
                                  workloads.course_instance()))


def _assert_alive(host: str, port: int) -> None:
    """The pool survived: the server still answers a correct query."""
    bundle = _bundle()
    sigma = workloads.course_sigma()
    session = ImplicationSession(workloads.course_schema(), sigma)
    with ReproClient(host, port, timeout=TIMEOUT) as probe:
        assert session.implies(sigma[0]) is True
        assert probe.implies(bundle, str(sigma[0])) is True


@pytest.fixture
def bg():
    config = ServerConfig(allow_debug=True)
    with BackgroundServer(config) as server:
        yield server


# ----------------------------------------------------------- frame faults


def test_malformed_json_is_typed_and_recoverable(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
        client.send_raw(b"this is not json\n")
        response = client.read_response()
        assert response["ok"] is False
        assert response["error"] == "bad_json"
        # the stream resyncs at the newline: the connection still works
        assert client.ping()["pong"] is True
    _assert_alive(bg.host, bg.port)


def test_non_object_frame_is_bad_request(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
        client.send_raw(b"[1, 2, 3]\n")
        response = client.read_response()
        assert response["error"] == "bad_request"
        client.send_raw(b'{"id": 1}\n')  # object, but no "type"
        assert client.read_response()["error"] == "bad_request"
        client.send_raw(b'{"id": {"no": 1}, "type": "ping"}\n')
        assert client.read_response()["error"] == "bad_request"
        assert client.ping()["pong"] is True
    _assert_alive(bg.host, bg.port)


def test_undecodable_utf8_is_bad_json(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
        client.send_raw(b"\xff\xfe{}\n")
        assert client.read_response()["error"] == "bad_json"
        assert client.ping()["pong"] is True


def test_oversized_frame_answers_then_closes():
    config = ServerConfig(allow_debug=True, max_frame_bytes=4096)
    with BackgroundServer(config) as bg:
        with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
            client.send_raw(b'{"pad": "' + b"x" * 8192 + b'"}\n')
            response = client.read_response()
            assert response["error"] == "frame_too_large"
            # past an oversized frame the stream position is gone: the
            # daemon must close, not guess where the next frame starts
            with pytest.raises(ClientError):
                client.ping()
        _assert_alive(bg.host, bg.port)


# ------------------------------------------------------- protocol faults


def test_unknown_request_type(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
        with pytest.raises(ServerError) as excinfo:
            client.request("frobnicate")
        assert excinfo.value.code == "unknown_type"
        assert client.ping()["pong"] is True
    _assert_alive(bg.host, bg.port)


def test_handshake_version_mismatch_closes(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT,
                     handshake=False) as client:
        with pytest.raises(ServerError) as excinfo:
            client.request("hello", version=PROTOCOL_VERSION + 99)
        assert excinfo.value.code == "version_mismatch"
        assert excinfo.value.response["server_version"] \
            == PROTOCOL_VERSION
        with pytest.raises(ClientError):
            client.read_response()  # connection was closed
    _assert_alive(bg.host, bg.port)


def test_query_before_handshake_is_refused(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT,
                     handshake=False) as client:
        with pytest.raises(ServerError) as excinfo:
            client.ping()
        assert excinfo.value.code == "handshake_required"
        with pytest.raises(ClientError):
            client.read_response()  # connection was closed
    _assert_alive(bg.host, bg.port)


def test_invalid_bundle_and_query_params(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
        with pytest.raises(ServerError) as excinfo:
            client.implies({"nfds": []}, "R:[a -> b]")  # no schema
        assert excinfo.value.code == "invalid_bundle"
        with pytest.raises(ServerError) as excinfo:
            client.implies(_bundle(), "this is not an nfd")
        assert excinfo.value.code == "invalid_query"
        with pytest.raises(ServerError) as excinfo:
            client.request("implies", bundle=_bundle(),
                           nfd=str(workloads.course_sigma()[0]),
                           strategy="quantum")
        assert excinfo.value.code == "invalid_query"
        with pytest.raises(ServerError) as excinfo:
            client.request("check", bundle=_bundle(), deadline=-1)
        assert excinfo.value.code == "invalid_query"
        # the connection survives every typed refusal
        assert client.ping()["pong"] is True
    _assert_alive(bg.host, bg.port)


def test_shutdown_without_flag_is_refused(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
        with pytest.raises(ServerError) as excinfo:
            client.shutdown()
        assert excinfo.value.code == "shutdown_disabled"
        assert client.ping()["pong"] is True
    _assert_alive(bg.host, bg.port)


# ------------------------------------------------------ connection faults


def test_client_disconnect_mid_request(bg):
    # a request line abandoned halfway, then the socket slammed shut
    client = ReproClient(bg.host, bg.port, timeout=TIMEOUT)
    client.send_raw(b'{"id": 7, "type": "implies", "bundle": {')
    client.close()
    # an in-flight sleeper whose client vanishes before the response
    client = ReproClient(bg.host, bg.port, timeout=TIMEOUT)
    client.send_raw(encode({"id": 8, "type": "ping", "sleep_ms": 50}))
    client.close()
    deadline = time.monotonic() + TIMEOUT
    while bg.server.stats.connections_active > 0:
        assert time.monotonic() < deadline, \
            "server did not reap dead connections"
        time.sleep(0.01)
    _assert_alive(bg.host, bg.port)


def test_deadline_expiry_is_typed(bg):
    with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
        with pytest.raises(ServerError) as excinfo:
            client.check(_bundle(), deadline=0)
        assert excinfo.value.code == "deadline_exceeded"
        assert "verdict unknown" in str(excinfo.value)
        # an expired budget refused one request, not the connection
        assert client.check(_bundle())["satisfied"] is True
    assert bg.server.stats.deadline_hits >= 1
    _assert_alive(bg.host, bg.port)


def test_connection_deadline_bounds_queries():
    config = ServerConfig(allow_debug=True, connection_deadline=0.0)
    with BackgroundServer(config) as bg:
        with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as client:
            with pytest.raises(ServerError) as excinfo:
                client.implies(_bundle(),
                               str(workloads.course_sigma()[0]))
            assert excinfo.value.code == "deadline_exceeded"
            # only the admission-controlled query types are budgeted:
            # the exhausted connection still answers control requests
            assert client.ping()["pong"] is True
        assert bg.server.stats.deadline_hits >= 1


def test_overflow_sheds_with_retry_after():
    config = ServerConfig(allow_debug=True, max_inflight=1,
                          max_pending=0, retry_after_ms=123)
    with BackgroundServer(config) as bg:
        blocker = ReproClient(bg.host, bg.port, timeout=TIMEOUT)
        try:
            # park a sleeper in the single execution slot...
            blocker.send_raw(encode({"id": 99, "type": "ping",
                                     "sleep_ms": 1500}))
            deadline = time.monotonic() + TIMEOUT
            while bg.server._inflight == 0 \
                    and not bg.server._slots.locked():
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # ...so the next admission-controlled request is shed
            with ReproClient(bg.host, bg.port, timeout=TIMEOUT) as shed:
                with pytest.raises(ServerError) as excinfo:
                    shed.ping(sleep_ms=1)
                assert excinfo.value.code == "overloaded"
                assert excinfo.value.retry_after_ms == 123
                # non-admission requests still answer while saturated
                stats = shed.stats()
                assert stats["server"]["sheds"] >= 1
            # the parked sleeper completes normally
            response = blocker.read_response()
            assert response["ok"] is True and response["id"] == 99
        finally:
            blocker.close()
        _assert_alive(bg.host, bg.port)


# -------------------------------------------------------- process faults


def _spawn_daemon(*extra_args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=str(REPO_ROOT))
    ready: dict = {}

    def wait_ready():
        match = re.search(r"listening on ([^:]+):(\d+)",
                          proc.stdout.readline())
        if match:
            ready["host"], ready["port"] = \
                match.group(1), int(match.group(2))

    waiter = threading.Thread(target=wait_ready, daemon=True)
    waiter.start()
    waiter.join(timeout=30.0)
    if "port" not in ready:
        proc.kill()
        proc.wait(timeout=10.0)
        pytest.fail("daemon did not become ready in time")
    return proc, ready["host"], ready["port"]


def test_server_killed_mid_stream_raises_not_hangs():
    proc, host, port = _spawn_daemon("--allow-debug")
    try:
        client = ReproClient(host, port, timeout=TIMEOUT)
        client.send_raw(encode({"id": 1, "type": "ping",
                                "sleep_ms": 30_000}))
        time.sleep(0.2)  # let the sleeper reach the server
        proc.kill()
        # the pending read surfaces as a typed client error, bounded
        # by the socket timeout -- never a hang
        with pytest.raises(ClientError):
            client.read_response()
        client.close()
    finally:
        if proc.poll() is None:  # pragma: no cover - kill raced
            proc.kill()
        proc.wait(timeout=10.0)


def test_faulted_daemon_exits_clean_with_empty_stderr():
    """A subprocess daemon absorbs a fault barrage, then terminates:
    exit status 0 and not one byte of stderr (no stack traces)."""
    proc, host, port = _spawn_daemon()
    try:
        with ReproClient(host, port, timeout=TIMEOUT) as client:
            client.send_raw(b"}{ garbage \n")
            assert client.read_response()["error"] == "bad_json"
            with pytest.raises(ServerError):
                client.request("no_such_verb")
            with pytest.raises(ServerError):
                client.implies({"schema": 42}, "R:[a -> b]")
            assert client.ping()["pong"] is True
        # a half-written frame, then the client vanishes
        half = ReproClient(host, port, timeout=TIMEOUT)
        half.send_raw(b'{"id": 3, "type": ')
        half.close()
        _assert_alive(host, port)
    finally:
        proc.terminate()
        out, err = proc.communicate(timeout=10.0)
    assert proc.returncode == 0, (proc.returncode, err)
    assert err == "", err
