"""Tests for the process-parallel fan-out primitive and its users."""

import pytest

from repro.analysis.keys import minimal_keys
from repro.generators import workloads
from repro.inference import NonEmptySpec
from repro.nfd import ValidatorEngine
from repro.parallel import (
    PARALLEL_THRESHOLD,
    process_map,
    spec_from_payload,
    spec_payload,
)
from repro.paths import parse_path


# worker functions must be module-level so the pool can pickle them
def _setup(payload):
    return payload * 10


def _probe(context, item):
    return context + item


class TestProcessMap:
    def test_serial_matches_expected(self):
        result = process_map(_setup, 1, _probe, [1, 2, 3], jobs=1)
        assert result == [11, 12, 13]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        serial = process_map(_setup, 5, _probe, items, jobs=1)
        parallel = process_map(_setup, 5, _probe, items, jobs=3)
        assert parallel == serial == [50 + i for i in items]

    def test_small_workloads_stay_serial(self, monkeypatch):
        import repro.parallel as parallel_module

        def _explode(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("a pool was spawned")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                            _explode)
        items = list(range(PARALLEL_THRESHOLD - 1))
        assert process_map(_setup, 0, _probe, items, jobs=8) == items

    def test_jobs_one_stays_serial(self, monkeypatch):
        import repro.parallel as parallel_module

        def _explode(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("a pool was spawned")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                            _explode)
        items = list(range(50))
        assert process_map(_setup, 0, _probe, items, jobs=1) == items


class TestSpecPayload:
    def test_none_round_trip(self):
        assert spec_from_payload(spec_payload(None)) is None

    def test_all_nonempty_round_trip(self):
        spec = spec_from_payload(spec_payload(NonEmptySpec.all_nonempty()))
        assert spec.declares_everything

    def test_partial_round_trip(self):
        spec = NonEmptySpec({parse_path("Course"),
                             parse_path("Course:students")})
        restored = spec_from_payload(spec_payload(spec))
        assert not restored.declares_everything
        assert set(restored.declared) == set(spec.declared)
        assert spec_payload(restored) == spec_payload(spec)


class TestParallelKeys:
    def test_parallel_sweep_matches_serial(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        serial = minimal_keys(schema, sigma, "Course")
        assert minimal_keys(schema, sigma, "Course", jobs=4) == serial

    def test_parallel_sweep_matches_serial_gated(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        spec = NonEmptySpec({parse_path("Course")})
        serial = minimal_keys(schema, sigma, "Course", nonempty=spec)
        parallel = minimal_keys(schema, sigma, "Course", nonempty=spec,
                                jobs=4)
        assert parallel == serial
        assert parallel != minimal_keys(schema, sigma, "Course")


def _rendered(result):
    return [v.describe() for v in result.violations]


class TestParallelValidation:
    @pytest.fixture
    def broken_warehouse(self):
        # same order id, two customers, in both sources: violations in
        # more than one relation exercise the fan-out's result merge
        instance = workloads.warehouse_instance().with_relation(
            "StoreA", [
                {"order_id": 1, "customer": "ada", "lines": []},
                {"order_id": 1, "customer": "grace", "lines": []},
            ])
        return instance.with_relation("StoreB", [
            {"order_id": 2, "customer": "ada", "lines": []},
            {"order_id": 2, "customer": "grace", "lines": []},
        ])

    def test_fanout_matches_serial(self, broken_warehouse):
        engine = ValidatorEngine(workloads.warehouse_schema(),
                                 workloads.warehouse_sigma())
        serial = engine.validate(broken_warehouse, all_violations=True)
        parallel = engine.validate(broken_warehouse,
                                   all_violations=True, jobs=2)
        assert serial.ok == parallel.ok is False
        assert _rendered(parallel) == _rendered(serial)

    def test_fanout_on_clean_instance(self):
        engine = ValidatorEngine(workloads.warehouse_schema(),
                                 workloads.warehouse_sigma())
        instance = workloads.warehouse_instance()
        assert engine.validate(instance, jobs=2).ok is True

def _failing_probe(context, item):
    if item == 3:
        raise RuntimeError(f"probe exploded on item {item}")
    return item


class TestWorkerTracebacks:
    def test_worker_failure_chains_remote_traceback(self):
        from repro.parallel import RemoteTraceback

        with pytest.raises(RuntimeError,
                           match="probe exploded on item 3") as info:
            process_map(_setup, 0, _failing_probe, list(range(8)),
                        jobs=2)
        cause = info.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        remote = str(cause)
        assert "remote worker traceback" in remote
        assert "_failing_probe" in remote  # the worker's own frames
        assert "probe exploded on item 3" in remote

    def test_serial_failure_keeps_plain_traceback(self):
        with pytest.raises(RuntimeError) as info:
            process_map(_setup, 0, _failing_probe, list(range(8)),
                        jobs=1)
        assert info.value.__cause__ is None
