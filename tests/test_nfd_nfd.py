"""Unit tests for the NFD class and its well-formedness checks."""

import pytest

from repro.errors import NFDError
from repro.nfd import NFD
from repro.paths import Path, parse_path
from repro.types import parse_schema


@pytest.fixture
def schema():
    return parse_schema("""
        Course = {<cnum: string, time: int,
                   students: {<sid: int, grade: string>}>}
    """)


class TestConstruction:
    def test_basic(self):
        nfd = NFD(parse_path("Course"), [parse_path("cnum")],
                  parse_path("time"))
        assert nfd.relation == "Course"
        assert nfd.is_simple
        assert not nfd.is_degenerate

    def test_lhs_is_a_set(self):
        nfd = NFD(parse_path("R"),
                  [parse_path("A"), parse_path("A")], parse_path("B"))
        assert len(nfd.lhs) == 1

    def test_equality_ignores_lhs_order(self):
        a = NFD(parse_path("R"), [parse_path("A"), parse_path("B")],
                parse_path("C"))
        b = NFD(parse_path("R"), [parse_path("B"), parse_path("A")],
                parse_path("C"))
        assert a == b
        assert hash(a) == hash(b)

    def test_degenerate(self):
        nfd = NFD(parse_path("R:A"), [], parse_path("F"))
        assert nfd.is_degenerate
        assert not nfd.is_simple

    def test_empty_base_rejected(self):
        with pytest.raises(NFDError):
            NFD(Path(()), [], parse_path("A"))

    def test_empty_member_paths_rejected(self):
        with pytest.raises(NFDError):
            NFD(parse_path("R"), [Path(())], parse_path("A"))
        with pytest.raises(NFDError):
            NFD(parse_path("R"), [parse_path("A")], Path(()))

    def test_str_is_paper_syntax(self):
        nfd = NFD(parse_path("Course"),
                  [parse_path("time"), parse_path("students:sid")],
                  parse_path("cnum"))
        assert str(nfd) == "Course:[students:sid, time -> cnum]"
        degenerate = NFD(parse_path("R:A"), [], parse_path("F"))
        assert str(degenerate) == "R:A:[∅ -> F]"

    def test_trivial(self):
        assert NFD(parse_path("R"), [parse_path("A")],
                   parse_path("A")).is_trivial()
        assert not NFD(parse_path("R"), [parse_path("A")],
                       parse_path("B")).is_trivial()


class TestWellFormedness:
    def test_good(self, schema):
        NFD.parse("Course:[cnum -> students:grade]") \
            .check_well_formed(schema)
        NFD.parse("Course:students:[sid -> grade]") \
            .check_well_formed(schema)

    def test_unknown_relation(self, schema):
        with pytest.raises(NFDError):
            NFD.parse("Nope:[A -> B]").check_well_formed(schema)

    def test_base_through_non_set(self, schema):
        with pytest.raises(NFDError):
            NFD.parse("Course:cnum:[x -> y]").check_well_formed(schema)

    def test_ill_typed_member(self, schema):
        with pytest.raises(NFDError):
            NFD.parse("Course:[cnum -> nope]").check_well_formed(schema)
        assert not NFD.parse("Course:[cnum -> nope]") \
            .is_well_formed(schema)

    def test_member_relative_to_base(self, schema):
        # sid is valid relative to Course:students, not to Course.
        assert NFD.parse("Course:students:[sid -> grade]") \
            .is_well_formed(schema)
        assert not NFD.parse("Course:[sid -> grade]") \
            .is_well_formed(schema)


class TestDerivedForms:
    def test_augment(self):
        nfd = NFD.parse("R:[A -> B]")
        augmented = nfd.augment([parse_path("C")])
        assert augmented.lhs == {parse_path("A"), parse_path("C")}
        assert augmented.rhs == nfd.rhs

    def test_with_lhs_rhs(self):
        nfd = NFD.parse("R:[A -> B]")
        assert nfd.with_rhs(parse_path("C")).rhs == parse_path("C")
        assert nfd.with_lhs([]).is_degenerate

    def test_sorted_lhs(self):
        nfd = NFD.parse("R:[B, A:C, A -> D]")
        assert [str(p) for p in nfd.sorted_lhs()] == ["A", "A:C", "B"]

    def test_ordering(self):
        a = NFD.parse("R:[A -> B]")
        b = NFD.parse("R:[A -> C]")
        assert sorted([b, a]) == [a, b]
