"""Unit and randomized tests for the chase substrate."""

import random

import pytest

from repro.chase import (
    Tableau,
    distinguished,
    fd_implies_chase,
    lossless_join,
    nondistinguished,
    repair,
    replace_value,
)
from repro.errors import InferenceError
from repro.generators import random_instance, random_schema, random_sigma
from repro.generators import workloads
from repro.inference import FD, fd_implies
from repro.nfd import parse_nfds, satisfies_all_fast
from repro.values import Atom, check_instance, from_python


class TestTableau:
    def test_symbols(self):
        assert distinguished("A") == distinguished("A")
        assert distinguished("A") != nondistinguished(1)
        assert str(distinguished("A")) == "aA"

    def test_add_row_requires_all_attributes(self):
        tableau = Tableau(["A", "B"])
        with pytest.raises(InferenceError):
            tableau.add_row({"A": distinguished("A")})

    def test_equate_prefers_distinguished(self):
        tableau = Tableau(["A"])
        b = tableau.fresh()
        tableau.add_row({"A": b})
        tableau.equate(distinguished("A"), b)
        assert tableau.rows[0]["A"] == distinguished("A")

    def test_component_rows(self):
        tableau = Tableau(["A", "B", "C"])
        tableau.add_component_row(["A", "B"])
        tableau.add_component_row(["B", "C"])
        assert len(tableau) == 2
        assert tableau.rows[0]["A"] == distinguished("A")
        assert not tableau.rows[0]["C"].is_distinguished

    def test_to_text(self):
        tableau = Tableau(["A", "B"])
        tableau.add_component_row(["A"])
        text = tableau.to_text()
        assert "A" in text and "aA" in text


class TestFDChaseImplication:
    ATTRS = ["A", "B", "C", "D"]

    def test_transitivity(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        assert fd_implies_chase(self.ATTRS, fds, FD({"A"}, "C"))
        assert not fd_implies_chase(self.ATTRS, fds, FD({"C"}, "A"))

    def test_agrees_with_armstrong_randomized(self):
        rng = random.Random(42)
        attributes = ["A", "B", "C", "D", "E"]
        for _ in range(40):
            fds = [
                FD(set(rng.sample(attributes, rng.randint(1, 2))),
                   rng.choice(attributes))
                for _ in range(rng.randint(1, 5))
            ]
            candidate = FD(
                set(rng.sample(attributes, rng.randint(1, 2))),
                rng.choice(attributes))
            assert fd_implies_chase(attributes, fds, candidate) == \
                fd_implies(fds, candidate), (fds, candidate)


class TestLosslessJoin:
    ATTRS = ["A", "B", "C"]

    def test_textbook_lossless(self):
        # R(A,B,C), A -> B: decomposition {AB, AC} is lossless.
        fds = [FD({"A"}, "B")]
        assert lossless_join(self.ATTRS, [["A", "B"], ["A", "C"]], fds)

    def test_textbook_lossy(self):
        # without any FDs, {AB, BC} is lossy unless B is a key part...
        assert not lossless_join(self.ATTRS, [["A", "B"], ["B", "C"]], [])

    def test_fd_makes_it_lossless(self):
        fds = [FD({"B"}, "C")]
        assert lossless_join(self.ATTRS, [["A", "B"], ["B", "C"]], fds)

    def test_single_component_is_lossless(self):
        assert lossless_join(self.ATTRS, [["A", "B", "C"]], [])


class TestReplaceValue:
    def test_atom_replacement_cascades(self):
        value = from_python([{"A": 1, "B": [{"C": 1}]},
                             {"A": 2, "B": [{"C": 1}]}])
        replaced = replace_value(value, Atom(2), Atom(1))
        # both rows now identical -> the set collapses to one element
        assert len(replaced) == 1

    def test_set_replacement(self):
        old = from_python([{"C": 1}])
        new = from_python([{"C": 2}])
        value = from_python({"A": 1, "B": [{"C": 1}]})
        replaced = replace_value(value, old, new)
        assert replaced.get("B") == new


class TestRepair:
    def test_flat_repair(self):
        schema_sigma = parse_nfds("R:[A -> B]")
        from repro.types import parse_schema
        from repro.values import Instance
        schema = parse_schema("R = {<A, B>}")
        broken = Instance(schema, {"R": [
            {"A": 1, "B": 10}, {"A": 1, "B": 20}, {"A": 2, "B": 30},
        ]})
        fixed = repair(broken, schema_sigma)
        check_instance(fixed)
        assert satisfies_all_fast(fixed, schema_sigma)
        # the two clashing rows merged
        assert len(fixed.relation("R")) == 2

    def test_nested_repair(self):
        sigma = workloads.course_sigma()
        broken = workloads.course_instance().with_relation("Course", [
            {"cnum": "a", "time": 1,
             "students": [{"sid": 1, "age": 20, "grade": "A"}],
             "books": [{"isbn": 7, "title": "X"}]},
            {"cnum": "b", "time": 2,
             "students": [{"sid": 1, "age": 21, "grade": "A"}],  # age!
             "books": [{"isbn": 7, "title": "Y"}]},              # title!
        ])
        assert not satisfies_all_fast(broken, sigma)
        fixed = repair(broken, sigma)
        check_instance(fixed)
        assert satisfies_all_fast(fixed, sigma)

    def test_already_satisfying_is_identity(self):
        sigma = workloads.course_sigma()
        instance = workloads.course_instance()
        assert repair(instance, sigma) == instance

    def test_randomized_repair_always_satisfies(self):
        rng = random.Random(9)
        for _ in range(15):
            schema = random_schema(rng, max_fields=3, max_depth=2,
                                   set_probability=0.5)
            sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
            instance = random_instance(rng, schema, tuples=3, domain=2)
            fixed = repair(instance, sigma)
            check_instance(fixed)
            assert satisfies_all_fast(fixed, sigma), (sigma, instance)

    def test_repair_is_idempotent(self):
        rng = random.Random(10)
        schema = random_schema(rng, max_fields=3, max_depth=2)
        sigma = random_sigma(rng, schema, count=2)
        instance = random_instance(rng, schema, tuples=3, domain=2)
        fixed = repair(instance, sigma)
        assert repair(fixed, sigma) == fixed
