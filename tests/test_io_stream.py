"""Unit tests for the chunked JSONL stream reader/writer.

The malformed-input cases pin the typed-error contract: every failure
raises :class:`repro.errors.StreamError` naming the offending 1-based
line number — never a raw ``json.JSONDecodeError`` or ``KeyError``.
"""

import json

import pytest

from repro.errors import StreamError
from repro.io import (
    count_stream_lines,
    dump_jsonl,
    iter_jsonl_elements,
    iter_set_elements,
    plan_shards,
)
from repro.values import to_python


@pytest.fixture
def course_dump(tmp_path, course_instance):
    path = tmp_path / "course.jsonl"
    count = dump_jsonl(path, iter_set_elements(
        course_instance.relation("Course")))
    return path, count


class TestRoundTrip:
    def test_dump_then_stream_preserves_walk_order(
            self, course_schema, course_instance, course_dump):
        path, count = course_dump
        expected = list(course_instance.relation("Course"))
        streamed = list(iter_jsonl_elements(path, course_schema,
                                            "Course"))
        assert count == len(expected)
        assert streamed == expected

    def test_dump_accepts_plain_python(self, tmp_path, course_schema,
                                       course_instance):
        path = tmp_path / "plain.jsonl"
        rows = [to_python(e)
                for e in course_instance.relation("Course")]
        assert dump_jsonl(path, rows) == len(rows)
        assert list(iter_jsonl_elements(path, course_schema,
                                        "Course")) == \
            list(course_instance.relation("Course"))

    def test_blank_lines_are_skipped(self, course_schema, course_dump):
        path, count = course_dump
        text = path.read_text()
        path.write_text("\n" + text.replace("\n", "\n\n"))
        streamed = list(iter_jsonl_elements(path, course_schema,
                                            "Course"))
        assert len(streamed) == count

    def test_adapter_iterates_sorted_set_order(self, course_instance):
        relation = course_instance.relation("Course")
        assert list(iter_set_elements(relation)) == list(relation)


class TestMalformedInputs:
    def test_truncated_line_names_line_number(self, course_schema,
                                              course_dump):
        path, count = course_dump
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # chop line 2 mid-JSON
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StreamError) as info:
            list(iter_jsonl_elements(path, course_schema, "Course"))
        assert info.value.line == 2
        assert "line 2" in str(info.value)
        assert "malformed" in str(info.value)

    def test_type_mismatched_element_names_line_number(
            self, tmp_path, course_schema, course_instance):
        path = tmp_path / "bad.jsonl"
        rows = [to_python(e)
                for e in course_instance.relation("Course")]
        rows.insert(2, {"not": "a course"})
        dump_jsonl(path, rows)
        with pytest.raises(StreamError) as info:
            list(iter_jsonl_elements(path, course_schema, "Course"))
        assert info.value.line == 3
        assert "line 3" in str(info.value)
        assert "'Course'" in str(info.value)

    def test_non_object_element_is_typed(self, tmp_path,
                                         course_schema):
        path = tmp_path / "scalar.jsonl"
        path.write_text("42\n")
        with pytest.raises(StreamError) as info:
            list(iter_jsonl_elements(path, course_schema, "Course"))
        assert info.value.line == 1

    def test_empty_file_is_an_error(self, tmp_path, course_schema):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(StreamError) as info:
            list(iter_jsonl_elements(path, course_schema, "Course"))
        assert info.value.line == 1
        assert "empty stream" in str(info.value)

    def test_blank_only_file_is_an_error(self, tmp_path,
                                         course_schema):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n\n")
        with pytest.raises(StreamError, match="empty stream"):
            list(iter_jsonl_elements(path, course_schema, "Course"))

    def test_empty_allowed_for_shard_ranges(self, tmp_path,
                                            course_schema):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert list(iter_jsonl_elements(
            path, course_schema, "Course",
            require_elements=False)) == []

    def test_unreadable_path_is_typed(self, tmp_path, course_schema):
        with pytest.raises(StreamError, match="cannot read stream"):
            list(iter_jsonl_elements(tmp_path / "missing.jsonl",
                                     course_schema, "Course"))

    def test_raw_decode_error_never_escapes(self, tmp_path,
                                            course_schema):
        path = tmp_path / "garbage.jsonl"
        path.write_text("{\"cnum\": \n")
        try:
            list(iter_jsonl_elements(path, course_schema, "Course"))
        except StreamError:
            pass
        except json.JSONDecodeError:  # pragma: no cover - the bug
            pytest.fail("raw JSONDecodeError escaped the reader")


class TestRangesAndShards:
    def test_start_stop_bounds(self, course_schema, course_instance,
                               course_dump):
        path, count = course_dump
        expected = list(course_instance.relation("Course"))
        assert list(iter_jsonl_elements(
            path, course_schema, "Course", start=1, stop=count,
            require_elements=False)) == expected[1:]
        assert list(iter_jsonl_elements(
            path, course_schema, "Course", start=0, stop=1,
            require_elements=False)) == expected[:1]

    def test_plan_shards_cover_and_preserve_order(
            self, course_schema, course_instance, course_dump):
        path, count = course_dump
        expected = list(course_instance.relation("Course"))
        for shards in (1, 2, 3, count + 2):
            ranges = plan_shards(path, shards)
            assert len(ranges) == shards
            assert ranges[0][1] == 0
            for (_, _, hi), (_, lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo  # contiguous
            streamed = []
            for label, lo, hi in ranges:
                streamed.extend(iter_jsonl_elements(
                    label, course_schema, "Course", start=lo, stop=hi,
                    require_elements=False))
            assert streamed == expected

    def test_plan_shards_rejects_bad_counts(self, course_dump):
        path, _ = course_dump
        with pytest.raises(StreamError, match="shard count"):
            plan_shards(path, 0)

    def test_plan_shards_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(StreamError, match="empty stream"):
            plan_shards(path, 2)

    def test_count_stream_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert count_stream_lines(path) == (3, 2)
