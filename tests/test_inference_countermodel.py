"""Unit tests for the Appendix-A counterexample construction."""

import pytest

from repro.errors import InferenceError
from repro.generators import workloads
from repro.inference import (
    ClosureEngine,
    build_countermodel,
    find_countermodel,
)
from repro.nfd import NFD, parse_nfd, satisfies_all_fast, satisfies_fast
from repro.paths import parse_path, relation_paths
from repro.types import parse_schema
from repro.values import check_instance, has_empty_sets, iter_base_sets


@pytest.fixture
def a1_engine():
    return ClosureEngine(workloads.example_a1_schema(),
                         workloads.example_a1_sigma())


@pytest.fixture
def a2_engine():
    return ClosureEngine(workloads.example_a2_schema(),
                         workloads.example_a2_sigma())


class TestExampleA1:
    def test_instance_is_well_typed_and_full(self, a1_engine):
        instance = build_countermodel(a1_engine, parse_path("R"),
                                      {parse_path("B")})
        check_instance(instance)
        assert not has_empty_sets(instance)

    def test_two_tuples_at_the_base(self, a1_engine):
        instance = build_countermodel(a1_engine, parse_path("R"),
                                      {parse_path("B")})
        assert len(instance.relation("R")) == 2

    def test_satisfies_sigma(self, a1_engine):
        instance = build_countermodel(a1_engine, parse_path("R"),
                                      {parse_path("B")})
        assert satisfies_all_fast(instance, a1_engine.sigma)

    def test_separates_exactly_the_closure(self, a1_engine):
        instance = build_countermodel(a1_engine, parse_path("R"),
                                      {parse_path("B")})
        closed = a1_engine.closure(parse_path("R"), {parse_path("B")})
        for q in relation_paths(a1_engine.schema, "R"):
            nfd = NFD(parse_path("R"), {parse_path("B")}, q)
            assert satisfies_fast(instance, nfd) == (q in closed), q

    def test_paper_shapes(self, a1_engine):
        """Structural facts visible in the paper's table."""
        instance = build_countermodel(a1_engine, parse_path("R"),
                                      {parse_path("B")})
        rows = list(instance.relation("R"))
        # B is in the closure with all attributes inside: a shared
        # singleton set in both rows.
        assert rows[0].get("B") == rows[1].get("B")
        assert rows[0].get("B").is_singleton
        # H is in the closure: same two-row set in both tuples (J shared,
        # L fresh within).
        assert rows[0].get("H") == rows[1].get("H")
        assert len(rows[0].get("H")) == 2
        # A is not determined: the two tuples differ on it.
        assert rows[0].get("A") != rows[1].get("A")
        # D is determined: equal in both.
        assert rows[0].get("D") == rows[1].get("D")


class TestExampleA2:
    def test_deep_base_construction(self, a2_engine):
        instance = build_countermodel(a2_engine, parse_path("R"),
                                      {parse_path("A:B:C")})
        check_instance(instance)
        assert satisfies_all_fast(instance, a2_engine.sigma)
        closed = a2_engine.closure(parse_path("R"), {parse_path("A:B:C")})
        for q in relation_paths(a2_engine.schema, "R"):
            nfd = NFD(parse_path("R"), {parse_path("A:B:C")}, q)
            assert satisfies_fast(instance, nfd) == (q in closed), q


class TestNestedBase:
    def test_local_query_builds_singleton_chain(self):
        engine = ClosureEngine(workloads.section_3_1_schema(),
                               workloads.section_3_1_sigma())
        base = parse_path("R:A")
        instance = build_countermodel(engine, base, {parse_path("E")})
        check_instance(instance)
        # chain down to the base: R has one tuple, its A has two elements
        assert len(instance.relation("R")) == 1
        base_sets = list(iter_base_sets(instance, base))
        assert len(base_sets) == 1
        assert len(base_sets[0]) == 2
        # and it separates: E does not determine B
        assert satisfies_all_fast(instance, engine.sigma)
        assert not satisfies_fast(instance, parse_nfd("R:A:[E -> B]"))


class TestFindCountermodel:
    def test_none_for_implied(self, course_engine):
        assert find_countermodel(
            course_engine, parse_nfd("Course:[cnum -> time]")) is None

    def test_witness_for_non_implied(self, course_engine):
        nfd = parse_nfd("Course:[time -> cnum]")
        witness = find_countermodel(course_engine, nfd)
        assert witness is not None
        assert satisfies_all_fast(witness, course_engine.sigma)
        assert not satisfies_fast(witness, nfd)


class TestBoolRejection:
    def test_finite_domain_rejected(self):
        schema = parse_schema("R = {<A: bool, B: bool>}")
        engine = ClosureEngine(schema, [])
        with pytest.raises(InferenceError):
            build_countermodel(engine, parse_path("R"), {parse_path("A")})
