"""Unit tests for the value model: Atom, Record, SetValue."""

import pytest

from repro.errors import ValueError_
from repro.values import EMPTY_SET, Atom, Record, SetValue


class TestAtom:
    def test_wraps_scalars(self):
        assert Atom(5).value == 5
        assert Atom("x").value == "x"
        assert Atom(True).value is True
        assert Atom(1.5).value == 1.5

    def test_rejects_other_types(self):
        with pytest.raises(ValueError_):
            Atom(None)
        with pytest.raises(ValueError_):
            Atom(b"bytes")

    def test_rejects_nan(self):
        with pytest.raises(ValueError_):
            Atom(float("nan"))

    def test_equality(self):
        assert Atom(5) == Atom(5)
        assert Atom(5) != Atom(6)
        assert Atom("5") != Atom(5)

    def test_bool_distinct_from_int(self):
        # bool is an int subclass in Python; the model keeps them apart.
        assert Atom(True) != Atom(1)
        assert Atom(False) != Atom(0)

    def test_float_distinct_from_int_and_bool(self):
        # int == float across Python types; the model keeps them apart
        # (the cached hash already separates them via the type name).
        assert Atom(1.0) != Atom(1)
        assert Atom(1.0) != Atom(True)
        assert Atom(0.0) != Atom(False)

    def test_signed_zero_floats_equal(self):
        # within the float type, IEEE equality applies: 0.0 == -0.0
        assert Atom(0.0) == Atom(-0.0)
        assert hash(Atom(0.0)) == hash(Atom(-0.0))

    def test_hash_consistent(self):
        assert hash(Atom(5)) == hash(Atom(5))

    def test_str(self):
        assert str(Atom(5)) == "5"
        assert str(Atom("x")) == '"x"'

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Atom(5).value = 6


class TestRecord:
    def test_get(self):
        record = Record([("A", Atom(1)), ("B", Atom(2))])
        assert record.get("A") == Atom(1)
        assert record.labels == ("A", "B")

    def test_from_mapping(self):
        assert Record({"A": Atom(1)}) == Record([("A", Atom(1))])

    def test_equality_ignores_order(self):
        first = Record([("A", Atom(1)), ("B", Atom(2))])
        second = Record([("B", Atom(2)), ("A", Atom(1))])
        assert first == second
        assert hash(first) == hash(second)

    def test_missing_field(self):
        record = Record([("A", Atom(1))])
        with pytest.raises(ValueError_):
            record.get("B")
        assert not record.has("B")

    def test_replace(self):
        record = Record([("A", Atom(1)), ("B", Atom(2))])
        updated = record.replace("A", Atom(9))
        assert updated.get("A") == Atom(9)
        assert updated.get("B") == Atom(2)
        assert record.get("A") == Atom(1)  # original untouched
        with pytest.raises(ValueError_):
            record.replace("Z", Atom(0))

    def test_rejects_non_values(self):
        with pytest.raises(ValueError_):
            Record([("A", 1)])

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError_):
            Record([("A", Atom(1)), ("A", Atom(2))])
        with pytest.raises(ValueError_):
            Record([])


class TestSetValue:
    def test_extensional_equality(self):
        first = SetValue([Atom(1), Atom(2)])
        second = SetValue([Atom(2), Atom(1), Atom(2)])
        assert first == second
        assert len(second) == 2

    def test_membership(self):
        s = SetValue([Atom(1)])
        assert Atom(1) in s
        assert Atom(2) not in s

    def test_empty(self):
        assert EMPTY_SET.is_empty
        assert len(EMPTY_SET) == 0
        assert not SetValue([Atom(1)]).is_empty

    def test_singleton(self):
        single = SetValue([Atom(7)])
        assert single.is_singleton
        assert single.the_element() == Atom(7)
        with pytest.raises(ValueError_):
            SetValue([Atom(1), Atom(2)]).the_element()
        with pytest.raises(ValueError_):
            EMPTY_SET.the_element()

    def test_iteration_is_deterministic(self):
        s = SetValue([Atom(3), Atom(1), Atom(2)])
        assert list(s) == list(s)

    def test_union_intersection_add(self):
        a = SetValue([Atom(1), Atom(2)])
        b = SetValue([Atom(2), Atom(3)])
        assert a.union(b) == SetValue([Atom(1), Atom(2), Atom(3)])
        assert a.intersection(b) == SetValue([Atom(2)])
        assert a.add(Atom(9)) == SetValue([Atom(1), Atom(2), Atom(9)])

    def test_records_as_elements(self):
        r1 = Record([("A", Atom(1))])
        r2 = Record([("A", Atom(1))])
        s = SetValue([r1, r2])
        assert len(s) == 1  # structurally equal records collapse

    def test_sets_of_sets_compare(self):
        inner1 = SetValue([Atom(1)])
        inner2 = SetValue([Atom(1)])
        assert SetValue([inner1]) == SetValue([inner2])

    def test_rejects_non_values(self):
        with pytest.raises(ValueError_):
            SetValue([1, 2])


class TestCachedHashes:
    """Structural hashes are computed at construction and cached; the
    cache must be invisible — equal values hash equal no matter how
    they were built."""

    def test_record_hash_ignores_label_order(self):
        r1 = Record([("A", Atom(1)), ("B", Atom(2))])
        r2 = Record([("B", Atom(2)), ("A", Atom(1))])
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_record_hash_distinguishes_values(self):
        r1 = Record([("A", Atom(1))])
        r2 = Record([("A", Atom(2))])
        assert hash(r1) != hash(r2) or r1 != r2  # hash law only

    def test_set_hash_ignores_order_and_duplicates(self):
        s1 = SetValue([Atom(1), Atom(2), Atom(3)])
        s2 = SetValue([Atom(3), Atom(1), Atom(2), Atom(1)])
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_nested_values_hash_equal_when_equal(self):
        v1 = Record([("A", SetValue([Record([("B", Atom(1)),
                                             ("C", Atom(2))])]))])
        v2 = Record([("A", SetValue([Record([("C", Atom(2)),
                                             ("B", Atom(1))])]))])
        assert v1 == v2
        assert hash(v1) == hash(v2)

    def test_hash_stable_across_uses(self):
        s = SetValue([Record([("A", Atom(n))]) for n in range(3)])
        before = hash(s)
        list(s)          # populates the cached iteration order
        {s: "probe"}     # exercises __hash__ via a dict
        assert hash(s) == before

    def test_atoms_keep_cross_type_hash_laws(self):
        # equal values must hash equal; these are unequal by design
        assert Atom(True) != Atom(1)
        assert Atom("1") != Atom(1)
        assert hash(Atom(5)) == hash(Atom(5))


class TestFreezeThaw:
    """freeze_value/thaw_value: a lossless plain-data round-trip whose
    thawed values are indistinguishable from constructor-built ones —
    equal, equal-hashed, and usable as dict/set keys."""

    def _round_trip(self, value):
        from repro.values import freeze_value, thaw_value
        import pickle
        thawed = thaw_value(pickle.loads(pickle.dumps(
            freeze_value(value))))
        assert thawed == value
        assert hash(thawed) == hash(value)
        assert {thawed: 1}[value] == 1
        return thawed

    def test_atoms(self):
        for raw in (5, "x", True, False, 1.5, 0.0, -3, 2**70):
            self._round_trip(Atom(raw))
            # thawed atoms keep the exact scalar type
            from repro.values import freeze_value, thaw_value
            assert type(thaw_value(freeze_value(Atom(raw))).value) \
                is type(raw)

    def test_nested(self):
        value = Record([("A", Atom(1)),
                        ("B", SetValue([Record([("C", Atom("x"))]),
                                        Record([("C", Atom("y"))])])),
                        ("D", EMPTY_SET)])
        thawed = self._round_trip(value)
        assert thawed.get("B").is_set()
        assert len(thawed.get("B")) == 2

    def test_none_passes_through(self):
        from repro.values import freeze_value, thaw_value
        assert freeze_value(None) is None
        assert thaw_value(None) is None

    def test_frozen_form_is_plain_data(self):
        from repro.values import freeze_value
        frozen = freeze_value(Record([("A", SetValue([Atom(1)]))]))
        def plain(data):
            if isinstance(data, tuple):
                return all(plain(part) for part in data)
            return isinstance(data, (int, float, str, bool))
        assert plain(frozen)

    def test_rejects_non_values(self):
        from repro.values import freeze_value
        with pytest.raises(ValueError_):
            freeze_value(42)

    def test_numeric_type_tags_survive(self):
        # 1, 1.0, True freeze to distinct-typed scalars; thawing must
        # not merge them (their hashes embed the type name)
        from repro.values import freeze_value, thaw_value
        thawed = [thaw_value(freeze_value(Atom(raw)))
                  for raw in (1, 1.0, True)]
        assert thawed[0] != thawed[1]
        assert thawed[0] != thawed[2]
        assert thawed[1] != thawed[2]
