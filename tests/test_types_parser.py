"""Unit tests for the type/schema parser and printer round trips."""

import pytest

from repro.errors import ParseError
from repro.types import (
    INT,
    STRING,
    format_schema,
    format_type,
    format_type_tree,
    parse_schema,
    parse_type,
)


class TestParseType:
    def test_base_types(self):
        assert parse_type("int") == INT
        assert parse_type("string") == STRING
        assert parse_type("str") == STRING
        assert parse_type("bool").name == "bool"

    def test_record(self):
        record = parse_type("<A: int, B: string>")
        assert record.labels == ("A", "B")
        assert record.field("B") == STRING

    def test_unannotated_fields_default_to_int(self):
        record = parse_type("<A, B>")
        assert record.field("A") == INT
        assert record.field("B") == INT

    def test_nested_set(self):
        t = parse_type("{<A, B: {<C>}>}")
        assert t.is_set()
        inner = t.element.field("B")
        assert inner.is_set()
        assert inner.element.labels == ("C",)

    def test_course_schema_shape(self):
        t = parse_type(
            "{<cnum: string, time: int, "
            "students: {<sid: int, age: int, grade: string>}, "
            "books: {<isbn: int, title: string>}>}"
        )
        assert t.element.labels == ("cnum", "time", "students", "books")

    def test_whitespace_insensitive(self):
        a = parse_type("{<A:int,B:{<C:int>}>}")
        b = parse_type(" { < A : int , B : { < C : int > } > } ")
        assert a == b

    @pytest.mark.parametrize("text", [
        "", "{", "<>", "{<A: float>}", "{<A: int>", "<A: int>}",
        "{<A int>}", "{<A: int,>}", "{int}", "{<A: int>} extra",
    ])
    def test_malformed_rejected(self, text):
        with pytest.raises(ParseError):
            parse_type(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_type("{<A: floop>}")
        assert excinfo.value.position is not None


class TestParseSchema:
    def test_single_relation(self):
        schema = parse_schema("R = {<A, B>}")
        assert schema.relation_names == ("R",)

    def test_multiple_relations_with_semicolons(self):
        schema = parse_schema("R = {<A>}; S = {<B: string>}")
        assert schema.relation_names == ("R", "S")

    def test_multiline(self):
        schema = parse_schema("""
            R = {<A, B: {<C>}>}
            S = {<D: string>}
        """)
        assert set(schema.relation_names) == {"R", "S"}


class TestRoundTrips:
    @pytest.mark.parametrize("text", [
        "int",
        "{<A: int>}",
        "{<A: int, B: {<C: string, D: int>}>}",
        "{<A: int, B: {<C: {<D: bool>}>}>}",
    ])
    def test_format_then_parse(self, text):
        t = parse_type(text)
        assert parse_type(format_type(t)) == t

    def test_format_type_tree_parses_back(self):
        t = parse_type("{<A: int, B: {<C: string>}>}")
        assert parse_type(format_type_tree(t)) == t

    def test_format_schema_parses_back(self):
        schema = parse_schema("R = {<A, B: {<C>}>}; S = {<D: string>}")
        assert parse_schema(format_schema(schema)) == schema
