"""Unit tests for push-in/pull-out normalization (Sections 2.3, 3.2)."""

import pytest

from repro.errors import InferenceError
from repro.nfd import (
    deepest_form,
    equivalent_modulo_form,
    parse_nfd,
    pull_out,
    push_in,
    to_simple,
)
from repro.paths import parse_path


class TestPushIn:
    def test_one_level(self):
        local = parse_nfd("Course:students:[sid -> grade]")
        pushed = push_in(local)
        assert pushed == parse_nfd(
            "Course:[students, students:sid -> students:grade]")

    def test_degenerate(self):
        pushed = push_in(parse_nfd("R:A:[∅ -> F]"))
        assert pushed == parse_nfd("R:[A -> A:F]")

    def test_simple_rejected(self):
        with pytest.raises(InferenceError):
            push_in(parse_nfd("R:[A -> B]"))

    def test_two_levels_accumulate_prefixes(self):
        local = parse_nfd("R:A:E:[∅ -> F]")
        simple = to_simple(local)
        assert simple == parse_nfd("R:[A, A:E -> A:E:F]")


class TestPullOut:
    def test_inverse_of_push_in(self):
        local = parse_nfd("Course:students:[sid -> grade]")
        assert pull_out(push_in(local)) == local

    def test_requires_label_on_lhs(self):
        with pytest.raises(InferenceError):
            pull_out(parse_nfd("R:[A:B -> A:C]"))  # A itself missing

    def test_requires_all_paths_under_label(self):
        with pytest.raises(InferenceError):
            pull_out(parse_nfd("R:[A, D -> A:C]"))

    def test_requires_rhs_extension(self):
        with pytest.raises(InferenceError):
            pull_out(parse_nfd("R:[A, A:B -> D]"))


class TestCanonicalForms:
    def test_to_simple_fixpoint(self):
        simple = parse_nfd("R:[A -> B]")
        assert to_simple(simple) == simple

    def test_roundtrip_through_deepest(self):
        local = parse_nfd("R:A:E:[∅ -> F]")
        assert deepest_form(to_simple(local)) == local

    def test_deepest_form_stops_when_blocked(self):
        # A:B on the LHS blocks pulling B after A.
        nfd = parse_nfd("R:[A, A:B, A:C:D -> A:C:E]")
        deepest = deepest_form(nfd)
        assert deepest.base == parse_path("R:A")

    def test_equivalence_modulo_form(self):
        local = parse_nfd("Course:students:[sid -> grade]")
        global_form = parse_nfd(
            "Course:[students, students:sid -> students:grade]")
        assert equivalent_modulo_form(local, global_form)
        assert not equivalent_modulo_form(
            local, parse_nfd("Course:[students:sid -> students:grade]"))

    def test_section_2_3_example(self):
        # R:A:[B -> C] is equivalent to R:[A, A:B -> A:C].
        assert equivalent_modulo_form(
            parse_nfd("R:A:[B -> C]"),
            parse_nfd("R:[A, A:B -> A:C]"),
        )
