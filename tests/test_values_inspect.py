"""Unit tests for instance inspection: empty sets, cardinalities, domains."""

from repro.paths import parse_path
from repro.types import parse_schema
from repro.values import (
    Instance,
    atom_domain,
    empty_set_positions,
    has_empty_sets,
    max_int_atom,
    set_cardinalities,
)


def _schema():
    return parse_schema("R = {<A, B: {<C>}, D: {<E, F: {<G>}>}>}")


def _full_instance():
    return Instance(_schema(), {"R": [
        {"A": 1, "B": [{"C": 2}],
         "D": [{"E": 3, "F": [{"G": 4}]}]},
    ]})


def _holey_instance():
    return Instance(_schema(), {"R": [
        {"A": 1, "B": [], "D": [{"E": 3, "F": []}]},
        {"A": 2, "B": [{"C": 5}], "D": []},
    ]})


class TestEmptySets:
    def test_full_instance_has_none(self):
        assert not has_empty_sets(_full_instance())
        assert empty_set_positions(_full_instance()) == []

    def test_positions_are_localized(self):
        positions = {str(p) for p in empty_set_positions(_holey_instance())}
        assert positions == {"R:B", "R:D", "R:D:F"}

    def test_empty_relation_counts(self):
        instance = Instance(_schema(), {"R": []})
        assert has_empty_sets(instance)
        assert not has_empty_sets(instance, include_relations=False)


class TestCardinalities:
    def test_counts_per_path(self):
        cards = set_cardinalities(_full_instance())
        assert cards[parse_path("R")] == [1]
        assert cards[parse_path("R:B")] == [1]
        assert cards[parse_path("R:D:F")] == [1]

    def test_multiple_occurrences(self):
        cards = set_cardinalities(_holey_instance())
        assert sorted(cards[parse_path("R:B")]) == [0, 1]


class TestDomains:
    def test_atom_domain(self):
        assert atom_domain(_full_instance()) == {1, 2, 3, 4}

    def test_max_int_atom(self):
        assert max_int_atom(_full_instance()) == 4
        empty = Instance(_schema(), {"R": []})
        assert max_int_atom(empty) == -1
