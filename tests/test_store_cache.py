"""Unit tests for the persistent SQLite cache layer.

Covers the :class:`~repro.store.CacheStore` lifecycle (schema
versioning, corruption fallback, read-only opens), the closure-memo
and compiled-plan tables through their real consumers
(:class:`~repro.inference.ImplicationSession` and
:func:`~repro.store.cached_validator`), spill/temp placement under the
cache directory, and the worker warm-up path's error chaining.
"""

import os
import warnings

import pytest

from repro.generators import workloads
from repro.inference import ImplicationSession
from repro.inference.session import sigma_fingerprint
from repro.io import dump_bundle
from repro.io.stream import iter_set_elements
from repro.nfd import ResourceBudget, ValidatorEngine, stream_validate
from repro.parallel import process_map
from repro.paths import parse_path
from repro.store import (
    CacheStore,
    CacheWarning,
    DB_FILENAME,
    cached_session,
    cached_validator,
    default_spill_root,
    open_store,
    resolve_cache_dir,
)


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


@pytest.fixture
def schema():
    return workloads.course_schema()


@pytest.fixture
def sigma():
    return workloads.course_sigma()


class TestStoreLifecycle:
    def test_fresh_store_is_writable_and_empty(self, cache_dir):
        with CacheStore(cache_dir) as store:
            assert store.available and store.writable
            summary = store.summary()
            assert summary["closure_memo"] == 0
            assert summary["plans"] == 0
            assert summary["stream_sources"] == 0
            # a brand-new database is not "stale data"
            assert store.stats.stale == 0

    def test_open_store_none_means_caching_off(self):
        assert open_store(None) is None

    def test_resolve_cache_dir_precedence(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None) is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(None) == str(tmp_path / "env")
        # an explicit directory always beats the environment
        assert resolve_cache_dir("explicit") == "explicit"

    def test_read_only_open_of_missing_db_creates_nothing(
            self, cache_dir):
        with CacheStore(cache_dir, read_only=True) as store:
            assert not store.writable
            assert store.get_plan("deadbeef") is None
        assert not os.path.exists(os.path.join(cache_dir, DB_FILENAME))

    def test_version_mismatch_drops_all_entries(self, cache_dir,
                                                schema, sigma):
        with CacheStore(cache_dir) as store:
            cached_validator(schema, sigma, store=store)
            assert store.summary()["plans"] == 1
            store._conn.execute(
                "UPDATE meta SET value = 'not-a-version' "
                "WHERE key = 'codec_version'")
            store._conn.commit()
        with CacheStore(cache_dir) as store:
            assert store.stats.stale == 1
            assert store.summary()["plans"] == 0

    def test_corrupt_db_degrades_with_a_warning(self, cache_dir,
                                                schema, sigma):
        os.makedirs(cache_dir)
        with open(os.path.join(cache_dir, DB_FILENAME), "wb") as fh:
            fh.write(b"this is not a sqlite database at all\n" * 64)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store = CacheStore(cache_dir)
            # every API degrades to a miss / no-op, never an exception
            assert store.get_plan("deadbeef") is None
            fp = sigma_fingerprint(schema, tuple(sigma))
            store.put_plan(fp, ("payload",))
            assert store.get_closure(fp, "Course", frozenset()) is None
            engine = cached_validator(schema, sigma, store=store)
            assert engine.stats.plan_compilations == 1
            store.close()
        assert any(issubclass(w.category, CacheWarning) for w in caught)
        assert store.stats.errors >= 1

    def test_clear_and_vacuum(self, cache_dir, schema, sigma):
        with CacheStore(cache_dir) as store:
            cached_validator(schema, sigma, store=store)
            assert store.summary()["plans"] == 1
            assert store.clear()
            assert store.summary()["plans"] == 0
            assert store.vacuum()
            assert store.integrity_check()


class TestClosureMemoTable:
    def test_closure_memo_round_trip(self, cache_dir, schema, sigma):
        fp = sigma_fingerprint(schema, tuple(sigma))
        lhs = frozenset({parse_path("cnum")})
        closure = frozenset({parse_path("cnum"), parse_path("time")})
        with CacheStore(cache_dir) as store:
            assert store.get_closure(fp, "Course", lhs) is None
            store.put_closure(fp, "Course", lhs, closure)
            assert store.get_closure(fp, "Course", lhs) == closure
        # a second handle (fresh process in real life) sees the row
        with CacheStore(cache_dir) as store:
            assert store.get_closure(fp, "Course", lhs) == closure

    def test_warm_session_answers_without_saturating(self, cache_dir,
                                                     schema, sigma):
        base = parse_path("Course")
        lhs = {parse_path("cnum")}
        with CacheStore(cache_dir) as store:
            cold = cached_session(schema, sigma, store=store)
            cold_closure = cold.closure(base, lhs)
            assert cold.engine.stats.attempts > 0
        with CacheStore(cache_dir) as store:
            warm = cached_session(schema, sigma, store=store)
            assert warm.closure(base, lhs) == cold_closure
            # the whole point: zero saturation rule applications
            assert warm.engine.stats.attempts == 0
            assert warm.engine.stats.saturations == 0
            assert warm.stats.store_hits == 1

    def test_store_counters_render_in_session_stats(self, cache_dir,
                                                    schema, sigma):
        with CacheStore(cache_dir) as store:
            session = cached_session(schema, sigma, store=store)
            session.closure(parse_path("Course"), {parse_path("cnum")})
            text = session.stats.to_text()
            assert "store hits" in text
            metrics = session.stats.as_dict()
            assert metrics["store_misses"] == 1


class TestPlanTable:
    def test_warm_engine_skips_compilation(self, cache_dir, schema,
                                           sigma):
        instance = workloads.course_instance()
        with CacheStore(cache_dir) as store:
            cold = cached_validator(schema, sigma, store=store)
            assert cold.stats.plan_compilations == 1
            cold_result = cold.validate(instance, all_violations=True)
        with CacheStore(cache_dir) as store:
            warm = cached_validator(schema, sigma, store=store)
            assert warm.stats.plan_compilations == 0
            warm_result = warm.validate(instance, all_violations=True)
            assert store.stats.plan_hits == 1
        assert [v.describe() for v in warm_result.violations] == \
            [v.describe() for v in cold_result.violations]
        assert warm_result.ok == cold_result.ok

    def test_sigma_reorder_is_stale_not_wrong(self, cache_dir, schema,
                                              sigma):
        sigma = tuple(sigma)
        assert len(sigma) >= 2
        reordered = tuple(reversed(sigma))
        # same fingerprint (order-independent) ...
        assert sigma_fingerprint(schema, sigma) == \
            sigma_fingerprint(schema, reordered)
        with CacheStore(cache_dir) as store:
            cached_validator(schema, sigma, store=store)
        with CacheStore(cache_dir) as store:
            # ... but plan indices are order-dependent, so the payload
            # must be recompiled, not adopted
            engine = cached_validator(schema, reordered, store=store)
            assert engine.stats.plan_compilations == 1
            assert store.stats.stale == 1
        with CacheStore(cache_dir) as store:
            # the rewrite made the reordered Σ the warm one
            engine = cached_validator(schema, reordered, store=store)
            assert engine.stats.plan_compilations == 0

    def test_plan_compilations_render_in_stats(self, schema, sigma):
        engine = ValidatorEngine(schema, sigma)
        assert "plan compilations: 1" in engine.stats.to_text()
        assert engine.stats.as_dict()["plan_compilations"] == 1


class TestDenseTablesTable:
    def test_round_trip(self, cache_dir, schema, sigma):
        from repro.inference.dense import compile_tables
        from repro.inference.closure import ClosureEngine

        fp = sigma_fingerprint(schema, tuple(sigma))
        engine = ClosureEngine(schema, sigma, strategy="dense")
        tables = engine._pool.dense("Course")
        payload = (tuple(str(nfd) for nfd in sigma), tables)
        with CacheStore(cache_dir) as store:
            assert store.get_dense(fp, "Course") is None
            assert store.stats.dense_misses == 1
            store.put_dense(fp, "Course", payload)
            texts, restored = store.get_dense(fp, "Course")
            assert texts == payload[0]
            assert restored.paths == tables.paths
            assert restored.ids == tables.ids
            assert restored.member_rows == tables.member_rows
            summary = store.summary()
            assert summary["dense_tables"] == 1
            assert summary["dense_bytes"] > 0
            assert "dense tables" in store.stats.to_text()
        assert compile_tables is not None  # the pickle layer's source

    def test_dense_session_warm_starts_from_the_store(self, cache_dir,
                                                      schema, sigma):
        base = parse_path("Course")
        lhs = {parse_path("cnum")}
        with CacheStore(cache_dir) as store:
            cold = ImplicationSession(schema, sigma, store=store,
                                      strategy="dense")
            cold_closure = cold.closure(base, lhs)
            assert store.summary()["dense_tables"] >= 1
        with CacheStore(cache_dir) as store:
            warm = ImplicationSession(schema, sigma, store=store,
                                      strategy="dense")
            # the tables were adopted, not recompiled
            assert store.stats.dense_hits >= 1
            assert warm.engine._pool.has_dense("Course")
            assert warm.closure(base, lhs) == cold_closure

    def test_sigma_reorder_is_stale_not_wrong(self, cache_dir, schema,
                                              sigma):
        sigma = tuple(sigma)
        reordered = tuple(reversed(sigma))
        with CacheStore(cache_dir) as store:
            ImplicationSession(schema, sigma, store=store,
                               strategy="dense")
        with CacheStore(cache_dir) as store:
            # same fingerprint, but dense rows are indexed by Σ member
            # position — the payload must be recompiled, not adopted
            session = ImplicationSession(schema, reordered, store=store,
                                         strategy="dense")
            assert store.stats.stale >= 1
            assert session.implies(sigma[0])


class TestSpillPlacement:
    def _spilling_run(self, schema, sigma, spill_root):
        instance = workloads.course_instance()
        sources = {name: iter_set_elements(value)
                   for name, value in instance.relations()}
        return stream_validate(
            schema, sigma, sources,
            budget=ResourceBudget(max_resident_rows=1),
            spill_root=spill_root)

    def test_spill_dirs_land_under_the_configured_root(
            self, tmp_path, schema, sigma):
        root = str(tmp_path / "spill-root")
        result = self._spilling_run(schema, sigma, root)
        assert result.stats.spills > 0
        assert os.path.isdir(root)
        # ... and are cleaned up afterwards: placement must not leak
        assert os.listdir(root) == []

    def test_default_spill_root_derives_from_cache_dir(self, cache_dir):
        root = default_spill_root(cache_dir)
        assert root == os.path.join(cache_dir, "tmp")
        assert os.path.isdir(root)

    def test_env_cache_dir_places_spills(self, monkeypatch, tmp_path,
                                         schema, sigma):
        cache_dir = str(tmp_path / "envcache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        result = self._spilling_run(schema, sigma, None)
        assert result.stats.spills > 0
        root = os.path.join(cache_dir, "tmp")
        assert os.path.isdir(root)
        assert os.listdir(root) == []


# Worker functions for the warm-up traceback regression: module-level
# so the pool can pickle them.
def _warm_setup(payload):
    bundle_text, cache_dir = payload
    from repro.io import load_bundle
    schema, sigma, _ = load_bundle(bundle_text)
    store = CacheStore(cache_dir, read_only=True)
    return cached_session(schema, sigma, store=store)


def _warm_probe(session, item):
    if item == 5:
        raise RuntimeError(f"warm probe exploded on item {item}")
    return session.closure(parse_path("Course"),
                           {parse_path("cnum")}) is not None


class TestWarmWorkerTracebacks:
    def test_failure_in_warm_worker_chains_remote_traceback(
            self, cache_dir, schema, sigma):
        """Regression: the ``from RemoteTraceback`` chaining must
        survive workers whose setup opens a read-only store."""
        from repro.parallel import RemoteTraceback

        with CacheStore(cache_dir) as store:
            cached_session(schema, sigma, store=store).closure(
                parse_path("Course"), {parse_path("cnum")})
        payload = (dump_bundle(schema, sigma, None), cache_dir)
        with pytest.raises(RuntimeError,
                           match="warm probe exploded on item 5") \
                as info:
            process_map(_warm_setup, payload, _warm_probe,
                        list(range(8)), jobs=2)
        cause = info.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        assert "_warm_probe" in str(cause)

    def test_warm_workers_answer_from_the_store(self, cache_dir,
                                                schema, sigma):
        with CacheStore(cache_dir) as store:
            cached_session(schema, sigma, store=store).closure(
                parse_path("Course"), {parse_path("cnum")})
        payload = (dump_bundle(schema, sigma, None), cache_dir)
        verdicts = process_map(_warm_setup, payload, _warm_probe,
                               [0, 1, 2, 3], jobs=2)
        assert verdicts == [True, True, True, True]
