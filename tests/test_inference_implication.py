"""Unit tests for the implication convenience API."""

from repro.generators import workloads
from repro.inference import (
    equivalent_sets,
    implied_keys,
    implies,
    redundant_members,
)
from repro.inference.implication import closure as closure_fn
from repro.nfd import parse_nfd, parse_nfds
from repro.paths import parse_path
from repro.types import parse_schema


class TestImplies:
    def test_functional_api(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[B -> C]")
        assert implies(schema, sigma, parse_nfd("R:[A -> C]"))
        assert not implies(schema, sigma, parse_nfd("R:[C -> B]"))

    def test_closure_function(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]")
        closed = closure_fn(schema, sigma, parse_path("R"),
                            {parse_path("A")})
        assert parse_path("B") in closed


class TestEquivalence:
    def test_local_global_forms_are_equivalent_sets(self):
        schema = workloads.course_schema()
        local = parse_nfds("Course:students:[sid -> grade]")
        global_form = parse_nfds(
            "Course:[students, students:sid -> students:grade]")
        assert equivalent_sets(schema, local, global_form)

    def test_non_equivalent(self):
        schema = parse_schema("R = {<A, B>}")
        assert not equivalent_sets(schema, parse_nfds("R:[A -> B]"),
                                   parse_nfds("R:[B -> A]"))


class TestRedundancy:
    def test_transitive_member_is_redundant(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[B -> C]\nR:[A -> C]")
        redundant = redundant_members(schema, sigma)
        assert redundant == [parse_nfd("R:[A -> C]")]

    def test_independent_members_are_not(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[B -> C]")
        assert redundant_members(schema, sigma) == []


class TestImpliedKeys:
    def test_course_key(self):
        schema = workloads.course_schema()
        keys = implied_keys(schema, workloads.course_sigma(), "Course")
        assert frozenset({parse_path("cnum")}) in keys

    def test_composite_key(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A, B -> C]")
        keys = implied_keys(schema, sigma, "R")
        assert keys == [frozenset({parse_path("A"), parse_path("B")})]

    def test_minimality(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[A -> C]")
        keys = implied_keys(schema, sigma, "R")
        assert frozenset({parse_path("A")}) in keys
        assert all(len(k) == 1 or parse_path("A") not in k for k in keys)
