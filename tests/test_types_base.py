"""Unit tests for the type constructors and their invariants."""

import pytest

from repro.errors import TypeConstructionError
from repro.types import (
    BOOL,
    INT,
    STRING,
    BaseType,
    RecordType,
    SetType,
    check_no_repeated_labels,
    is_valid_label,
)


class TestBaseType:
    def test_singletons_equal_fresh_instances(self):
        assert INT == BaseType("int")
        assert STRING == BaseType("string")
        assert BOOL == BaseType("bool")

    def test_distinct_base_types_differ(self):
        assert INT != STRING
        assert INT != BOOL

    def test_unknown_base_type_rejected(self):
        with pytest.raises(TypeConstructionError):
            BaseType("float")

    def test_hashable_and_usable_as_key(self):
        assert {INT: 1}[BaseType("int")] == 1

    def test_str(self):
        assert str(INT) == "int"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            INT.name = "other"

    def test_predicates(self):
        assert INT.is_base()
        assert not INT.is_set()
        assert not INT.is_record()

    def test_depth_zero(self):
        assert INT.depth() == 0


class TestRecordType:
    def test_field_lookup(self):
        record = RecordType([("A", INT), ("B", STRING)])
        assert record.field("A") == INT
        assert record.field("B") == STRING

    def test_labels_preserve_order(self):
        record = RecordType([("B", INT), ("A", INT)])
        assert record.labels == ("B", "A")

    def test_equality_ignores_field_order(self):
        first = RecordType([("A", INT), ("B", STRING)])
        second = RecordType([("B", STRING), ("A", INT)])
        assert first == second
        assert hash(first) == hash(second)

    def test_from_mapping(self):
        assert RecordType({"A": INT}) == RecordType([("A", INT)])

    def test_repeated_label_rejected(self):
        with pytest.raises(TypeConstructionError):
            RecordType([("A", INT), ("A", STRING)])

    def test_empty_record_rejected(self):
        with pytest.raises(TypeConstructionError):
            RecordType([])

    def test_record_in_record_rejected(self):
        inner = RecordType([("A", INT)])
        with pytest.raises(TypeConstructionError) as excinfo:
            RecordType([("B", inner)])
        assert "records directly inside records" in str(excinfo.value)

    def test_invalid_label_rejected(self):
        with pytest.raises(TypeConstructionError):
            RecordType([("not a label", INT)])

    def test_missing_field_error_names_fields(self):
        record = RecordType([("A", INT)])
        with pytest.raises(TypeConstructionError) as excinfo:
            record.field("Z")
        assert "A" in str(excinfo.value)

    def test_has_field(self):
        record = RecordType([("A", INT)])
        assert record.has_field("A")
        assert not record.has_field("B")


class TestSetType:
    def test_element_must_be_record(self):
        with pytest.raises(TypeConstructionError):
            SetType(INT)
        with pytest.raises(TypeConstructionError):
            SetType(SetType(RecordType([("A", INT)])))

    def test_structure(self):
        element = RecordType([("A", INT)])
        set_type = SetType(element)
        assert set_type.element == element
        assert set_type.is_set()

    def test_equality(self):
        first = SetType(RecordType([("A", INT)]))
        second = SetType(RecordType([("A", INT)]))
        assert first == second
        assert hash(first) == hash(second)

    def test_str_roundtrips_shape(self):
        set_type = SetType(RecordType([("A", INT)]))
        assert str(set_type) == "{<A: int>}"

    def test_depth(self):
        one = SetType(RecordType([("A", INT)]))
        two = SetType(RecordType([("B", one)]))
        assert one.depth() == 1
        assert two.depth() == 2

    def test_walk_visits_nested(self):
        inner = RecordType([("A", INT)])
        set_type = SetType(inner)
        visited = list(set_type.walk())
        assert set_type in visited
        assert inner in visited
        assert INT in visited


class TestRepeatedLabels:
    def test_accepts_unique_labels(self):
        t = SetType(RecordType([
            ("A", INT),
            ("B", SetType(RecordType([("C", INT)]))),
        ]))
        check_no_repeated_labels(t)  # should not raise

    def test_rejects_label_reuse_across_levels(self):
        t = SetType(RecordType([
            ("A", INT),
            ("B", SetType(RecordType([("A", INT)]))),
        ]))
        with pytest.raises(TypeConstructionError):
            check_no_repeated_labels(t)


class TestLabels:
    @pytest.mark.parametrize("label", ["A", "cnum", "map_position", "_x",
                                       "A1"])
    def test_valid(self, label):
        assert is_valid_label(label)

    @pytest.mark.parametrize("label", ["", "1A", "a b", "a:b", "a-b"])
    def test_invalid(self, label):
        assert not is_valid_label(label)
