"""Integration tests at depth: 3-4 level schemas end to end."""

import random

from repro.generators import random_instance, workloads
from repro.inference import (
    BruteForceProver,
    ClosureEngine,
    build_countermodel,
    compile_proof,
)
from repro.nfd import (
    NFD,
    holds_fol,
    parse_nfd,
    satisfies,
    satisfies_all_fast,
    satisfies_fast,
)
from repro.paths import parse_path, relation_paths
from repro.values import check_instance


class TestDeepSchema:
    def setup_method(self):
        self.schema = workloads.trial_schema()
        self.sigma = workloads.trial_sigma()
        self.instance = workloads.trial_instance()

    def test_instance_satisfies_sigma(self):
        check_instance(self.instance)
        assert satisfies_all_fast(self.instance, self.sigma)
        for nfd in self.sigma:
            assert satisfies(self.instance, nfd)
            assert holds_fol(self.instance, nfd)

    def test_local_vs_global_at_depth(self):
        # sample 100 has different values in different cohorts: the
        # depth-3 local NFD tolerates it, the global one does not.
        local = parse_nfd(
            "Trial:sites:cohorts:samples:[sample_id -> value]")
        global_form = parse_nfd(
            "Trial:[sites:cohorts:samples:sample_id -> "
            "sites:cohorts:samples:value]")
        assert satisfies_fast(self.instance, local)
        assert not satisfies_fast(self.instance, global_form)

    def test_deep_implication(self):
        engine = ClosureEngine(self.schema, self.sigma)
        # a site name pins the whole trial tuple, hence its sites set
        assert engine.implies(parse_nfd("Trial:[sites:site -> sites]"))
        # ... but not any particular sample value
        assert not engine.implies(parse_nfd(
            "Trial:[sites:site -> sites:cohorts:samples:value]"))

    def test_deep_base_closure(self):
        engine = ClosureEngine(self.schema, self.sigma)
        base = parse_path("Trial:sites:cohorts:samples")
        closed = engine.closure(base, {parse_path("sample_id")})
        assert parse_path("value") in closed
        assert parse_path("assay") in closed  # via the global NFD

    def test_deep_countermodel(self):
        engine = ClosureEngine(self.schema, self.sigma)
        candidate = parse_nfd(
            "Trial:sites:cohorts:[cohort -> samples]")
        assert not engine.implies(candidate)
        witness = build_countermodel(engine, candidate.base,
                                     candidate.lhs)
        check_instance(witness)
        assert satisfies_all_fast(witness, self.sigma)
        assert not satisfies_fast(witness, candidate)

    def test_deep_proof_certificate(self):
        engine = ClosureEngine(self.schema, self.sigma)
        target = parse_nfd(
            "Trial:sites:cohorts:samples:[sample_id -> value]")
        proof = compile_proof(engine, target)
        assert proof.conclusion() == target

    def test_brute_force_agrees_on_deep_base(self):
        prover = BruteForceProver(self.schema, self.sigma, max_paths=9)
        engine = ClosureEngine(self.schema, self.sigma)
        for base_text, lhs_texts in [
            ("Trial", ["trial_id"]),
            ("Trial", ["sites:site"]),
            ("Trial:sites:cohorts:samples", ["sample_id"]),
        ]:
            base = parse_path(base_text)
            lhs = [parse_path(t) for t in lhs_texts]
            assert prover.closure(base, lhs) == \
                engine.closure(base, lhs), base

    def test_random_instances_respect_soundness(self):
        rng = random.Random(42)
        engine = ClosureEngine(self.schema, self.sigma)
        implied = [
            q for q in relation_paths(self.schema, "Trial")
            if q in engine.closure(parse_path("Trial"),
                                   {parse_path("trial_id")})
        ]
        checked = 0
        for _ in range(200):
            instance = random_instance(rng, self.schema, tuples=2,
                                       domain=2)
            if not satisfies_all_fast(instance, self.sigma):
                continue
            checked += 1
            for q in implied:
                nfd = NFD(parse_path("Trial"),
                          {parse_path("trial_id")}, q)
                assert satisfies_fast(instance, nfd)
            if checked >= 10:
                break
        assert checked > 0
