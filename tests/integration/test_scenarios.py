"""Cross-module scenario tests: warehouse integration, AceDB, carryover."""

from repro.analysis import (
    implied_singletons,
    minimal_cover,
    minimal_keys,
    nfd_after_nest,
)
from repro.generators import workloads
from repro.inference import FD, ClosureEngine, equivalent_sets
from repro.io import dump_bundle, load_bundle
from repro.nfd import (
    find_violation,
    parse_nfd,
    satisfies_all_fast,
    satisfies_fast,
)
from repro.paths import parse_path
from repro.types import Schema, parse_schema
from repro.values import Instance, nest, nest_type, unnest


class TestWarehouseScenario:
    """The introduction's data-integration motivation, end to end."""

    def test_clean_warehouse_passes(self):
        assert satisfies_all_fast(workloads.warehouse_instance(),
                                  workloads.warehouse_sigma())

    def test_inconsistent_description_is_caught_with_witness(self):
        instance = workloads.warehouse_instance()
        # StoreB renames the widget: the warehouse-wide description
        # consistency NFD must flag the merged view.
        broken = instance.with_relation("Warehouse", [
            {"customer": "ada",
             "orders": [
                 {"order_id": 1,
                  "lines": [{"sku": "widget", "description": "Widget",
                             "qty": 2}]},
                 {"order_id": 2,
                  "lines": [{"sku": "widget", "description": "Gizmo",
                             "qty": 5}]},
             ]},
        ])
        nfd = parse_nfd(
            "Warehouse:[orders:lines:sku -> orders:lines:description]")
        violation = find_violation(broken, nfd)
        assert violation is not None
        assert "widget" in violation.describe()

    def test_view_constraint_inference(self):
        """Order ids determine customers in the view: derivable from the
        view key declaration plus the line-set dependency."""
        schema = workloads.warehouse_schema()
        sigma = workloads.warehouse_sigma() + [
            parse_nfd("Warehouse:[orders:order_id -> customer]"),
        ]
        engine = ClosureEngine(schema, sigma)
        assert engine.implies(
            parse_nfd("Warehouse:[orders:order_id -> orders:lines]"))
        assert engine.implies(
            parse_nfd("Warehouse:[orders:order_id -> customer]"))
        assert not engine.implies(
            parse_nfd("Warehouse:[customer -> orders:order_id]"))


class TestAceDBScenario:
    def test_singleton_inference_matches_schema_intent(self):
        schema = workloads.acedb_schema()
        sigma = workloads.acedb_sigma()
        singles = {str(p) for p in implied_singletons(schema, sigma,
                                                      "Gene")}
        assert singles == {"name", "map_position"}

    def test_locus_is_the_key(self):
        schema = workloads.acedb_schema()
        keys = minimal_keys(schema, workloads.acedb_sigma(), "Gene")
        assert frozenset({parse_path("locus")}) in keys

    def test_minimal_cover_is_equivalent(self):
        schema = workloads.acedb_schema()
        sigma = workloads.acedb_sigma()
        cover = minimal_cover(schema, sigma)
        assert equivalent_sets(schema, sigma, cover)


class TestCarryoverScenario:
    """Flat registrar data nested into the Course shape keeps its FDs."""

    def test_nest_enrollments(self):
        flat_schema = parse_schema(
            "Enrollment = {<cnum: string, time: int, sid: int, "
            "grade: string>}")
        rows = [
            {"cnum": "cis550", "time": 10, "sid": 1, "grade": "A"},
            {"cnum": "cis550", "time": 10, "sid": 2, "grade": "B"},
            {"cnum": "cis500", "time": 12, "sid": 1, "grade": "A"},
        ]
        flat = Instance(flat_schema, {"Enrollment": rows})
        nested_type = nest_type(flat_schema.relation_type("Enrollment"),
                                "students", ["sid", "grade"])
        nested_schema = Schema({"Enrollment": nested_type})
        nested = Instance(nested_schema, {
            "Enrollment": nest(flat.relation("Enrollment"),
                               "students", ["sid", "grade"]),
        })
        # cnum -> time survives as a top-level NFD
        carried = nfd_after_nest("Enrollment", FD({"cnum"}, "time"),
                                 ["sid", "grade"], "students")
        assert satisfies_fast(nested, carried)
        # and unnesting restores the original rows
        assert unnest(nested.relation("Enrollment"), "students") == \
            flat.relation("Enrollment")


class TestPersistenceScenario:
    def test_bundle_survives_disk_roundtrip(self, tmp_path):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        instance = workloads.course_instance()
        path = tmp_path / "bundle.json"
        path.write_text(dump_bundle(schema, sigma, instance))
        schema2, sigma2, instance2 = load_bundle(path.read_text())
        engine = ClosureEngine(schema2, sigma2)
        assert engine.implies(
            parse_nfd("Course:[students:sid, time -> books]"))
        assert instance2 == instance
