"""End-to-end reproduction of every example in the paper.

Each test corresponds to an artifact in DESIGN.md's experiment index;
the benchmark scripts print the same content, these tests assert it.
"""

from repro.generators import workloads
from repro.inference import (
    BruteForceProver,
    ClosureEngine,
    NonEmptySpec,
    build_countermodel,
)
from repro.nfd import (
    parse_nfd,
    satisfies,
    satisfies_all,
    satisfies_all_fast,
    satisfies_fast,
    translate,
)
from repro.paths import parse_path, relation_paths
from repro.values import check_instance


class TestSection2Instance:
    """The cis550/cis500 instance and Examples 2.1-2.5."""

    def test_instance_satisfies_the_intro_constraints(self):
        assert satisfies_all(workloads.course_instance(),
                             workloads.course_sigma())

    def test_intro_inference_books_by_sid_time(self):
        """The introduction's motivating question: given sid and time,
        is the set of books unique?  'The answer is affirmative.'"""
        engine = ClosureEngine(workloads.course_schema(),
                               workloads.course_sigma())
        assert engine.implies(
            parse_nfd("Course:[students:sid, time -> books]"))


class TestSection22LogicTranslations:
    def test_example_2_2(self):
        text = translate(parse_nfd(
            "Course:[books:isbn -> books:title]")).to_text()
        assert text == (
            "∀c1 ∈ Course ∀c2 ∈ Course\n"
            "∀b1 ∈ c1.books ∀b2 ∈ c2.books\n"
            "(b1.isbn = b2.isbn → b1.title = b2.title)"
        )

    def test_example_2_3(self):
        text = translate(parse_nfd(
            "Course:students:[sid -> grade]")).to_text()
        assert text == (
            "∀c ∈ Course\n"
            "∀s1 ∈ c.students ∀s2 ∈ c.students\n"
            "(s1.sid = s2.sid → s1.grade = s2.grade)"
        )


class TestSection21University:
    def test_schools_do_not_share_course_numbers(self):
        engine = ClosureEngine(workloads.university_schema(),
                               workloads.university_sigma())
        # the disjoint-or-equal consequence: cnum determines scourses...
        # directly check the instance satisfies and a violating one not.
        instance = workloads.university_instance()
        assert satisfies_all(instance, workloads.university_sigma())
        shared = instance.with_relation("Courses", [
            {"school": "engineering",
             "scourses": [{"cnum": "cis550", "time": 10}]},
            {"school": "arts",
             "scourses": [{"cnum": "cis550", "time": 11}]},
        ])
        assert not satisfies_all(shared, workloads.university_sigma())
        assert engine.implies(parse_nfd(
            "Courses:[scourses:cnum -> school]"))


class TestFigure1:
    def test_the_figure_violates_the_nfd(self):
        assert not satisfies(workloads.figure1_instance(),
                             workloads.figure1_nfd())


class TestSection31Derivation:
    def test_closure_proves_the_claim(self):
        engine = ClosureEngine(workloads.section_3_1_schema(),
                               workloads.section_3_1_sigma())
        assert engine.implies(parse_nfd("R:A:[B -> E]"))

    def test_brute_force_agrees(self):
        prover = BruteForceProver(workloads.section_3_1_schema(),
                                  workloads.section_3_1_sigma())
        assert prover.implies(parse_nfd("R:A:[B -> E]"))


class TestExample32:
    def test_transitivity_fails_with_empty_sets(self):
        instance = workloads.example_3_2_instance()
        assert satisfies(instance, parse_nfd("R:[A -> B:C]"))
        assert satisfies(instance, parse_nfd("R:[B:C -> D]"))
        assert not satisfies(instance, parse_nfd("R:[A -> D]"))

    def test_prefix_fails_with_empty_sets(self):
        instance = workloads.example_3_2_instance()
        assert satisfies(instance, parse_nfd("R:[B:C -> E]"))
        assert not satisfies(instance, parse_nfd("R:[B -> E]"))

    def test_gated_engine_respects_the_example(self):
        schema = workloads.example_3_2_schema()
        spec = NonEmptySpec.for_schema(schema,
                                       except_paths=[parse_path("R:B")])
        sigma = [parse_nfd("R:[A -> B:C]"), parse_nfd("R:[B:C -> D]"),
                 parse_nfd("R:[B:C -> E]")]
        engine = ClosureEngine(schema, sigma, nonempty=spec)
        assert not engine.implies(parse_nfd("R:[A -> D]"))
        assert not engine.implies(parse_nfd("R:[B -> E]"))


class TestAppendixA:
    def _check(self, schema, sigma, lhs_texts, expected_closure):
        engine = ClosureEngine(schema, sigma)
        lhs = {parse_path(t) for t in lhs_texts}
        closed = engine.closure(parse_path("R"), lhs)
        assert {str(p) for p in closed} == expected_closure
        instance = build_countermodel(engine, parse_path("R"), lhs)
        check_instance(instance)
        assert satisfies_all_fast(instance, sigma)
        for q in relation_paths(schema, "R"):
            from repro.nfd import NFD
            nfd = NFD(parse_path("R"), lhs, q)
            assert satisfies_fast(instance, nfd) == (q in closed), q
        return instance

    def test_example_a1(self):
        self._check(
            workloads.example_a1_schema(), workloads.example_a1_sigma(),
            ["B"],
            {"B", "B:C", "D", "E:F", "H", "H:J"},
        )

    def test_example_a2(self):
        self._check(
            workloads.example_a2_schema(), workloads.example_a2_sigma(),
            ["A:B:C"],
            {"A:B:C", "A:B", "A:B:D", "A:B:E:F"},
        )
