"""Every example script must run clean — they are living documentation."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # examples print to stdout; run them in-process so failures carry
    # real tracebacks and coverage counts them.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(SCRIPTS) >= 3, "the repository promises at least three"
