"""Unit tests for key discovery."""

from repro.analysis import is_key, key_nfds, local_minimal_keys, \
    minimal_keys
from repro.generators import workloads
from repro.inference import ClosureEngine, ImplicationSession, NonEmptySpec
from repro.nfd import parse_nfds
from repro.paths import parse_path
from repro.types import parse_schema


class TestMinimalKeys:
    def test_cnum_is_the_course_key(self):
        schema = workloads.course_schema()
        keys = minimal_keys(schema, workloads.course_sigma(), "Course")
        assert frozenset({parse_path("cnum")}) in keys

    def test_time_sid_is_not_a_top_level_key(self):
        # time + students:sid determine cnum, but students:sid is not a
        # top-level attribute, so it does not appear in key discovery.
        schema = workloads.course_schema()
        keys = minimal_keys(schema, workloads.course_sigma(), "Course")
        flattened = {frozenset(str(p) for p in key) for key in keys}
        assert {"time"} not in flattened

    def test_composite_minimal_key(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A, B -> C]")
        keys = minimal_keys(schema, sigma, "R")
        assert keys == [frozenset({parse_path("A"), parse_path("B")})]

    def test_supersets_excluded(self):
        schema = parse_schema("R = {<A, B>}")
        sigma = parse_nfds("R:[A -> B]")
        keys = minimal_keys(schema, sigma, "R")
        assert frozenset({parse_path("A")}) in keys
        assert frozenset({parse_path("A"), parse_path("B")}) not in keys


class TestGatedKeys:
    """Regression: the sweep must honour the nonempty spec (it used to
    build its engine without one, silently answering in plain mode)."""

    def _workload(self):
        schema = parse_schema("R = {<a: string, b: {<c: int>}>}")
        sigma = parse_nfds("R:[b:c -> a]")
        return schema, sigma

    def test_plain_mode_shortens_the_prefix(self):
        schema, sigma = self._workload()
        keys = minimal_keys(schema, sigma, "R")
        assert keys == [frozenset({parse_path("b")})]

    def test_gated_mode_blocks_the_shortening(self):
        # with only R declared non-empty, b may be empty, so b:c -> a
        # cannot be shortened to b -> a: {b} is no longer a key and the
        # minimal key grows to {a, b}
        schema, sigma = self._workload()
        spec = NonEmptySpec({parse_path("R")})
        keys = minimal_keys(schema, sigma, "R", nonempty=spec)
        assert keys == [frozenset({parse_path("a"), parse_path("b")})]

    def test_supplied_engine_spec_is_authoritative(self):
        schema, sigma = self._workload()
        spec = NonEmptySpec({parse_path("R")})
        session = ImplicationSession(schema, sigma, spec)
        keys = minimal_keys(schema, sigma, "R", engine=session)
        assert keys == [frozenset({parse_path("a"), parse_path("b")})]

    def test_local_keys_accept_the_spec(self):
        schema = workloads.course_schema()
        spec = NonEmptySpec.all_nonempty()
        keys = local_minimal_keys(schema, workloads.course_sigma(),
                                  parse_path("Course:students"),
                                  nonempty=spec)
        assert frozenset({parse_path("sid")}) in keys


class TestLocalKeys:
    def test_sid_is_a_local_student_key(self):
        schema = workloads.course_schema()
        keys = local_minimal_keys(schema, workloads.course_sigma(),
                                  parse_path("Course:students"))
        # sid determines grade locally; age needs the global constraint
        # pushed down, which holds too (sid -> age globally).
        assert frozenset({parse_path("sid")}) in keys


class TestIsKeyAndDeclaration:
    def test_is_key(self):
        schema = parse_schema("R = {<A, B>}")
        engine = ClosureEngine(schema, parse_nfds("R:[A -> B]"))
        assert is_key(engine, parse_path("R"), {parse_path("A")})
        assert not is_key(engine, parse_path("R"), {parse_path("B")})

    def test_key_nfds_roundtrip(self):
        schema = parse_schema("R = {<A, B, C>}")
        declared = key_nfds(parse_path("R"), {parse_path("A")},
                            ["A", "B", "C"])
        assert len(declared) == 2  # A -> B, A -> C
        engine = ClosureEngine(schema, declared)
        assert is_key(engine, parse_path("R"), {parse_path("A")})
