"""Unit tests for key discovery."""

from repro.analysis import is_key, key_nfds, local_minimal_keys, \
    minimal_keys
from repro.generators import workloads
from repro.inference import ClosureEngine
from repro.nfd import parse_nfds
from repro.paths import parse_path
from repro.types import parse_schema


class TestMinimalKeys:
    def test_cnum_is_the_course_key(self):
        schema = workloads.course_schema()
        keys = minimal_keys(schema, workloads.course_sigma(), "Course")
        assert frozenset({parse_path("cnum")}) in keys

    def test_time_sid_is_not_a_top_level_key(self):
        # time + students:sid determine cnum, but students:sid is not a
        # top-level attribute, so it does not appear in key discovery.
        schema = workloads.course_schema()
        keys = minimal_keys(schema, workloads.course_sigma(), "Course")
        flattened = {frozenset(str(p) for p in key) for key in keys}
        assert {"time"} not in flattened

    def test_composite_minimal_key(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A, B -> C]")
        keys = minimal_keys(schema, sigma, "R")
        assert keys == [frozenset({parse_path("A"), parse_path("B")})]

    def test_supersets_excluded(self):
        schema = parse_schema("R = {<A, B>}")
        sigma = parse_nfds("R:[A -> B]")
        keys = minimal_keys(schema, sigma, "R")
        assert frozenset({parse_path("A")}) in keys
        assert frozenset({parse_path("A"), parse_path("B")}) not in keys


class TestLocalKeys:
    def test_sid_is_a_local_student_key(self):
        schema = workloads.course_schema()
        keys = local_minimal_keys(schema, workloads.course_sigma(),
                                  parse_path("Course:students"))
        # sid determines grade locally; age needs the global constraint
        # pushed down, which holds too (sid -> age globally).
        assert frozenset({parse_path("sid")}) in keys


class TestIsKeyAndDeclaration:
    def test_is_key(self):
        schema = parse_schema("R = {<A, B>}")
        engine = ClosureEngine(schema, parse_nfds("R:[A -> B]"))
        assert is_key(engine, parse_path("R"), {parse_path("A")})
        assert not is_key(engine, parse_path("R"), {parse_path("B")})

    def test_key_nfds_roundtrip(self):
        schema = parse_schema("R = {<A, B, C>}")
        declared = key_nfds(parse_path("R"), {parse_path("A")},
                            ["A", "B", "C"])
        assert len(declared) == 2  # A -> B, A -> C
        engine = ClosureEngine(schema, declared)
        assert is_key(engine, parse_path("R"), {parse_path("A")})
