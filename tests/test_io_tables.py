"""Unit tests for the nested ASCII table renderer."""

from repro.generators import workloads
from repro.io import render_instance, render_relation
from repro.values import EMPTY_SET, from_python


class TestRenderRelation:
    def test_flat_table(self):
        relation = from_python([{"A": 1, "B": 2}])
        text = render_relation(relation)
        lines = text.splitlines()
        assert "A" in lines[0] and "B" in lines[0]
        assert "1" in lines[2] and "2" in lines[2]

    def test_nested_table_has_subheaders(self):
        text = render_relation(workloads.figure1_instance().relation("R"))
        # sub-headers of the nested sets appear
        for label in ("A", "B", "C", "D", "E", "F", "G"):
            assert label in text
        # the Figure 1 values are all present
        for value in ("1", "2", "3", "5", "7"):
            assert value in text

    def test_empty_set_renders_marker(self):
        relation = from_python([{"A": 1, "B": []}])
        assert "∅" in render_relation(relation)

    def test_example_3_2_table(self):
        text = render_relation(
            workloads.example_3_2_instance().relation("R"))
        assert "∅" in text          # the two empty B sets
        assert "C" in text          # subheader of the third row's B

    def test_title(self):
        relation = from_python([{"A": 1}])
        text = render_relation(relation, title="R:")
        assert text.splitlines()[0] == "R:"

    def test_empty_relation(self):
        assert render_relation(EMPTY_SET) == "∅"

    def test_deterministic(self):
        relation = workloads.course_instance().relation("Course")
        assert render_relation(relation) == render_relation(relation)


class TestRenderInstance:
    def test_all_relations_titled(self):
        text = render_instance(workloads.warehouse_instance())
        assert "StoreA:" in text
        assert "StoreB:" in text
        assert "Warehouse:" in text
