"""Unit and randomized tests for the incremental checker."""

import random

import pytest

from repro.errors import InstanceError
from repro.generators import random_instance, random_schema, random_sigma
from repro.generators import workloads
from repro.incremental import IncrementalChecker
from repro.nfd import parse_nfd, parse_nfds, satisfies_all_fast
from repro.types import parse_schema


@pytest.fixture
def course_checker():
    return IncrementalChecker(workloads.course_schema(),
                              workloads.course_sigma())


def _course(cnum, time, sid=1, age=20, grade="A", isbn=1, title="t"):
    return {"cnum": cnum, "time": time,
            "students": [{"sid": sid, "age": age, "grade": grade}],
            "books": [{"isbn": isbn, "title": title}]}


class TestInsert:
    def test_clean_inserts(self, course_checker):
        assert course_checker.insert("Course", _course("a", 1)) == []
        assert course_checker.insert("Course",
                                     _course("b", 2, sid=2)) == []
        assert course_checker.is_consistent()
        assert len(course_checker) == 2

    def test_global_conflict_detected(self, course_checker):
        course_checker.insert("Course", _course("a", 1, sid=1, age=20))
        created = course_checker.insert(
            "Course", _course("b", 2, sid=1, age=99))
        assert created  # sid -> age violated
        assert not course_checker.is_consistent()
        texts = " ".join(c.describe() for c in created)
        assert "students:sid" in texts

    def test_local_conflict_detected(self, course_checker):
        # two grades for one student within a single course
        bad = {"cnum": "a", "time": 1,
               "students": [{"sid": 1, "age": 20, "grade": "A"},
                            {"sid": 1, "age": 20, "grade": "B"}],
               "books": [{"isbn": 1, "title": "t"}]}
        created = course_checker.insert("Course", bad)
        assert any(c.nfd == parse_nfd("Course:students:[sid -> grade]")
                   for c in created)

    def test_duplicate_insert_is_noop(self, course_checker):
        row = _course("a", 1)
        course_checker.insert("Course", row)
        assert course_checker.insert("Course", row) == []
        assert len(course_checker) == 1

    def test_scheduling_conflict(self, course_checker):
        course_checker.insert("Course", _course("a", 1, sid=1))
        created = course_checker.insert("Course", _course("b", 1, sid=1))
        assert any("time" in c.describe() for c in created)


class TestRemove:
    def test_removal_resolves(self, course_checker):
        first = _course("a", 1, sid=1, age=20)
        second = _course("b", 2, sid=1, age=99)
        course_checker.insert("Course", first)
        course_checker.insert("Course", second)
        assert not course_checker.is_consistent()
        resolved = course_checker.remove("Course", second)
        assert resolved
        assert course_checker.is_consistent()

    def test_remove_missing_raises(self, course_checker):
        with pytest.raises(InstanceError):
            course_checker.remove("Course", _course("a", 1))

    def test_partial_resolution_keeps_conflict(self):
        schema = parse_schema("R = {<A, B>}")
        sigma = parse_nfds("R:[A -> B]")
        checker = IncrementalChecker(schema, sigma)
        checker.insert("R", {"A": 1, "B": 1})
        checker.insert("R", {"A": 1, "B": 2})
        checker.insert("R", {"A": 1, "B": 3})
        checker.remove("R", {"A": 1, "B": 3})
        assert not checker.is_consistent()  # B 1 vs 2 remains
        checker.remove("R", {"A": 1, "B": 2})
        assert checker.is_consistent()


class TestCheckInsert:
    def test_dry_run_does_not_mutate(self, course_checker):
        course_checker.insert("Course", _course("a", 1, sid=1, age=20))
        probe = _course("b", 2, sid=1, age=99)
        found = course_checker.check_insert("Course", probe)
        assert found
        assert course_checker.is_consistent()
        assert len(course_checker) == 1

    def test_dry_run_clean(self, course_checker):
        assert course_checker.check_insert("Course", _course("a", 1)) == []


class TestEmptySets:
    def test_undefined_paths_do_not_constrain(self):
        schema = parse_schema("R = {<A, B: {<C>}, D>}")
        sigma = parse_nfds("R:[B:C -> D]")
        checker = IncrementalChecker(schema, sigma)
        # tuples with empty B never conflict on B:C -> D
        assert checker.insert("R", {"A": 1, "B": [], "D": 1}) == []
        assert checker.insert("R", {"A": 2, "B": [], "D": 2}) == []
        assert checker.is_consistent()
        assert checker.insert(
            "R", {"A": 3, "B": [{"C": 9}], "D": 3}) == []
        created = checker.insert(
            "R", {"A": 4, "B": [{"C": 9}], "D": 4})
        assert created


class TestAgreementWithBatchChecker:
    """Random insert/remove scripts: incremental verdict == batch."""

    def test_randomized_scripts(self):
        rng = random.Random(77)
        for _ in range(15):
            schema = random_schema(rng, max_fields=3, max_depth=2,
                                   set_probability=0.5)
            sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
            checker = IncrementalChecker(schema, sigma)
            relation = schema.relation_names[0]
            pool = [
                next(iter(random_instance(rng, schema, tuples=1,
                                          domain=2).relation(relation)))
                for _ in range(6)
            ]
            present: list = []
            for step in range(12):
                if present and rng.random() < 0.3:
                    row = rng.choice(present)
                    present.remove(row)
                    checker.remove(relation, row)
                else:
                    row = rng.choice(pool)
                    if row not in present:
                        present.append(row)
                    checker.insert(relation, row)
                batch = satisfies_all_fast(checker.to_instance(), sigma)
                assert checker.is_consistent() == batch, \
                    (sigma, present, checker.conflicts())

    def test_initial_instance_loading(self):
        instance = workloads.course_instance()
        checker = IncrementalChecker(workloads.course_schema(),
                                     workloads.course_sigma(), instance)
        assert checker.is_consistent()
        assert checker.to_instance().relation("Course") == \
            instance.relation("Course")

class TestLoadRows:
    """Bulk-loading a relation from a streamed JSONL dump."""

    def test_load_rows_from_jsonl_matches_instance_load(self, tmp_path):
        from repro.io.stream import dump_jsonl, iter_jsonl_elements

        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        instance = workloads.course_instance()
        path = tmp_path / "course.jsonl"
        dump_jsonl(path, instance.relation("Course"))

        streamed = IncrementalChecker(schema, sigma)
        loaded = streamed.load_rows(
            "Course", iter_jsonl_elements(path, schema, "Course"))
        reference = IncrementalChecker(schema, sigma, instance)

        assert loaded == len(instance.relation("Course"))
        assert streamed.to_instance() == reference.to_instance()
        assert streamed.conflicts() == reference.conflicts()
        assert streamed.is_consistent() == reference.is_consistent()

    def test_load_rows_is_idempotent(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        rows = list(workloads.course_instance().relation("Course"))
        checker = IncrementalChecker(schema, sigma)
        assert checker.load_rows("Course", rows) == len(rows)
        assert checker.load_rows("Course", rows) == 0  # all duplicates
        assert len(checker) == len(rows)

    def test_load_rows_surfaces_conflicts_once(self):
        schema = workloads.course_schema()
        sigma = parse_nfds("Course:[cnum -> time]")
        rows = [{"cnum": "x", "time": 1, "students": [], "books": []},
                {"cnum": "x", "time": 2, "students": [], "books": []}]
        checker = IncrementalChecker(schema, sigma)
        assert checker.load_rows("Course", rows) == 2
        conflicts = checker.conflicts()
        assert len(conflicts) == 1
        assert not checker.is_consistent()
        # a second sweep over the same state must not duplicate it
        assert checker.load_rows("Course", []) == 0
        assert checker.conflicts() == conflicts
