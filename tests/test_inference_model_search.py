"""Unit tests for the semantic countermodel search."""

import random

from repro.generators import workloads
from repro.inference import search_countermodel, \
    semantic_implication_verdict
from repro.nfd import parse_nfd, satisfies_all_fast, satisfies_fast
from repro.types import parse_schema


class TestSearchCountermodel:
    def test_finds_separator_for_non_implication(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = [parse_nfd("R:[A -> B]")]
        candidate = parse_nfd("R:[B -> A]")
        rng = random.Random(1)
        witness = search_countermodel(schema, sigma, candidate, rng)
        assert witness is not None
        assert satisfies_all_fast(witness, sigma)
        assert not satisfies_fast(witness, candidate)

    def test_none_for_implication(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = [parse_nfd("R:[A -> B]"), parse_nfd("R:[B -> C]")]
        candidate = parse_nfd("R:[A -> C]")
        rng = random.Random(2)
        assert search_countermodel(schema, sigma, candidate, rng,
                                   attempts=100) is None
        assert semantic_implication_verdict(schema, sigma, candidate,
                                            random.Random(3),
                                            attempts=100)

    def test_random_only_mode(self):
        # With the construction disabled the random search still finds
        # flat separators quickly.
        schema = parse_schema("R = {<A, B>}")
        witness = search_countermodel(
            schema, [], parse_nfd("R:[A -> B]"), random.Random(4),
            use_construction=False)
        assert witness is not None

    def test_nested_separator(self):
        schema = workloads.section_3_1_schema()
        sigma = workloads.section_3_1_sigma()
        candidate = parse_nfd("R:A:[E -> B]")
        witness = search_countermodel(schema, sigma, candidate,
                                      random.Random(5))
        assert witness is not None
        assert satisfies_all_fast(witness, sigma)
        assert not satisfies_fast(witness, candidate)
