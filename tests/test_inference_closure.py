"""Unit tests for the closure engine (Theorem 3.1's decision procedure)."""

import pytest

from repro.errors import InferenceError
from repro.generators import workloads
from repro.inference import ClosureEngine
from repro.nfd import parse_nfd, parse_nfds
from repro.paths import parse_path
from repro.types import parse_schema


def _paths(*texts):
    return {parse_path(t) for t in texts}


class TestSection31:
    def test_headline_claim(self, section_3_1_engine):
        assert section_3_1_engine.implies(parse_nfd("R:A:[B -> E]"))

    def test_closure_at_nested_base(self, section_3_1_engine):
        closed = section_3_1_engine.closure(parse_path("R:A"),
                                            _paths("B"))
        assert closed == _paths("B", "E", "E:F", "E:G")

    def test_every_intermediate_step(self, section_3_1_engine):
        for text in ["R:A:[B:C -> E:F]", "R:A:[B -> E:F]",
                     "R:A:E:[∅ -> F]", "R:A:[E -> E:F]",
                     "R:A:E:[∅ -> G]", "R:A:[E -> E:G]",
                     "R:A:[E:F, E:G -> E]"]:
            assert section_3_1_engine.implies(parse_nfd(text)), text

    def test_non_implications(self, section_3_1_engine):
        for text in ["R:A:[B -> B:C]", "R:[D -> A:B:C]", "R:A:[E -> B]",
                     "R:[A -> D]", "R:A:B:[∅ -> C]"]:
            assert not section_3_1_engine.implies(parse_nfd(text)), text


class TestAppendixAClosures:
    def test_example_a1(self):
        engine = ClosureEngine(workloads.example_a1_schema(),
                               workloads.example_a1_sigma())
        closed = engine.closure(parse_path("R"), _paths("B"))
        assert closed == _paths("B", "B:C", "D", "E:F", "H", "H:J")

    def test_example_a2(self):
        engine = ClosureEngine(workloads.example_a2_schema(),
                               workloads.example_a2_sigma())
        closed = engine.closure(parse_path("R"), _paths("A:B:C"))
        assert closed == _paths("A:B:C", "A:B", "A:B:D", "A:B:E:F")


class TestArmstrongBehaviour:
    """On flat schemas the engine is the classical closure."""

    @pytest.fixture
    def flat_engine(self):
        schema = parse_schema("R = {<A, B, C, D>}")
        sigma = parse_nfds("""
            R:[A -> B]
            R:[B -> C]
        """)
        return ClosureEngine(schema, sigma)

    def test_transitive_chain(self, flat_engine):
        closed = flat_engine.closure(parse_path("R"), _paths("A"))
        assert closed == _paths("A", "B", "C")

    def test_reflexivity_and_augmentation(self, flat_engine):
        assert flat_engine.implies(parse_nfd("R:[A, D -> A]"))
        assert flat_engine.implies(parse_nfd("R:[A, D -> C]"))

    def test_no_overreach(self, flat_engine):
        assert not flat_engine.implies(parse_nfd("R:[B -> A]"))
        assert not flat_engine.implies(parse_nfd("R:[C -> D]"))


class TestIntroScenario:
    """The introduction's motivating inference: sid and time determine
    the set of books."""

    def test_books_by_sid_and_time(self, course_engine):
        assert course_engine.implies(
            parse_nfd("Course:[students:sid, time -> books]"))

    def test_via_cnum(self, course_engine):
        # time, sid -> cnum (given) and cnum is a key -> books.
        assert course_engine.implies(
            parse_nfd("Course:[students:sid, time -> students]"))
        assert not course_engine.implies(
            parse_nfd("Course:[students:sid -> books]"))


class TestEquivalentForms:
    """Push-in/pull-out equivalence at the engine level."""

    def test_local_iff_global_form(self, course_engine):
        local = parse_nfd("Course:students:[sid -> grade]")
        global_form = parse_nfd(
            "Course:[students, students:sid -> students:grade]")
        assert course_engine.implies(local)
        assert course_engine.implies(global_form)

    def test_example_3_1_full_locality(self):
        schema = workloads.example_3_1_schema()
        f1 = workloads.example_3_1_nfd()
        engine = ClosureEngine(schema, [f1])
        # derivable with locality + push-in:
        assert engine.implies(
            parse_nfd("R:[A, A:B:C, A:D -> A:B:E]"))
        # needs full-locality (Example 3.1's point):
        assert engine.implies(parse_nfd("R:[A:B, A:B:C -> A:B:E]"))
        # but the dependency without the set itself is NOT implied:
        assert not engine.implies(parse_nfd("R:[A:B:C -> A:B:E]"))


class TestValidation:
    def test_ill_formed_sigma_rejected(self):
        schema = parse_schema("R = {<A, B>}")
        with pytest.raises(Exception):
            ClosureEngine(schema, [parse_nfd("R:[nope -> B]")])

    def test_ill_formed_query_rejected(self, course_engine):
        with pytest.raises(InferenceError):
            course_engine.implies(parse_nfd("Course:[nope -> time]"))
        with pytest.raises(InferenceError):
            course_engine.closure_simple("Nope", [])

    def test_queries_are_cached(self, section_3_1_engine):
        first = section_3_1_engine.closure(parse_path("R:A"), _paths("B"))
        second = section_3_1_engine.closure(parse_path("R:A"), _paths("B"))
        assert first == second


class TestSingletonReasoning:
    def test_determined_attributes_pin_the_set(self):
        # R:[D -> A:B], R:[D -> A:C] forces A singleton; hence D -> A.
        schema = parse_schema("R = {<A: {<B, C>}, D>}")
        sigma = parse_nfds("""
            R:[D -> A:B]
            R:[D -> A:C]
        """)
        engine = ClosureEngine(schema, sigma)
        assert engine.implies(parse_nfd("R:[D -> A]"))

    def test_partial_attributes_do_not(self):
        schema = parse_schema("R = {<A: {<B, C>}, D>}")
        engine = ClosureEngine(schema, parse_nfds("R:[D -> A:B]"))
        assert not engine.implies(parse_nfd("R:[D -> A]"))


class TestBaseValidation:
    """The closure base is validated up front (not via stray
    IndexError/KeyError escapes)."""

    def test_empty_base_rejected(self, course_engine):
        with pytest.raises(InferenceError, match="bad closure base"):
            course_engine.closure(parse_path(""), _paths("cnum"))

    def test_unknown_relation_rejected(self, course_engine):
        with pytest.raises(InferenceError, match="relation"):
            course_engine.closure(parse_path("Nope"), _paths("cnum"))

    def test_ill_typed_base_tail_rejected(self, course_engine):
        with pytest.raises(InferenceError, match="bad closure base"):
            course_engine.closure(parse_path("Course:nope"), set())

    def test_non_set_base_rejected(self, course_engine):
        # cnum is atomic: the base must reach a set-valued position
        with pytest.raises(InferenceError, match="set-valued"):
            course_engine.closure(parse_path("Course:cnum"), set())


class TestStrategies:
    def test_unknown_strategy_rejected(self, course_schema, course_sigma):
        with pytest.raises(InferenceError, match="strategy"):
            ClosureEngine(course_schema, course_sigma, strategy="magic")

    def test_naive_reference_agrees(self, course_schema, course_sigma):
        fast = ClosureEngine(course_schema, course_sigma)
        slow = ClosureEngine(course_schema, course_sigma,
                             strategy="naive")
        for text in ["Course:[students:sid, time -> books]",
                     "Course:[students:sid -> books]",
                     "Course:students:[sid -> grade]"]:
            assert fast.implies(parse_nfd(text)) == \
                slow.implies(parse_nfd(text)), text


class TestEngineStats:
    def test_counters_accumulate(self, course_schema, course_sigma):
        engine = ClosureEngine(course_schema, course_sigma)
        assert engine.stats.attempts == 0
        engine.implies(parse_nfd("Course:[students:sid, time -> books]"))
        stats = engine.stats
        assert stats.strategy == "worklist"
        assert stats.attempts > 0
        assert 0 < stats.successes <= stats.attempts
        assert stats.saturations >= 1
        assert stats.rounds >= 1
        assert stats.wall_time > 0
        assert stats.queries["Course"] >= 1
        assert stats.derived["Course"] >= 1
        assert stats.usables["Course"] >= len(course_sigma)
        assert stats.candidates["Course"] == 2  # students, books

    def test_warm_queries_add_no_attempts(self, course_engine):
        nfd = parse_nfd("Course:[students:sid, time -> books]")
        course_engine.implies(nfd)
        cold = course_engine.stats.attempts
        course_engine.implies(nfd)
        assert course_engine.stats.attempts == cold

    def test_snapshot_is_plain_data(self, course_engine):
        course_engine.implies(parse_nfd("Course:[cnum -> time]"))
        payload = course_engine.stats.as_dict()
        assert payload["strategy"] == "worklist"
        assert set(payload) >= {"attempts", "successes", "rounds",
                                "usables", "queries", "derived"}
        text = course_engine.stats.to_text()
        assert "apply attempts" in text
        assert "Course" in text


class TestWithout:
    def test_matches_fresh_rest_engine(self, course_schema, course_sigma):
        engine = ClosureEngine(course_schema, course_sigma)
        for index, member in enumerate(course_sigma):
            sibling = engine.without(index)
            rest = list(course_sigma[:index]) + \
                list(course_sigma[index + 1:])
            fresh = ClosureEngine(course_schema, rest)
            assert sibling.implies(member) == fresh.implies(member)

    def test_shares_schema_precomputation(self, course_engine):
        sibling = course_engine.without(0)
        assert sibling._pool is course_engine._pool
        assert len(sibling.sigma) == len(course_engine.sigma) - 1

    def test_out_of_range_rejected(self, course_engine):
        with pytest.raises(InferenceError, match="index"):
            course_engine.without(len(course_engine.sigma))
        with pytest.raises(InferenceError, match="index"):
            course_engine.without(-1)


class TestGatedPrefixCoverage:
    """Coverage considers every admissible covering path.

    With ``R:A:B`` declared non-empty but ``R:A`` not, the member
    ``A:B:C`` of ``[A:B:C -> E]`` fails the Section 3.2 intermediate
    gate itself (it traverses the undeclared ``A``), yet the gated
    prefix rule may shorten it to ``A:B`` — which is in the query key
    and therefore exempt.  A greedy member-first coverage (the
    pre-worklist engine) missed this derivation once ``A:B:C`` entered
    the closure; considering all covering options keeps the step rule
    monotone and complete for the gated system.
    """

    @pytest.fixture
    def gated_setup(self):
        from repro.inference import NonEmptySpec

        schema = parse_schema("R = {<A: {<B: {<C>}>}, E>}")
        sigma = parse_nfds("""
            R:[A:B -> A:B:C]
            R:[A:B:C -> E]
        """)
        spec = NonEmptySpec({parse_path("R"), parse_path("R:A:B")})
        return schema, sigma, spec

    def test_prefix_covered_member_fires(self, gated_setup):
        schema, sigma, spec = gated_setup
        for strategy in ("worklist", "naive", "dense"):
            engine = ClosureEngine(schema, sigma, nonempty=spec,
                                   strategy=strategy)
            assert engine.implies(parse_nfd("R:[A:B -> E]")), strategy

    def test_blocked_without_declaration(self, gated_setup):
        from repro.inference import NonEmptySpec

        schema, sigma, _ = gated_setup
        # withhold R:A:B as well: now the shortening is gated off too
        spec = NonEmptySpec({parse_path("R")})
        engine = ClosureEngine(schema, sigma, nonempty=spec)
        assert not engine.implies(parse_nfd("R:[A:B -> E]"))


class TestDenseStrategy:
    """The interned-bitmask kernel behind ``strategy="dense"``."""

    def test_agrees_with_worklist(self, course_schema, course_sigma):
        dense = ClosureEngine(course_schema, course_sigma,
                              strategy="dense")
        worklist = ClosureEngine(course_schema, course_sigma)
        for text in ["Course:[students:sid, time -> books]",
                     "Course:[students:sid -> books]",
                     "Course:students:[sid -> grade]",
                     "Course:[cnum -> time]"]:
            assert dense.implies(parse_nfd(text)) == \
                worklist.implies(parse_nfd(text)), text

    def test_closure_many_matches_mapped(self, course_schema,
                                         course_sigma):
        base = parse_path("Course")
        queries = [(base, _paths("cnum")), (base, _paths("time")),
                   (base, _paths("cnum", "time")), (base, frozenset())]
        batch = ClosureEngine(course_schema, course_sigma,
                              strategy="dense").closure_many(queries)
        fresh = ClosureEngine(course_schema, course_sigma,
                              strategy="dense")
        assert batch == [fresh.closure(b, lhs) for b, lhs in queries]

    def test_covers_many_matches_membership(self, course_schema,
                                            course_sigma):
        base = parse_path("Course")
        candidates = [_paths("cnum"), _paths("time"), _paths("books")]
        targets = _paths("time", "books")
        engine = ClosureEngine(course_schema, course_sigma,
                               strategy="dense")
        verdicts = engine.covers_many(base, candidates, targets)
        fresh = ClosureEngine(course_schema, course_sigma)
        assert verdicts == [targets <= fresh.closure(base, c)
                            for c in candidates]

    def test_covers_many_rejects_bad_paths(self, course_schema,
                                           course_sigma):
        engine = ClosureEngine(course_schema, course_sigma,
                               strategy="dense")
        with pytest.raises(InferenceError, match="not well-typed"):
            engine.covers_many(parse_path("Course"),
                               [_paths("nope")], _paths("time"))

    def test_explain_requires_provenance(self, course_schema,
                                         course_sigma):
        engine = ClosureEngine(course_schema, course_sigma,
                               strategy="dense")
        with pytest.raises(InferenceError, match="worklist"):
            engine.explain(parse_nfd("Course:[cnum -> time]"))

    def test_stats_report_kernel_counters(self, course_schema,
                                          course_sigma):
        engine = ClosureEngine(course_schema, course_sigma,
                               strategy="dense")
        engine.implies(parse_nfd("Course:[students:sid, time -> books]"))
        stats = engine.stats
        assert stats.strategy == "dense"
        assert stats.mask_tests > 0
        assert stats.interned["Course"] > 0
        payload = stats.as_metrics()
        assert payload["mask_tests"] == stats.mask_tests
        assert payload["dense_seeds"] == stats.dense_seeds
        assert payload["interned"] == stats.interned
        text = stats.to_text()
        assert "mask tests" in text
        assert "interned ids" in text

    def test_diff_mismatch_names_snapshot_misuse(self, course_schema,
                                                 course_sigma):
        dense = ClosureEngine(course_schema, course_sigma,
                              strategy="dense").stats
        worklist = ClosureEngine(course_schema, course_sigma).stats
        with pytest.raises(InferenceError,
                           match=r"snapshot\(\) calls taken from the "
                                 r"\*same\* engine"):
            dense.diff(worklist)

    def test_batch_seeding_counts(self, course_schema, course_sigma):
        engine = ClosureEngine(course_schema, course_sigma,
                               strategy="dense")
        base = parse_path("Course")
        engine.closure_many([(base, _paths("cnum")),
                             (base, _paths("cnum", "time"))])
        # the two-member query must have seeded from the one-member one
        assert engine.stats.dense_seeds >= 1
