"""Tests for the experimental chase-based implication test.

Contract under test: "not implied" verdicts carry a genuine
countermodel; "implied" verdicts agree with the closure engine on the
seeded random family except for documented over-approximations.
"""

import random

from repro.chase.nested_implication import chase_implies
from repro.generators import random_nfd, random_schema, random_sigma
from repro.generators import workloads
from repro.inference import ClosureEngine
from repro.nfd import NFD, parse_nfds, satisfies_all_fast, satisfies_fast
from repro.types import parse_schema


class TestChaseImplies:
    def test_positive_on_paper_example(self):
        schema = workloads.section_3_1_schema()
        sigma = workloads.section_3_1_sigma()
        verdict = chase_implies(schema, sigma, NFD.parse("R:A:[B -> E]"))
        assert verdict.implied
        assert not verdict.certified  # positives are heuristic

    def test_negative_is_certified_with_countermodel(self):
        schema = workloads.section_3_1_schema()
        sigma = workloads.section_3_1_sigma()
        verdict = chase_implies(schema, sigma, NFD.parse("R:A:[E -> B]"))
        assert not verdict.implied
        assert verdict.certified
        assert satisfies_all_fast(verdict.instance, sigma)
        assert not satisfies_fast(verdict.instance,
                                  NFD.parse("R:A:[E -> B]"))

    def test_course_inferences(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        positive = chase_implies(
            schema, sigma,
            NFD.parse("Course:[students:sid, time -> books]"))
        assert positive.implied
        negative = chase_implies(
            schema, sigma, NFD.parse("Course:[time -> cnum]"))
        assert not negative.implied and negative.certified

    def test_negatives_always_certified_randomized(self):
        """Every 'not implied' produced on a random family is a real
        countermodel, and never contradicts the engine."""
        rng = random.Random(2718)
        negatives = 0
        for _ in range(25):
            schema = random_schema(rng, max_fields=3, max_depth=2,
                                   set_probability=0.5)
            sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
            engine = ClosureEngine(schema, sigma)
            for _ in range(3):
                candidate = random_nfd(rng, schema, max_lhs=2)
                verdict = chase_implies(schema, sigma, candidate)
                if verdict.implied:
                    continue
                negatives += 1
                assert satisfies_all_fast(verdict.instance, sigma)
                assert not satisfies_fast(verdict.instance, candidate)
                # a certified negative must agree with Theorem 3.1
                assert not engine.implies(candidate)
        assert negatives > 10

    def test_documented_over_approximation(self):
        """The known case where the global-replacement chase merges two
        A sets that a genuine model could keep distinct: the chase says
        implied, the (complete) engine says not.  This pins the
        one-sidedness down; if the chase is ever sharpened, this test
        should flip and be updated."""
        schema = parse_schema("R = {<A: {<B: {<C>}>}, D: {<E>}>}")
        sigma = parse_nfds("""
            R:[A:B:C -> A:B]
            R:[A, A:B -> D:E]
        """)
        candidate = NFD.parse("R:[A:B:C -> D]")
        engine = ClosureEngine(schema, sigma)
        assert not engine.implies(candidate)
        verdict = chase_implies(schema, sigma, candidate)
        assert verdict.implied          # the over-approximation
        assert not verdict.certified    # ... and it says so itself
