"""Unit tests for the single-pass batch validation engine."""

from collections import Counter

import pytest

from repro.errors import NFDError
from repro.nfd import (
    ValidatorEngine,
    parse_nfd,
    parse_nfds,
    satisfies,
)
from repro.nfd.satisfy import keyed_bindings, traversed_prefixes
from repro.types import parse_schema
from repro.values import Atom, Instance


class TestValidate:
    def test_clean_instance_passes(self, course_schema, course_sigma,
                                   course_instance):
        engine = ValidatorEngine(course_schema, course_sigma)
        result = engine.validate(course_instance)
        assert result.ok
        assert bool(result) is True
        assert result.violations == ()
        assert engine.check(course_instance) is True
        assert engine.satisfies_all(course_instance) is True

    def test_broken_instance_reports_each_failed_nfd(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[A -> C]\nR:[B -> C]")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": 1, "C": 1},
            {"A": 1, "B": 2, "C": 1},   # breaks A->B only
        ]})
        engine = ValidatorEngine(schema, sigma)
        result = engine.validate(instance)
        assert not result.ok
        assert result.failed == (sigma[0],)
        assert satisfies(instance, sigma[0]) is False

    def test_violations_ordered_by_sigma_position(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> C]\nR:[B -> C]")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": 1, "C": 1},
            {"A": 1, "B": 1, "C": 2},   # breaks both
        ]})
        engine = ValidatorEngine(schema, sigma)
        result = engine.validate(instance, all_violations=True)
        assert [v.nfd for v in result.violations] == list(sigma)
        grouped = result.by_nfd()
        assert set(grouped) == set(sigma)

    def test_exhaustive_mode_one_witness_per_key(self):
        schema = parse_schema("R = {<A, B>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": 1}, {"A": 1, "B": 2},
            {"A": 2, "B": 3}, {"A": 2, "B": 4},
            {"A": 3, "B": 5},
        ]})
        engine = ValidatorEngine(schema, [parse_nfd("R:[A -> B]")])
        witnesses = engine.find_violations(instance)
        assert {w.lhs_values for w in witnesses} == \
            {(Atom(1),), (Atom(2),)}

    def test_first_only_mode_stops_at_one_witness_per_nfd(self):
        schema = parse_schema("R = {<A, B>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": 1}, {"A": 1, "B": 2},
            {"A": 2, "B": 3}, {"A": 2, "B": 4},
        ]})
        engine = ValidatorEngine(schema, [parse_nfd("R:[A -> B]")])
        result = engine.validate(instance)
        assert len(result.violations) == 1

    def test_local_nfd_violation_carries_base_index(self):
        schema = parse_schema("R = {<A, B: {<C, D>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1, "D": 1}]},
            {"A": 2, "B": [{"C": 1, "D": 1}, {"C": 1, "D": 2}]},
        ]})
        engine = ValidatorEngine(schema, [parse_nfd("R:B:[C -> D]")])
        result = engine.validate(instance)
        assert not result.ok
        assert result.violations[0].base_index in (0, 1)

    def test_empty_sets_trigger_escape_clause(self):
        """A path through an empty set is undefined: the element
        constrains nothing (Definition 2.4)."""
        schema = parse_schema("R = {<A, B: {<C>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1}]},
            {"A": 1, "B": []},          # B:C undefined here
        ]})
        engine = ValidatorEngine(schema, [parse_nfd("R:[A -> B:C]")])
        assert engine.check(instance) is True

    def test_rejects_ill_formed_nfd(self, course_schema):
        with pytest.raises(NFDError):
            ValidatorEngine(course_schema,
                            [parse_nfd("Course:[nope -> time]")])

    def test_shared_base_paths_compile_into_one_anchor(self,
                                                       course_schema):
        sigma = parse_nfds(
            "Course:[cnum -> time]\nCourse:[cnum -> books]")
        one = ValidatorEngine(course_schema, sigma[:1])
        both = ValidatorEngine(course_schema, sigma)
        # cnum/time/books merge into one trie: adding the second NFD
        # costs two extra trie nodes (books leaf), not a second plan tree.
        assert both.stats.trie_nodes < 2 * one.stats.trie_nodes


class TestStats:
    def test_counters_accumulate(self, course_schema, course_sigma,
                                 course_instance):
        engine = ValidatorEngine(course_schema, course_sigma)
        assert engine.stats.validations == 0
        engine.check(course_instance)
        stats = engine.stats
        assert stats.validations == 1
        assert stats.elements_walked > 0
        assert stats.bindings_emitted > 0
        assert stats.base_sets > 0
        assert stats.trie_nodes > 0
        assert stats.wall_time > 0
        engine.check(course_instance)
        assert engine.stats.validations == 2
        assert engine.stats.elements_walked > stats.elements_walked

    def test_groups_keyed_by_nfd_text(self, course_schema, course_sigma,
                                      course_instance):
        engine = ValidatorEngine(course_schema, course_sigma)
        engine.check(course_instance)
        groups = engine.stats.groups
        assert set(groups) == {str(nfd) for nfd in course_sigma}
        assert all(count >= 0 for count in groups.values())

    def test_as_dict_and_to_text(self, course_schema, course_sigma,
                                 course_instance):
        engine = ValidatorEngine(course_schema, course_sigma)
        engine.check(course_instance)
        snapshot = engine.stats.as_dict()
        assert snapshot["validations"] == 1
        assert isinstance(snapshot["groups"], dict)
        text = engine.stats.to_text()
        assert "validator stats" in text
        assert "elements walked" in text


class TestRowQueries:
    def test_bindings_of_matches_keyed_bindings(self, course_schema,
                                                course_sigma,
                                                course_instance):
        global_nfds = [nfd for nfd in course_sigma if nfd.is_simple]
        engine = ValidatorEngine(course_schema, course_sigma)
        for element in course_instance.relation("Course"):
            per_nfd = dict(engine.bindings_of("Course", element))
            assert set(per_nfd) == set(global_nfds)
            for nfd in global_nfds:
                paths = sorted(nfd.all_paths)
                expected = keyed_bindings(nfd, element,
                                          traversed_prefixes(paths))
                assert Counter(per_nfd[nfd]) == Counter(expected)

    def test_bindings_of_undefined_path_is_empty(self):
        schema = parse_schema("R = {<A, B: {<C>}>}")
        nfd = parse_nfd("R:[A -> B:C]")
        engine = ValidatorEngine(schema, [nfd])
        instance = Instance(schema, {"R": [{"A": 1, "B": []}]})
        element = next(iter(instance.relation("R")))
        assert engine.bindings_of("R", element) == [(nfd, [])]

    def test_bindings_of_unknown_relation(self, course_schema,
                                          course_sigma):
        engine = ValidatorEngine(course_schema, course_sigma)
        assert engine.bindings_of("Nowhere", None) == []

    def test_row_violates_local_nfd(self):
        schema = parse_schema("R = {<A, B: {<C, D>}>}")
        nfd = parse_nfd("R:B:[C -> D]")
        engine = ValidatorEngine(schema, [nfd])
        good = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1, "D": 1}]}]})
        bad = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1, "D": 1}, {"C": 1, "D": 2}]}]})
        assert engine.row_violates(
            nfd, next(iter(good.relation("R")))) is False
        assert engine.row_violates(
            nfd, next(iter(bad.relation("R")))) is True

    def test_row_violates_requires_known_nfd(self, course_schema,
                                             course_sigma,
                                             course_instance):
        engine = ValidatorEngine(course_schema, course_sigma)
        stranger = parse_nfd("Course:[time -> cnum]")
        element = next(iter(course_instance.relation("Course")))
        with pytest.raises(KeyError):
            engine.row_violates(stranger, element)
