"""Tests for the multi-RHS parsing sugar."""

import pytest

from repro.errors import ParseError
from repro.nfd import parse_nfd, parse_nfd_family


class TestParseFamily:
    def test_expands_shared_lhs(self):
        family = parse_nfd_family("Course:[cnum -> time, students, books]")
        assert family == [
            parse_nfd("Course:[cnum -> time]"),
            parse_nfd("Course:[cnum -> students]"),
            parse_nfd("Course:[cnum -> books]"),
        ]

    def test_single_rhs_is_plain_parse(self):
        assert parse_nfd_family("R:A:[B -> C]") == [parse_nfd("R:A:[B -> C]")]

    def test_paths_in_rhs(self):
        family = parse_nfd_family(
            "Course:[cnum -> students:sid, books:isbn]")
        assert family == [
            parse_nfd("Course:[cnum -> students:sid]"),
            parse_nfd("Course:[cnum -> books:isbn]"),
        ]

    def test_degenerate_family(self):
        family = parse_nfd_family("R:A:E:[∅ -> F, G]")
        assert [str(f) for f in family] == ["R:A:E:[∅ -> F]",
                                            "R:A:E:[∅ -> G]"]

    def test_empty_member_rejected(self):
        with pytest.raises(ParseError):
            parse_nfd_family("R:[A -> B, ]")

    def test_malformed_falls_back_to_plain_errors(self):
        with pytest.raises(ParseError):
            parse_nfd_family("no brackets at all")
        with pytest.raises(ParseError):
            parse_nfd_family("R:[A, B]")  # no arrow
