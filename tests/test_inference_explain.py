"""Unit tests for closure-engine explanations."""

import random

import pytest

from repro.errors import InferenceError
from repro.generators import random_nfd, random_schema, random_sigma
from repro.generators import workloads
from repro.inference import ClosureEngine, Explanation
from repro.nfd import NFD


@pytest.fixture
def engine_3_1():
    return ClosureEngine(workloads.section_3_1_schema(),
                         workloads.section_3_1_sigma())


class TestExplain:
    def test_section_3_1_explanation(self, engine_3_1):
        text = engine_3_1.explain(NFD.parse("R:A:[B -> E]")).to_text()
        # the three rule families of the paper's proof all appear
        assert "singleton" in text
        assert "full-locality" in text
        assert "prefix rule" in text
        # both hypotheses are cited
        assert "R:[A:B:C, D -> A:E:F]" in text
        assert "R:A:[B -> E:G]" in text
        # the simple-form translation is surfaced for nested bases
        assert "push-in" in text

    def test_course_explanation_cites_the_chain(self):
        engine = ClosureEngine(workloads.course_schema(),
                               workloads.course_sigma())
        text = engine.explain(NFD.parse(
            "Course:[students:sid, time -> books]")).to_text()
        assert "Course:[cnum -> books]" in text
        assert "Course:[students:sid, time -> cnum]" in text
        assert "reflexivity" in text

    def test_reflexive_explanation(self, engine_3_1):
        text = engine_3_1.explain(NFD.parse("R:[D -> D]")).to_text()
        assert "reflexivity" in text

    def test_non_implied_raises(self, engine_3_1):
        with pytest.raises(InferenceError):
            engine_3_1.explain(NFD.parse("R:A:[E -> B]"))

    def test_explanations_exist_for_all_implied(self):
        """Every implied candidate over random inputs explains without
        error and mentions its RHS."""
        rng = random.Random(55)
        produced = 0
        for _ in range(25):
            schema = random_schema(rng, max_fields=3, max_depth=2,
                                   set_probability=0.5)
            sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
            engine = ClosureEngine(schema, sigma)
            for _ in range(4):
                candidate = random_nfd(rng, schema, max_lhs=2)
                if not engine.implies(candidate):
                    continue
                explanation = engine.explain(candidate)
                assert isinstance(explanation, Explanation)
                text = explanation.to_text()
                assert str(candidate) in text
                produced += 1
        assert produced > 5

    def test_str_matches_to_text(self, engine_3_1):
        explanation = engine_3_1.explain(NFD.parse("R:A:[B -> E]"))
        assert str(explanation) == explanation.to_text()
