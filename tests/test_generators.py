"""Unit tests for the random generators and the workload catalogue."""

import random

import pytest

from repro.generators import (
    LabelSupply,
    candidate_paths,
    random_instance,
    random_nfd,
    random_satisfying_instance,
    random_schema,
    random_sigma,
    workloads,
)
from repro.nfd import satisfies_all_fast
from repro.paths import parse_path
from repro.types import check_no_repeated_labels
from repro.values import check_instance, has_empty_sets, instance_conforms


class TestLabelSupply:
    def test_unique_and_deterministic(self):
        supply = LabelSupply()
        labels = [supply.next() for _ in range(30)]
        assert len(set(labels)) == 30
        assert labels[0] == "A"
        assert labels[26] == "A1"


class TestRandomSchema:
    def test_reproducible(self):
        assert random_schema(random.Random(5)) == \
            random_schema(random.Random(5))

    def test_valid_and_label_unique(self):
        rng = random.Random(6)
        for _ in range(20):
            schema = random_schema(rng, relations=2, max_depth=3)
            for name in schema.relation_names:
                check_no_repeated_labels(schema.relation_type(name))

    def test_depth_bound(self):
        rng = random.Random(7)
        for _ in range(20):
            schema = random_schema(rng, max_depth=1)
            for name in schema.relation_names:
                assert schema.relation_type(name).depth() <= 2


class TestRandomNFDs:
    def test_well_formed(self):
        rng = random.Random(8)
        for _ in range(50):
            schema = random_schema(rng)
            nfd = random_nfd(rng, schema)
            nfd.check_well_formed(schema)

    def test_sigma_has_no_trivial_members(self):
        rng = random.Random(9)
        schema = random_schema(rng)
        sigma = random_sigma(rng, schema, count=10)
        assert all(not nfd.is_trivial() for nfd in sigma)

    def test_candidate_paths_respect_base(self):
        schema = workloads.course_schema()
        inner = candidate_paths(schema, "Course", parse_path("students"))
        assert {str(p) for p in inner} == {"sid", "age", "grade"}


class TestRandomInstances:
    def test_conform_to_schema(self):
        rng = random.Random(10)
        for _ in range(20):
            schema = random_schema(rng)
            instance = random_instance(rng, schema, tuples=2)
            assert instance_conforms(instance)

    def test_no_empty_sets_by_default(self):
        rng = random.Random(11)
        for _ in range(20):
            schema = random_schema(rng)
            instance = random_instance(rng, schema, tuples=2)
            assert not has_empty_sets(instance)

    def test_empty_probability_produces_holes(self):
        rng = random.Random(12)
        saw_empty = False
        for _ in range(30):
            schema = random_schema(rng, set_probability=0.8)
            instance = random_instance(rng, schema, tuples=3,
                                       empty_probability=0.5)
            saw_empty = saw_empty or \
                has_empty_sets(instance, include_relations=False)
        assert saw_empty

    def test_satisfying_instance_satisfies(self):
        rng = random.Random(13)
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        instance = random_satisfying_instance(rng, schema, sigma,
                                              tuples=2, domain=3)
        if instance is not None:
            assert satisfies_all_fast(instance, sigma)


class TestWorkloadCatalogue:
    @pytest.mark.parametrize("make_schema,make_sigma,make_instance", [
        (workloads.course_schema, workloads.course_sigma,
         workloads.course_instance),
        (workloads.university_schema, workloads.university_sigma,
         workloads.university_instance),
        (workloads.acedb_schema, workloads.acedb_sigma,
         workloads.acedb_instance),
        (workloads.warehouse_schema, workloads.warehouse_sigma,
         workloads.warehouse_instance),
    ])
    def test_instances_typecheck_and_satisfy(self, make_schema,
                                             make_sigma, make_instance):
        schema = make_schema()
        sigma = make_sigma()
        instance = make_instance()
        check_instance(instance)
        for nfd in sigma:
            nfd.check_well_formed(schema)
        assert satisfies_all_fast(instance, sigma)

    def test_scaled_course_instance(self):
        rng = random.Random(14)
        instance = workloads.scaled_course_instance(rng, courses=10,
                                                    students_per_course=5)
        check_instance(instance)
        assert len(instance.relation("Course")) == 10
        assert satisfies_all_fast(instance, workloads.course_sigma())

    def test_paper_fixture_shapes(self):
        assert len(workloads.figure1_instance().relation("R")) == 2
        assert len(workloads.example_3_2_instance().relation("R")) == 3
        assert len(workloads.example_a1_sigma()) == 6
        assert len(workloads.example_a2_sigma()) == 3
