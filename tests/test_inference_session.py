"""Unit tests for ImplicationSession and the Sigma fingerprint."""

import pytest

from repro.errors import InferenceError
from repro.generators import workloads
from repro.inference import (
    ClosureEngine,
    ImplicationSession,
    NonEmptySpec,
    sigma_fingerprint,
)
from repro.nfd import parse_nfd, parse_nfds
from repro.paths import parse_path
from repro.types import parse_schema


def _paths(*texts):
    return frozenset(parse_path(t) for t in texts)


@pytest.fixture
def course():
    return workloads.course_schema(), workloads.course_sigma()


class TestFingerprint:
    def test_member_order_does_not_matter(self, course):
        schema, sigma = course
        assert sigma_fingerprint(schema, sigma) == \
            sigma_fingerprint(schema, list(reversed(sigma)))

    def test_duplicate_members_collapse(self, course):
        schema, sigma = course
        assert sigma_fingerprint(schema, sigma) == \
            sigma_fingerprint(schema, sigma + [sigma[0]])

    def test_lhs_order_does_not_matter(self, course):
        schema, _ = course
        first = parse_nfd("Course:[time, students:sid -> cnum]")
        second = parse_nfd("Course:[students:sid, time -> cnum]")
        assert sigma_fingerprint(schema, [first]) == \
            sigma_fingerprint(schema, [second])

    def test_record_field_order_does_not_matter(self):
        first = parse_schema("R = {<a: string, b: int>}")
        second = parse_schema("R = {<b: int, a: string>}")
        sigma = parse_nfds("R:[a -> b]")
        assert sigma_fingerprint(first, sigma) == \
            sigma_fingerprint(second, sigma)

    def test_sigma_content_matters(self, course):
        schema, sigma = course
        assert sigma_fingerprint(schema, sigma) != \
            sigma_fingerprint(schema, sigma[:-1])

    def test_nonempty_spec_matters(self, course):
        schema, sigma = course
        gated = NonEmptySpec({parse_path("Course")})
        assert sigma_fingerprint(schema, sigma) != \
            sigma_fingerprint(schema, sigma, gated)

    def test_all_nonempty_equals_default(self, course):
        schema, sigma = course
        assert sigma_fingerprint(schema, sigma) == \
            sigma_fingerprint(schema, sigma,
                              NonEmptySpec.all_nonempty())

    def test_session_exposes_fingerprint(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        assert session.fingerprint == sigma_fingerprint(schema, sigma)
        assert session.fingerprint == \
            ImplicationSession(schema,
                               list(reversed(sigma))).fingerprint


class TestMemo:
    def test_hits_and_misses(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        first = session.closure_simple("Course", _paths("cnum"))
        again = session.closure_simple("Course", _paths("cnum"))
        assert first == again
        stats = session.stats
        assert stats.queries == 2
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.hit_rate == 0.5

    def test_seed_reuse(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        session.closure_simple("Course", _paths("cnum"))
        seeded = session.closure_simple("Course", _paths("cnum", "time"))
        assert session.stats.seed_reuses == 1
        fresh = ClosureEngine(schema, sigma)
        assert seeded == fresh.closure_simple("Course",
                                              _paths("cnum", "time"))

    def test_eviction_is_bounded_lru(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma, max_memo=2)
        session.closure_simple("Course", _paths("cnum"))
        session.closure_simple("Course", _paths("time"))
        session.closure_simple("Course", _paths("books:isbn"))
        stats = session.stats
        assert stats.evictions == 1
        assert stats.memo_size == 2
        # the evicted (oldest) query misses again; the young ones hit
        session.closure_simple("Course", _paths("books:isbn"))
        assert session.stats.hits == 1
        session.closure_simple("Course", _paths("cnum"))
        assert session.stats.misses == 4

    def test_eviction_forgets_engine_state(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma, max_memo=1)
        session.closure_simple("Course", _paths("time"))
        session.closure_simple("Course", _paths("books:title"))
        assert session.stats.evictions == 1
        assert _paths("time") not in \
            session.engine._queries["Course"]

    def test_max_memo_must_be_positive(self, course):
        schema, sigma = course
        with pytest.raises(InferenceError):
            ImplicationSession(schema, sigma, max_memo=0)

    def test_implies_matches_engine(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        engine = ClosureEngine(schema, sigma)
        for text in ["Course:[cnum -> time]",
                     "Course:[time, students:sid -> books]",
                     "Course:students:[sid -> grade]",
                     "Course:[time -> cnum]"]:
            nfd = parse_nfd(text)
            assert session.implies(nfd) == engine.implies(nfd), text

    def test_stats_text(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        session.implies(parse_nfd("Course:[cnum -> time]"))
        text = session.stats.to_text()
        assert text.startswith("session stats (fingerprint ")
        assert "engine stats (worklist strategy):" in text


class TestCopyOnWriteProbes:
    def test_without_drops_one_member(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        probe = session.without(0)
        assert list(probe.sigma) == sigma[1:]
        assert probe.engine._pool is session.engine._pool
        assert probe.fingerprint != session.fingerprint

    def test_with_added_appends(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        extra = parse_nfd("Course:[time -> cnum]")
        probe = session.with_added(extra)
        assert list(probe.sigma) == sigma + [extra]
        assert probe.engine._pool is session.engine._pool
        assert probe.implies(extra)

    def test_replaced_preserves_order(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        replacement = parse_nfd("Course:[cnum -> students]")
        probe = session.replaced(4, replacement)
        expected = list(sigma)
        expected[4] = replacement
        assert list(probe.sigma) == expected
        assert probe.engine._pool is session.engine._pool

    def test_probe_answers_match_fresh_engines(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma)
        target = parse_nfd("Course:[time, students:sid -> books]")
        for index in range(len(sigma)):
            rest = sigma[:index] + sigma[index + 1:]
            assert session.without(index).implies(target) == \
                ClosureEngine(schema, rest).implies(target), index


class TestForgetQuery:
    def test_refuses_candidate_premise_keys(self, course):
        schema, sigma = course
        engine = ClosureEngine(schema, sigma)
        engine.closure_simple("Course", _paths("cnum"))
        premises = list(engine._pool.candidate_index["Course"])
        assert premises, "course sigma should carry singleton candidates"
        for key in premises:
            assert engine.forget_query("Course", key) is False

    def test_forgets_ordinary_queries(self, course):
        schema, sigma = course
        engine = ClosureEngine(schema, sigma)
        key = _paths("time")
        engine.closure_simple("Course", key)
        assert engine.forget_query("Course", key) is True
        assert engine.forget_query("Course", key) is False


class TestStrategyAndBatches:
    def test_strategy_is_forwarded(self, course):
        schema, sigma = course
        assert ImplicationSession(schema, sigma).strategy == "worklist"
        dense = ImplicationSession(schema, sigma, strategy="dense")
        assert dense.strategy == "dense"
        assert dense.engine.strategy == "dense"

    def test_closure_batch_matches_mapped_closure(self, course):
        schema, sigma = course
        base = parse_path("Course")
        queries = [(base, _paths("cnum")),
                   (base, _paths("cnum", "time")),
                   (base, _paths("books"))]
        for strategy in ("worklist", "dense"):
            batch = ImplicationSession(schema, sigma,
                                       strategy=strategy) \
                .closure_batch(queries)
            fresh = ImplicationSession(schema, sigma, strategy=strategy)
            assert batch == [fresh.closure(b, lhs) for b, lhs in queries]

    def test_covers_batch_matches_membership(self, course):
        schema, sigma = course
        base = parse_path("Course")
        candidates = [_paths("cnum"), _paths("time")]
        targets = _paths("time", "books")
        for strategy in ("worklist", "dense"):
            session = ImplicationSession(schema, sigma,
                                         strategy=strategy)
            fresh = ImplicationSession(schema, sigma, strategy=strategy)
            assert session.covers_batch(base, candidates, targets) == [
                targets <= fresh.closure(base, c) for c in candidates
            ]

    def test_implies_all_matches_per_member(self, course):
        schema, sigma = course
        session = ImplicationSession(schema, sigma, strategy="dense")
        assert session.implies_all(sigma)
        bogus = parse_nfd("Course:[time -> cnum]")
        assert session.implies_all(list(sigma) + [bogus]) == \
            all(ImplicationSession(schema, sigma).implies(nfd)
                for nfd in list(sigma) + [bogus])

    def test_diff_mismatch_names_snapshot_misuse(self, course):
        schema, sigma = course
        mine = ImplicationSession(schema, sigma).snapshot()
        other = ImplicationSession(schema, sigma[:-1]).snapshot()
        with pytest.raises(InferenceError,
                           match=r"snapshot\(\) calls taken from the "
                                 r"\*same\* session"):
            mine.diff(other)
