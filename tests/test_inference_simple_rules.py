"""Unit tests for the six-rule simple system (full-locality)."""

import pytest

from repro.errors import RuleApplicationError
from repro.generators import workloads
from repro.inference import (
    ClosureEngine,
    full_locality,
    to_simple_system,
)
from repro.nfd import parse_nfd
from repro.paths import parse_path


class TestFullLocality:
    def test_example_3_1(self):
        f1 = workloads.example_3_1_nfd()  # R:[A:B:C, A:D -> A:B:E]
        concluded = full_locality(f1, parse_path("A:B"))
        assert concluded == parse_nfd("R:[A:B, A:B:C -> A:B:E]")

    def test_one_level(self):
        f1 = workloads.example_3_1_nfd()
        concluded = full_locality(f1, parse_path("A"))
        assert concluded == parse_nfd("R:[A, A:B:C, A:D -> A:B:E]")

    def test_x_must_prefix_rhs(self):
        with pytest.raises(RuleApplicationError):
            full_locality(parse_nfd("R:[A:B -> A:C]"), parse_path("Q"))
        with pytest.raises(RuleApplicationError):
            full_locality(parse_nfd("R:[A:B -> A:C]"), parse_path("A:C"))

    def test_x_must_be_nonempty(self):
        from repro.paths import EPSILON
        with pytest.raises(RuleApplicationError):
            full_locality(parse_nfd("R:[A:B -> A:C]"), EPSILON)

    def test_drops_unrelated_deep_paths(self):
        concluded = full_locality(parse_nfd("R:[Q:Z, A:B -> A:C]"),
                                  parse_path("A"))
        assert concluded == parse_nfd("R:[A, A:B -> A:C]")


class TestSimpleSystem:
    def test_conversion(self):
        sigma = workloads.section_3_1_sigma()
        simple = to_simple_system(sigma)
        assert all(nfd.is_simple for nfd in simple)

    def test_conversion_preserves_implication(self):
        schema = workloads.section_3_1_schema()
        sigma = workloads.section_3_1_sigma()
        original = ClosureEngine(schema, sigma)
        converted = ClosureEngine(schema, to_simple_system(sigma))
        for text in ["R:A:[B -> E]", "R:[A, A:E -> A:E:F]",
                     "R:A:[E -> B]", "R:[D -> A]"]:
            nfd = parse_nfd(text)
            assert original.implies(nfd) == converted.implies(nfd), text

    def test_full_locality_results_are_sound(self):
        # everything full-locality derives is implied by the engine
        schema = workloads.example_3_1_schema()
        f1 = workloads.example_3_1_nfd()
        engine = ClosureEngine(schema, [f1])
        for x_text in ["A", "A:B"]:
            concluded = full_locality(f1, parse_path(x_text))
            assert engine.implies(concluded), concluded
