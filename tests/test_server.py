"""Unit tests for the daemon's components: protocol, pool, lifecycle.

The differential and fault suites drive the server end-to-end (and
partly out-of-process); these tests pin the pieces in isolation —
frame codec edge cases, bundle parsing, LRU eviction with monotone
retired counters, build coalescing, closure batching, the foreground
``run_server`` loop, and the ``repro serve`` command itself.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.generators import workloads
from repro.io import dump_bundle
from repro.server import (BackgroundServer, EnginePool, ReproClient,
                          ReproServer, ServerConfig, run_server)
from repro.server.protocol import (PROTOCOL_VERSION, ProtocolError,
                                   decode_line, encode,
                                   error_response, ok_response,
                                   parse_bundle_payload)

TIMEOUT = 10.0


def _bundle_dict(**extra) -> dict:
    payload = json.loads(dump_bundle(workloads.course_schema(),
                                     workloads.course_sigma(),
                                     workloads.course_instance()))
    payload.update(extra)
    return payload


# ---------------------------------------------------------------- protocol


class TestProtocol:
    def test_encode_is_one_compact_line(self):
        data = encode({"b": 1, "a": [2, 3]})
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert data == b'{"a":[2,3],"b":1}\n'

    def test_decode_roundtrip(self):
        request = {"id": 7, "type": "ping"}
        assert decode_line(encode(request)) == request

    @pytest.mark.parametrize(("line", "code"), [
        (b"\xff\xfe\n", "bad_json"),
        (b"{not json}\n", "bad_json"),
        (b"[1]\n", "bad_request"),
        (b'{"id": 1.5, "type": "ping"}\n', "bad_request"),
        (b'{"id": 1}\n', "bad_request"),
        (b'{"id": 1, "type": 9}\n', "bad_request"),
    ], ids=["utf8", "syntax", "non-object", "float-id", "no-type",
            "non-string-type"])
    def test_decode_failures_are_typed(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(line)
        assert excinfo.value.code == code

    def test_response_shapes(self):
        ok = ok_response(3, "ping", {"pong": True})
        assert ok["ok"] is True and ok["id"] == 3
        err = error_response(None, "overloaded", "busy",
                             retry_after_ms=9)
        assert err["ok"] is False and err["retry_after_ms"] == 9

    def test_parse_bundle_variants(self):
        schema, sigma, instance, spec = \
            parse_bundle_payload(_bundle_dict())
        assert instance is not None and spec is None
        assert len(sigma) == len(workloads.course_sigma())
        _, _, _, spec = parse_bundle_payload(_bundle_dict(nonempty="*"))
        assert spec.declares_everything
        _, _, _, spec = parse_bundle_payload(
            _bundle_dict(nonempty=["Course:students"]))
        assert not spec.declares_everything

    @pytest.mark.parametrize("payload", [
        "not an object",
        {"nfds": []},
        {"schema": {"R": "not a type"}},
        _bundle_dict(nonempty=7),
        _bundle_dict(nfds=["R:[nonsense"]),
    ], ids=["non-object", "no-schema", "bad-schema", "bad-nonempty",
            "bad-nfd"])
    def test_parse_bundle_failures(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            parse_bundle_payload(payload)
        assert excinfo.value.code == "invalid_bundle"


# -------------------------------------------------------------------- pool


def _parsed_universe(count=2):
    schema, sigma, instance, spec = \
        parse_bundle_payload(_bundle_dict())
    return schema, sigma[:count], spec


class TestEnginePool:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            EnginePool(max_entries=0)

    def test_hit_miss_and_order_sensitivity(self):
        pool = EnginePool(max_entries=4)
        schema, sigma, spec = _parsed_universe()
        first = pool.entry_for(schema, sigma, spec)
        again = pool.entry_for(schema, sigma, spec)
        assert first is again
        assert pool.stats.hits == 1 and pool.stats.misses == 1
        # same logical Sigma, different member order: same fingerprint,
        # different pool entry (plan/witness order depends on it)
        reordered = pool.entry_for(schema, list(reversed(sigma)), spec)
        assert reordered is not first
        assert reordered.fingerprint == first.fingerprint
        assert reordered.key != first.key

    def test_eviction_keeps_totals_monotone(self):
        async def scenario():
            pool = EnginePool(max_entries=1)
            schema, sigma, spec = _parsed_universe()
            entry = pool.entry_for(schema, sigma, spec)
            session = await pool.session_for(entry, "worklist")
            session.closure_simple("Course", frozenset())
            before = pool.engine_totals()
            assert before["closure_queries"] == 1
            # a second fingerprint evicts the first (capacity 1)...
            pool.entry_for(schema, sigma[:1], spec)
            assert pool.stats.evictions == 1 and len(pool) == 1
            # ...but its counters survive in the retired totals
            after = pool.engine_totals()
            assert after["closure_queries"] == 1
            assert after["rule_attempts"] >= before["rule_attempts"]
            return pool.as_metrics()

        metrics = asyncio.run(scenario())
        assert metrics["entries"] == 1 and metrics["evictions"] == 1

    def test_concurrent_builds_coalesce(self):
        async def scenario():
            pool = EnginePool(max_entries=4)
            schema, sigma, spec = _parsed_universe()
            entry = pool.entry_for(schema, sigma, spec)
            sessions = await asyncio.gather(
                pool.session_for(entry, "worklist"),
                pool.session_for(entry, "worklist"),
                pool.session_for(entry, "worklist"))
            assert sessions[0] is sessions[1] is sessions[2]
            assert pool.stats.session_builds == 1
            assert pool.stats.coalesced_builds == 2
            validator = await pool.validator_for(entry)
            assert (await pool.validator_for(entry)) is validator
            assert pool.stats.validator_builds == 1

        asyncio.run(scenario())

    def test_batcher_coalesces_queued_queries(self):
        async def scenario():
            pool = EnginePool(max_entries=4)
            schema, sigma, spec = _parsed_universe()
            entry = pool.entry_for(schema, sigma, spec)
            batcher = await pool.batcher_for(entry, "worklist")
            assert (await pool.batcher_for(entry, "worklist")) \
                is batcher
            from repro.paths import Path
            base = Path(("Course",))
            answers = await asyncio.gather(*[
                batcher.closure(base, frozenset())
                for _ in range(5)])
            assert len({frozenset(a) for a in answers}) == 1
            assert pool.stats.batches >= 1
            assert pool.stats.batched_queries == 5
            # queued concurrently -> fewer batches than queries
            assert pool.stats.batches < 5

        asyncio.run(scenario())


# ------------------------------------------------------------ server bits


class TestServerLifecycle:
    @pytest.mark.parametrize("kwargs", [
        {"max_sessions": 0}, {"max_inflight": 0}, {"max_pending": -1},
        {"connection_deadline": -1.0}, {"port": 70000},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ReproError):
            ReproServer(ServerConfig(**kwargs))

    def test_background_server_startup_error_propagates(self):
        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            taken = holder.getsockname()[1]
            bg = BackgroundServer(ServerConfig(port=taken))
            with pytest.raises(ReproError, match="failed to start"):
                bg.start()

    def test_run_server_foreground_with_remote_shutdown(self):
        """The foreground loop: ready callback, serve, clean report."""
        config = ServerConfig(allow_shutdown=True)
        ready = threading.Event()
        endpoint = {}

        def announce(server):
            endpoint["host"], endpoint["port"] = \
                server.host, server.port
            ready.set()

        result = {}

        def serve():
            result["report"] = run_server(config, ready=announce)

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(TIMEOUT), "run_server never became ready"
        with ReproClient(endpoint["host"], endpoint["port"],
                         timeout=TIMEOUT) as client:
            assert client.ping()["pong"] is True
            assert client.shutdown()["stopping"] is True
        thread.join(TIMEOUT)
        assert not thread.is_alive()
        metrics = result["report"].as_dict()
        assert metrics["sections"]["server"]["requests"] >= 3

    def test_cache_dir_write_through_warms_restarts(self, tmp_path):
        """Two daemon generations over one --cache-dir: the second
        answers from the persistent store instead of re-saturating."""
        cache_dir = str(tmp_path / "cache")
        bundle = _bundle_dict()
        nfd = str(workloads.course_sigma()[0])

        config = ServerConfig(cache_dir=cache_dir)
        with BackgroundServer(config) as bg:
            with ReproClient(bg.host, bg.port,
                             timeout=TIMEOUT) as client:
                assert client.implies(bundle, nfd) is True
                report = bg.server.report().as_dict()
        assert "cache" in report["sections"]

        with BackgroundServer(ServerConfig(cache_dir=cache_dir)) as bg:
            with ReproClient(bg.host, bg.port,
                             timeout=TIMEOUT) as client:
                assert client.implies(bundle, nfd) is True
                engines = client.stats()["pool"]["engines"]
        assert engines["store_hits"] > 0

    def test_debug_sleep_requires_flag(self):
        """Without --allow-debug a sleeping ping is an ordinary ping."""
        with BackgroundServer(ServerConfig()) as bg:
            with ReproClient(bg.host, bg.port,
                             timeout=TIMEOUT) as client:
                started = time.monotonic()
                assert client.ping(sleep_ms=5000)["pong"] is True
                assert time.monotonic() - started < 2.0

    def test_strategies_shared_per_entry(self):
        """One entry serves both strategies; answers agree."""
        bundle = _bundle_dict()
        nfd = "Course:[students:sid, time -> books]"
        with BackgroundServer(ServerConfig()) as bg:
            with ReproClient(bg.host, bg.port,
                             timeout=TIMEOUT) as client:
                for strategy in ("worklist", "dense", "naive"):
                    assert client.implies(bundle, nfd,
                                          strategy=strategy) is True
                pool = client.stats()["pool"]
        assert pool["entries"] == 1
        assert pool["session_builds"] == 3


# --------------------------------------------------------------- the CLI


def test_cli_serve_end_to_end(tmp_path, capsys):
    """``repro serve`` in-process: readiness line, remote shutdown,
    exit 0, metrics written."""
    metrics_path = tmp_path / "serve-metrics.json"
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    result = {}

    def serve():
        result["code"] = main([
            "serve", "--port", str(port), "--allow-shutdown",
            "--metrics-json", str(metrics_path)])

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    client = None
    deadline = time.monotonic() + TIMEOUT
    while client is None:
        assert time.monotonic() < deadline, "daemon never listened"
        try:
            client = ReproClient("127.0.0.1", port, timeout=TIMEOUT)
        except ReproError:
            time.sleep(0.05)
    with client:
        assert client.server_info["protocol"] == PROTOCOL_VERSION
        assert client.ping()["pong"] is True
    with ReproClient("127.0.0.1", port, timeout=TIMEOUT) as client:
        client.shutdown()
    thread.join(TIMEOUT)
    assert not thread.is_alive() and result["code"] == 0
    out = capsys.readouterr().out
    assert f"repro daemon listening on 127.0.0.1:{port}" in out
    assert "repro daemon stopped" in out
    report = json.loads(metrics_path.read_text())
    assert report["sections"]["server"]["requests"] >= 2
