"""The CLI's exit-code contract, table-driven across every subcommand.

The contract is three-valued and uniform:

* ``0`` — the command succeeded and the property *holds* (instance
  satisfies Sigma, NFD implied, sets equivalent, countermodel built);
* ``1`` — the command succeeded and the property *fails* (violations
  found, NFD not implied, sets differ, no countermodel because the
  candidate is implied);
* ``2`` — the command could not run: usage errors, unreadable or
  ill-formed bundles, bad parameters, unreachable servers.

Scripts branch on these numbers, so each row here pins one
``(argv, exit code)`` pair — including the ``serve`` / ``client``
error paths and the ``--server`` passthrough, whose codes must match
the in-process ones exactly.
"""

import socket

import pytest

from repro.cli import main
from repro.generators import workloads
from repro.io import dump_bundle
from repro.server import BackgroundServer, ServerConfig

IMPLIED = "Course:[students:sid, time -> books]"
NOT_IMPLIED = "Course:[time -> cnum]"


def run(argv) -> int:
    """``main`` plus argparse's own SystemExit(2) usage failures."""
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code


@pytest.fixture
def good(tmp_path):
    path = tmp_path / "good.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma(),
                                workloads.course_instance()))
    return str(path)


@pytest.fixture
def broken(tmp_path):
    instance = workloads.course_instance().with_relation("Course", [
        {"cnum": "a", "time": 1,
         "students": [{"sid": 1, "age": 20, "grade": "A"}],
         "books": [{"isbn": 1, "title": "X"}]},
        {"cnum": "b", "time": 2,
         "students": [{"sid": 1, "age": 99, "grade": "A"}],
         "books": [{"isbn": 1, "title": "X"}]},
    ])
    path = tmp_path / "broken.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma(), instance))
    return str(path)


@pytest.fixture
def weaker(tmp_path):
    """The course constraints minus one member: diff -> not equivalent."""
    path = tmp_path / "weaker.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma()[1:]))
    return str(path)


@pytest.fixture
def no_instance(tmp_path):
    path = tmp_path / "sigma_only.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma()))
    return str(path)


@pytest.fixture
def missing(tmp_path):
    return str(tmp_path / "does_not_exist.json")


@pytest.fixture
def dead_port():
    """A port that was just bound and released: connection refused."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# Each row: (case id, argv template, expected exit code).  Templates
# name fixtures in braces; ``_argv`` substitutes the per-test paths.
TABLE = [
    # -- exit 0: success, property holds ------------------------------
    ("check-clean", ["check", "{good}"], 0),
    ("implies-implied", ["implies", "{good}", IMPLIED], 0),
    ("closure", ["closure", "{good}", "Course", "cnum"], 0),
    ("explain-implied", ["explain", "{good}", IMPLIED], 0),
    ("prove-implied", ["prove", "{good}", IMPLIED], 0),
    ("counter-not-implied", ["counter", "{good}", NOT_IMPLIED], 0),
    ("render", ["render", "{good}"], 0),
    ("keys", ["keys", "{good}", "Course"], 0),
    ("diff-equivalent", ["diff", "{good}", "{good}"], 0),
    ("analyze", ["analyze", "{good}"], 0),
    ("report", ["report", "{good}"], 0),
    ("repair-clean", ["repair", "{good}"], 0),
    ("normalize-bundle", ["normalize", "{good}"], 0),
    ("normalize-sweep", ["normalize", "--sweep", "4",
                         "--jobs", "2"], 0),
    # -- exit 1: success, property fails ------------------------------
    ("check-violations", ["check", "{broken}"], 1),
    ("implies-not-implied", ["implies", "{good}", NOT_IMPLIED], 1),
    ("explain-not-implied", ["explain", "{good}", NOT_IMPLIED], 1),
    ("prove-not-implied", ["prove", "{good}", NOT_IMPLIED], 1),
    ("counter-implied", ["counter", "{good}", IMPLIED], 1),
    ("diff-weaker", ["diff", "{good}", "{weaker}"], 1),
    ("normalize-gate-miss", ["normalize", "--sweep", "2",
                             "--min-preserved", "1.01"], 1),
    # -- exit 2: could not run ----------------------------------------
    ("missing-bundle", ["check", "{missing}"], 2),
    ("check-no-instance", ["check", "{no_instance}"], 2),
    ("implies-bad-nfd", ["implies", "{good}", "not an nfd"], 2),
    ("closure-bad-path", ["closure", "{good}", "No:Such:::Path!"], 2),
    ("keys-unknown-relation", ["keys", "{good}", "NoSuchRel"], 2),
    ("cache-no-dir", ["cache", "stats"], 2),
    ("unknown-subcommand", ["frobnicate"], 2),
    ("missing-argument", ["implies", "{good}"], 2),
    ("bad-strategy", ["implies", "{good}", IMPLIED,
                      "--strategy", "quantum"], 2),
    ("normalize-no-input", ["normalize"], 2),
    ("normalize-bad-sweep", ["normalize", "--sweep", "0"], 2),
    ("normalize-bad-relation", ["normalize", "{good}",
                                "--relation", "NoSuchRel"], 2),
    # -- serve / client error paths -----------------------------------
    ("serve-bad-inflight", ["serve", "--max-inflight", "0"], 2),
    ("serve-bad-port", ["serve", "--port", "99999"], 2),
    ("client-bad-endpoint", ["client", "ping",
                             "--server", "nonsense"], 2),
    ("client-no-endpoint", ["client", "ping"], 2),
    ("client-refused", ["client", "ping",
                        "--server", "127.0.0.1:{dead_port}"], 2),
    ("implies-server-refused", ["implies", "{good}", IMPLIED,
                                "--server", "127.0.0.1:{dead_port}"],
     2),
    ("check-stream-plus-server", ["check", "{good}",
                                  "--stream", "{missing}",
                                  "--server", "127.0.0.1:{dead_port}"],
     2),
]


@pytest.mark.parametrize(("case", "template", "expected"), TABLE,
                         ids=[row[0] for row in TABLE])
def test_exit_code(case, template, expected, good, broken, weaker,
                   no_instance, missing, dead_port, capsys):
    values = {"good": good, "broken": broken, "weaker": weaker,
              "no_instance": no_instance, "missing": missing,
              "dead_port": str(dead_port)}
    argv = [arg.format(**values) for arg in template]
    assert run(argv) == expected, argv


# -- the --server passthrough mirrors in-process codes exactly ---------


@pytest.fixture(scope="module")
def live_server():
    with BackgroundServer(ServerConfig()) as bg:
        yield f"{bg.host}:{bg.port}"


SERVER_TABLE = [
    ("check-clean", ["check", "{good}"], 0),
    ("check-violations", ["check", "{broken}"], 1),
    ("implies-implied", ["implies", "{good}", IMPLIED], 0),
    ("implies-not-implied", ["implies", "{good}", NOT_IMPLIED], 1),
    ("implies-bad-nfd", ["implies", "{good}", "not an nfd"], 2),
    ("closure", ["closure", "{good}", "Course", "cnum"], 0),
    ("keys", ["keys", "{good}", "Course"], 0),
    ("check-no-instance", ["check", "{no_instance}"], 2),
]


@pytest.mark.parametrize(("case", "template", "expected"), SERVER_TABLE,
                         ids=[row[0] for row in SERVER_TABLE])
def test_server_passthrough_exit_code(case, template, expected,
                                      live_server, good, broken,
                                      no_instance, capsys):
    values = {"good": good, "broken": broken,
              "no_instance": no_instance}
    argv = [arg.format(**values) for arg in template]
    assert run(argv + ["--server", live_server]) == expected, argv
    # and the code agrees with the in-process run of the same argv
    capsys.readouterr()
    assert run(argv) == expected, argv


def test_client_verbs_against_live_server(good, capsys):
    config = ServerConfig(allow_shutdown=True)
    with BackgroundServer(config) as bg:
        endpoint = f"{bg.host}:{bg.port}"
        assert run(["client", "ping", "--server", endpoint]) == 0
        assert "pong" in capsys.readouterr().out
        assert run(["client", "stats", "--server", endpoint]) == 0
        assert '"requests"' in capsys.readouterr().out
        assert run(["client", "shutdown", "--server", endpoint]) == 0
        assert "stopping" in capsys.readouterr().out


def test_shutdown_refused_maps_to_exit_2(capsys):
    with BackgroundServer(ServerConfig()) as bg:
        endpoint = f"{bg.host}:{bg.port}"
        assert run(["client", "shutdown", "--server", endpoint]) == 2
        assert "shutdown_disabled" in capsys.readouterr().err
