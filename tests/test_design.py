"""Unit tests for BCNF decomposition, preservation, and nest plans."""

import random

import pytest

from repro.chase import lossless_join
from repro.design import (
    DependencyPlacement,
    NestPlan,
    bcnf_decompose,
    bcnf_violations,
    is_bcnf,
    is_superkey,
    preserves_dependencies,
    project_fds,
    unpreserved_fds,
)
from repro.errors import InferenceError
from repro.inference import FD
from repro.nfd import parse_nfd, satisfies_all_fast
from repro.paths import parse_path
from repro.types import parse_schema
from repro.values import Instance


class TestBCNF:
    ATTRS = ["A", "B", "C"]

    def test_superkey(self):
        fds = [FD({"A"}, "B"), FD({"A"}, "C")]
        assert is_superkey(self.ATTRS, fds, {"A"})
        assert not is_superkey(self.ATTRS, fds, {"B"})

    def test_violations(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        violations = bcnf_violations(self.ATTRS, fds)
        assert FD({"B"}, "C") in violations
        assert FD({"A"}, "B") not in violations  # A is a key

    def test_is_bcnf(self):
        assert is_bcnf(self.ATTRS, [FD({"A"}, "B"), FD({"A"}, "C")])
        assert not is_bcnf(self.ATTRS, [FD({"B"}, "C")])

    def test_decompose_textbook(self):
        # R(A,B,C) with B -> C: split into BC and AB.
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        components = bcnf_decompose(self.ATTRS, fds)
        as_sets = {frozenset(c) for c in components}
        assert as_sets == {frozenset({"A", "B"}), frozenset({"B", "C"})}

    def test_decomposition_is_lossless(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        components = bcnf_decompose(self.ATTRS, fds)
        assert lossless_join(self.ATTRS, components, fds)

    def test_decomposition_components_are_bcnf(self):
        attrs = ["A", "B", "C", "D"]
        fds = [FD({"A"}, "B"), FD({"B"}, "C"), FD({"C"}, "D")]
        components = bcnf_decompose(attrs, fds)
        for component in components:
            local = project_fds(attrs, fds, component)
            assert is_bcnf(component, local), component

    def test_already_bcnf_is_untouched(self):
        fds = [FD({"A"}, "B"), FD({"A"}, "C")]
        assert bcnf_decompose(self.ATTRS, fds) == [("A", "B", "C")]

    def test_randomized_lossless_and_bcnf(self):
        rng = random.Random(5)
        attrs = ["A", "B", "C", "D", "E"]
        for _ in range(20):
            fds = [
                FD(set(rng.sample(attrs, rng.randint(1, 2))),
                   rng.choice(attrs))
                for _ in range(rng.randint(1, 4))
            ]
            components = bcnf_decompose(attrs, fds)
            assert lossless_join(attrs, components, fds), (fds, components)
            for component in components:
                local = project_fds(attrs, fds, component)
                assert is_bcnf(component, local), (fds, component)


class TestProjection:
    def test_transitive_projection(self):
        attrs = ["A", "B", "C"]
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        projected = project_fds(attrs, fds, ["A", "C"])
        assert any(fd.lhs == frozenset({"A"}) and fd.rhs == "C"
                   for fd in projected)


class TestPreservation:
    ATTRS = ["A", "B", "C"]

    def test_preserving_decomposition(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        assert preserves_dependencies(
            self.ATTRS, fds, [["A", "B"], ["B", "C"]])

    def test_classic_non_preserving(self):
        # R(A,B,C) with AB -> C and C -> B; BCNF split on C -> B loses
        # AB -> C.
        fds = [FD({"A", "B"}, "C"), FD({"C"}, "B")]
        decomposition = [["C", "B"], ["A", "C"]]
        lost = unpreserved_fds(self.ATTRS, fds, decomposition)
        assert FD({"A", "B"}, "C") in lost
        assert not preserves_dependencies(self.ATTRS, fds, decomposition)


class TestNestPlan:
    def test_attribute_paths(self):
        plan = NestPlan("Course", ["cnum", "time", "sid", "grade"])
        plan.nest("students", ["sid", "grade"])
        paths = plan.attribute_paths()
        assert paths["cnum"] == parse_path("cnum")
        assert paths["sid"] == parse_path("students:sid")

    def test_two_level_plan(self):
        plan = NestPlan("R", ["a", "b", "c"])
        plan.nest("inner", ["c"]).nest("outer", ["b", "inner"])
        paths = plan.attribute_paths()
        assert paths["c"] == parse_path("outer:inner:c")
        assert paths["b"] == parse_path("outer:b")
        assert paths["a"] == parse_path("a")

    def test_bad_step_rejected(self):
        plan = NestPlan("R", ["a", "b"])
        plan.nest("n", ["z"])
        with pytest.raises(InferenceError):
            plan.attribute_paths()

    def test_apply_instance(self):
        schema = parse_schema(
            "Course = {<cnum: string, time: int, sid: int, "
            "grade: string>}")
        flat = Instance(schema, {"Course": [
            {"cnum": "a", "time": 1, "sid": 1, "grade": "A"},
            {"cnum": "a", "time": 1, "sid": 2, "grade": "B"},
        ]})
        plan = NestPlan("Course", ["cnum", "time", "sid", "grade"])
        plan.nest("students", ["sid", "grade"])
        nested = plan.apply_instance(flat)
        assert len(nested.relation("Course")) == 1
        element = next(iter(nested.relation("Course")))
        assert len(element.get("students")) == 2

    def test_report_classification(self):
        schema = parse_schema(
            "Course = {<cnum: string, time: int, sid: int, "
            "grade: string>}")
        plan = NestPlan("Course", ["cnum", "time", "sid", "grade"])
        plan.nest("students", ["sid", "grade"])
        fds = [FD({"cnum"}, "time"),        # top-level
               FD({"sid"}, "grade"),        # intra-set
               FD({"cnum"}, "grade")]       # inter-set
        report = plan.report(schema.relation_type("Course"), fds)
        kinds = {str(p.fd): p.kind for p in report.placements}
        assert kinds["FD(cnum -> time)"] == DependencyPlacement.TOP
        assert kinds["FD(sid -> grade)"] == DependencyPlacement.INTRA
        assert kinds["FD(cnum -> grade)"] == DependencyPlacement.INTER
        intra = report.by_kind(DependencyPlacement.INTRA)[0]
        assert intra.local_base == parse_path("Course:students")
        assert intra.nfd == parse_nfd(
            "Course:[students:sid -> students:grade]")

    def test_structural_nfds(self):
        schema = parse_schema(
            "Course = {<cnum: string, time: int, sid: int, "
            "grade: string>}")
        plan = NestPlan("Course", ["cnum", "time", "sid", "grade"])
        plan.nest("students", ["sid", "grade"])
        report = plan.report(schema.relation_type("Course"), [])
        assert report.structural_nfds() == [
            parse_nfd("Course:[cnum, time -> students]")]

    def test_structural_nfds_hold_on_any_nest_output(self):
        import random
        schema = parse_schema("R = {<a, b, c>}")
        plan = NestPlan("R", ["a", "b", "c"]).nest("n", ["c"])
        report = plan.report(schema.relation_type("R"), [])
        rng = random.Random(3)
        for _ in range(10):
            rows = [{"a": rng.randrange(2), "b": rng.randrange(2),
                     "c": rng.randrange(2)} for _ in range(5)]
            flat = Instance(schema, {"R": rows})
            nested = plan.apply_instance(flat)
            assert satisfies_all_fast(nested, report.structural_nfds())

    def test_local_enforceability_reproduces_examples_2_3_and_2_4(self):
        """The paper's local grade (Ex. 2.3) vs global age (Ex. 2.4)
        distinction, derived automatically from the flat FDs."""
        schema = parse_schema(
            "Course = {<cnum: string, time: int, sid: int, age: int, "
            "grade: string>}")
        plan = NestPlan("Course", ["cnum", "time", "sid", "age",
                                   "grade"])
        plan.nest("students", ["sid", "age", "grade"])
        fds = [FD({"cnum"}, "time"),
               FD({"sid"}, "age"),
               FD({"cnum", "sid"}, "grade")]
        report = plan.report(schema.relation_type("Course"), fds)
        by_fd = {str(p.fd): p for p in report.placements}
        grade = by_fd["FD(cnum, sid -> grade)"]
        age = by_fd["FD(sid -> age)"]
        # grade checks per course — the paper's Example 2.3 local NFD
        assert report.locally_enforceable(grade)
        assert report.local_form(grade) == parse_nfd(
            "Course:students:[sid -> grade]")
        # age needs the global Example 2.4 NFD
        assert not report.locally_enforceable(age)
        assert report.local_form(age) == parse_nfd(
            "Course:students:[sid -> age]")

    def test_multi_step_structural_paths(self):
        schema = parse_schema("R = {<a, b, c>}")
        plan = NestPlan("R", ["a", "b", "c"])
        plan.nest("inner", ["c"]).nest("outer", ["b", "inner"])
        report = plan.report(schema.relation_type("R"), [])
        structural = {str(nfd) for nfd in report.structural_nfds()}
        # step 1 grouped by {a, b}; b is now nested under outer
        assert "R:[a, outer:b -> outer:inner]" in structural
        # step 2 grouped by {a}
        assert "R:[a -> outer]" in structural

    def test_carried_nfds_hold_on_nested_data(self):
        schema = parse_schema(
            "Course = {<cnum: string, time: int, sid: int, "
            "grade: string>}")
        flat = Instance(schema, {"Course": [
            {"cnum": "a", "time": 1, "sid": 1, "grade": "A"},
            {"cnum": "b", "time": 2, "sid": 1, "grade": "A"},
        ]})
        plan = NestPlan("Course", ["cnum", "time", "sid", "grade"])
        plan.nest("students", ["sid", "grade"])
        fds = [FD({"cnum"}, "time"), FD({"sid"}, "grade")]
        nested = plan.apply_instance(flat)
        report = plan.report(schema.relation_type("Course"), fds)
        assert satisfies_all_fast(nested, report.nfds())
