"""Unit tests for the eight rules as syntactic objects."""

import pytest

from repro.errors import RuleApplicationError
from repro.inference import rules
from repro.nfd import parse_nfd
from repro.paths import parse_path
from repro.types import parse_schema


class TestReflexivity:
    def test_member(self):
        concluded = rules.reflexivity(
            parse_path("R"), [parse_path("A"), parse_path("B")],
            parse_path("A"))
        assert concluded == parse_nfd("R:[A, B -> A]")

    def test_non_member_rejected(self):
        with pytest.raises(RuleApplicationError):
            rules.reflexivity(parse_path("R"), [parse_path("A")],
                              parse_path("B"))


class TestAugmentation:
    def test_adds_paths(self):
        concluded = rules.augmentation(parse_nfd("R:[A -> B]"),
                                       [parse_path("C")])
        assert concluded == parse_nfd("R:[A, C -> B]")


class TestTransitivity:
    def test_classic_chain(self):
        p1 = parse_nfd("R:[A -> B]")
        bridge = parse_nfd("R:[B -> C]")
        assert rules.transitivity([p1], bridge) == parse_nfd("R:[A -> C]")

    def test_multi_path_bridge(self):
        premises = [parse_nfd("R:[A -> B]"), parse_nfd("R:[A -> C]")]
        bridge = parse_nfd("R:[B, C -> D]")
        assert rules.transitivity(premises, bridge) == \
            parse_nfd("R:[A -> D]")

    def test_bridge_paths_in_x_allowed_via_reflexivity(self):
        premises = [parse_nfd("R:[A, B -> C]")]
        bridge = parse_nfd("R:[B, C -> D]")  # B is in X itself
        assert rules.transitivity(premises, bridge) == \
            parse_nfd("R:[A, B -> D]")

    def test_mismatched_lhs_rejected(self):
        with pytest.raises(RuleApplicationError):
            rules.transitivity(
                [parse_nfd("R:[A -> B]"), parse_nfd("R:[C -> D]")],
                parse_nfd("R:[B, D -> E]"))

    def test_mismatched_base_rejected(self):
        with pytest.raises(RuleApplicationError):
            rules.transitivity([parse_nfd("R:[A -> B]")],
                               parse_nfd("R:A:[B -> C]"))

    def test_underivable_bridge_path_rejected(self):
        with pytest.raises(RuleApplicationError):
            rules.transitivity([parse_nfd("R:[A -> B]")],
                               parse_nfd("R:[B, Z -> C]"))

    def test_requires_premises(self):
        with pytest.raises(RuleApplicationError):
            rules.transitivity([], parse_nfd("R:[∅ -> C]"))


class TestPushInPullOut:
    def test_push_in(self):
        assert rules.push_in(parse_nfd("R:A:[B -> C]")) == \
            parse_nfd("R:[A, A:B -> A:C]")

    def test_pull_out(self):
        assert rules.pull_out(parse_nfd("R:[A, A:B -> A:C]")) == \
            parse_nfd("R:A:[B -> C]")

    def test_errors_are_rule_errors(self):
        with pytest.raises(RuleApplicationError):
            rules.push_in(parse_nfd("R:[A -> B]"))
        with pytest.raises(RuleApplicationError):
            rules.pull_out(parse_nfd("R:[A -> B]"))


class TestLocality:
    def test_paper_step_one(self):
        # locality of nfd1: R:[A:B:C, D -> A:E:F] => R:A:[B:C -> E:F]
        concluded = rules.locality(parse_nfd("R:[A:B:C, D -> A:E:F]"))
        assert concluded == parse_nfd("R:A:[B:C -> E:F]")

    def test_single_labels_dropped(self):
        concluded = rules.locality(parse_nfd("R:[A:X, B, C -> A:z]"))
        assert concluded == parse_nfd("R:A:[X -> z]")

    def test_deep_lhs_outside_a_rejected(self):
        # Example 3.1's point: locality cannot drop A:D when localizing
        # at A:B... here: localizing at Q, the path B:C blocks.
        with pytest.raises(RuleApplicationError):
            rules.locality(parse_nfd("R:[B:C -> Q:F]"))

    def test_rhs_must_be_nested(self):
        with pytest.raises(RuleApplicationError):
            rules.locality(parse_nfd("R:[A:B -> D]"))


class TestSingleton:
    def test_paper_step_seven(self, section_3_1_engine):
        schema = section_3_1_engine.schema
        premises = [parse_nfd("R:A:[E -> E:F]"), parse_nfd("R:A:[E -> E:G]")]
        concluded = rules.singleton(premises, schema)
        assert concluded == parse_nfd("R:A:[E:F, E:G -> E]")

    def test_missing_attribute_rejected(self, section_3_1_engine):
        schema = section_3_1_engine.schema
        with pytest.raises(RuleApplicationError) as excinfo:
            rules.singleton([parse_nfd("R:A:[E -> E:F]")], schema)
        assert "G" in str(excinfo.value)

    def test_wrong_premise_shape_rejected(self, section_3_1_engine):
        schema = section_3_1_engine.schema
        with pytest.raises(RuleApplicationError):
            rules.singleton([parse_nfd("R:A:[E, B -> E:F]")], schema)

    def test_non_set_x_rejected(self):
        schema = parse_schema("R = {<A, B>}")
        with pytest.raises(RuleApplicationError):
            rules.singleton([parse_nfd("R:[A -> A:B]")], schema)


class TestPrefix:
    def test_paper_step_two(self):
        # prefix on R:A:[B:C -> E:F] gives R:A:[B -> E:F]
        concluded = rules.prefix(parse_nfd("R:A:[B:C -> E:F]"),
                                 parse_path("B:C"))
        assert concluded == parse_nfd("R:A:[B -> E:F]")

    def test_prefix_of_rhs_rejected(self):
        # shortening B:C to B with RHS B:C would be unsound
        with pytest.raises(RuleApplicationError):
            rules.prefix(parse_nfd("R:[B:C:D -> B:C]"),
                         parse_path("B:C:D"))

    def test_single_label_rejected(self):
        with pytest.raises(RuleApplicationError):
            rules.prefix(parse_nfd("R:[B -> C]"), parse_path("B"))

    def test_non_member_rejected(self):
        with pytest.raises(RuleApplicationError):
            rules.prefix(parse_nfd("R:[B:C -> D]"), parse_path("X:Y"))
