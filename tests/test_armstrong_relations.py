"""Tests for closed-set enumeration and Armstrong relations."""

import random
from itertools import combinations

import pytest

from repro.errors import InferenceError
from repro.inference import FD, ClosureEngine, fd_implies, fd_to_nfd
from repro.inference.armstrong import armstrong_relation, closed_sets
from repro.nfd import satisfies_fast
from repro.types import parse_schema
from repro.values import Instance


class TestClosedSets:
    def test_no_fds_all_sets_closed(self):
        family = closed_sets(["A", "B"], [])
        assert frozenset() in family
        assert frozenset({"A"}) in family
        assert frozenset({"A", "B"}) in family
        assert len(family) == 4

    def test_fd_collapses_sets(self):
        family = closed_sets(["A", "B"], [FD({"A"}, "B")])
        assert frozenset({"A"}) not in family  # A+ = AB
        assert frozenset({"A", "B"}) in family
        assert frozenset({"B"}) in family

    def test_intersection_closed(self):
        rng = random.Random(1)
        attrs = ["A", "B", "C", "D"]
        for _ in range(10):
            fds = [FD(set(rng.sample(attrs, rng.randint(1, 2))),
                      rng.choice(attrs))
                   for _ in range(rng.randint(1, 4))]
            family = set(closed_sets(attrs, fds))
            for first in family:
                for second in family:
                    assert first & second in family, (fds, first, second)

    def test_size_guard(self):
        attrs = [f"A{i}" for i in range(15)]
        with pytest.raises(InferenceError):
            closed_sets(attrs, [])


class TestArmstrongRelation:
    ATTRS = ["A", "B", "C", "D"]

    def _satisfies(self, rows, lhs, rhs):
        groups = {}
        for row in rows:
            key = tuple(row[a] for a in sorted(lhs))
            if key in groups and groups[key] != row[rhs]:
                return False
            groups.setdefault(key, row[rhs])
        return True

    def test_exactness_exhaustive(self):
        rng = random.Random(2)
        for _ in range(25):
            fds = [FD(set(rng.sample(self.ATTRS, rng.randint(1, 2))),
                      rng.choice(self.ATTRS))
                   for _ in range(rng.randint(0, 4))]
            rows = armstrong_relation(self.ATTRS, fds)
            for size in range(1, 3):
                for combo in combinations(self.ATTRS, size):
                    for rhs in self.ATTRS:
                        if rhs in combo:
                            continue
                        assert self._satisfies(rows, set(combo), rhs) == \
                            fd_implies(fds, FD(set(combo), rhs)), \
                            (fds, combo, rhs)

    def test_agrees_with_nfd_semantics(self):
        """The Armstrong relation, viewed as a nested instance, behaves
        identically under the NFD satisfaction checker."""
        fds = [FD({"A"}, "B"), FD({"B", "C"}, "D")]
        rows = armstrong_relation(self.ATTRS, fds)
        schema = parse_schema("R = {<A, B, C, D>}")
        instance = Instance(schema, {"R": rows})
        engine = ClosureEngine(schema, [fd_to_nfd("R", fd)
                                        for fd in fds])
        for size in range(1, 3):
            for combo in combinations(self.ATTRS, size):
                for rhs in self.ATTRS:
                    if rhs in combo:
                        continue
                    nfd = fd_to_nfd("R", FD(set(combo), rhs))
                    assert satisfies_fast(instance, nfd) == \
                        engine.implies(nfd), nfd

    def test_anchor_row_is_zero(self):
        rows = armstrong_relation(["A", "B"], [])
        assert rows[0] == {"A": 0, "B": 0}
