"""Unit tests for minimal covers."""

from repro.analysis import covers, is_redundant, minimal_cover, \
    non_redundant
from repro.generators import workloads
from repro.inference import ImplicationSession, equivalent_sets
from repro.inference.closure import pool_build_count
from repro.nfd import parse_nfd, parse_nfds
from repro.types import parse_schema


class TestCovers:
    def test_direction_matters(self):
        schema = parse_schema("R = {<A, B, C>}")
        strong = parse_nfds("R:[A -> B]\nR:[B -> C]")
        weak = parse_nfds("R:[A -> C]")
        assert covers(schema, strong, weak)
        assert not covers(schema, weak, strong)


class TestNonRedundant:
    def test_drops_derived_member(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[B -> C]\nR:[A -> C]")
        reduced = non_redundant(schema, sigma)
        assert parse_nfd("R:[A -> C]") not in reduced
        assert len(reduced) == 2
        assert equivalent_sets(schema, sigma, reduced)

    def test_is_redundant(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[B -> C]\nR:[A -> C]")
        assert is_redundant(schema, sigma, 2)
        assert not is_redundant(schema, sigma, 0)


class TestMinimalCover:
    def test_shrinks_lhs(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[A, B -> C]")
        cover = minimal_cover(schema, sigma)
        # A -> B makes B redundant in the second LHS.
        assert parse_nfd("R:[A -> C]") in cover
        assert equivalent_sets(schema, sigma, cover)

    def test_fixpoint(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[B -> C]")
        cover = minimal_cover(schema, sigma)
        assert minimal_cover(schema, cover) == cover

    def test_nested_cover(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        cover = minimal_cover(schema, sigma)
        assert equivalent_sets(schema, sigma, cover)
        assert len(cover) <= len(sigma)

    def test_trivial_members_removed(self):
        schema = parse_schema("R = {<A, B>}")
        sigma = parse_nfds("R:[A -> A]\nR:[A -> B]")
        cover = minimal_cover(schema, sigma)
        assert parse_nfd("R:[A -> A]") not in cover

    def test_single_pool_build(self):
        """Every shrink and redundancy probe is a copy-on-write session,
        so the whole cover compiles exactly one Sigma pool."""
        schema = workloads.course_schema()
        sigma = workloads.course_sigma() + parse_nfds(
            "Course:[cnum, time -> students]\n"
            "Course:[cnum, books:isbn -> books:title]")
        before = pool_build_count()
        cover = minimal_cover(schema, sigma)
        assert pool_build_count() - before == 1
        assert equivalent_sets(schema, sigma, cover)

    def test_supplied_session_means_zero_builds(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("R:[A -> B]\nR:[B -> C]\nR:[A, B -> C]")
        session = ImplicationSession(schema, sigma)
        before = pool_build_count()
        minimal_cover(schema, sigma, session=session)
        assert pool_build_count() - before == 0
