"""Unit tests for the out-of-core streaming validation engine.

The differential property suite
(:mod:`tests.properties.test_stream_validate_differential`) covers the
randomized equivalence claims; these tests pin the targeted behaviors:
budget-bounded spilling, cooperative cancellation, cross-shard
conflicts, canonical key encoding, and tracer invariance.
"""

import pytest

from repro.errors import InstanceError, ValueError_
from repro.io.stream import iter_set_elements
from repro.nfd import (
    ResourceBudget,
    StreamStats,
    ValidatorEngine,
    parse_nfds,
    shard_validate,
    stream_validate,
)
from repro.obs import Tracer
from repro.values import Atom, Instance, Record, SetValue, to_python
from repro.values.canonical import canonical_bytes, canonical_key_bytes


def _sources(instance):
    return {name: iter_set_elements(value)
            for name, value in instance.relations()}


def _describe(violations):
    return [v.describe() for v in violations]


@pytest.fixture
def conflicted_course(course_schema, course_instance):
    """course_instance plus a cnum-clash: one element re-dumped with a
    different time, so ``Course:[cnum -> time]`` fails."""
    elements = list(course_instance.relation("Course"))
    elements.append(elements[0].replace("time", Atom(99)))
    return Instance(course_schema, {"Course": SetValue(elements)})


@pytest.fixture
def nested_conflict_course(course_schema, course_instance):
    """course_instance plus a course whose students set gives one sid
    two grades, so the nested ``Course:students:[sid -> grade]`` fails."""
    rows = [to_python(e) for e in course_instance.relation("Course")]
    rows.append({"cnum": "cis700", "time": 9,
                 "students": [{"sid": 1, "age": 20, "grade": "A"},
                              {"sid": 1, "age": 21, "grade": "B"}],
                 "books": [{"isbn": 7, "title": "Nested FDs"}]})
    return Instance(course_schema, {"Course": rows})


class TestStreamValidate:
    def test_clean_instance_is_ok(self, course_schema, course_sigma,
                                  course_instance):
        result = stream_validate(course_schema, course_sigma,
                                 _sources(course_instance))
        assert result.ok
        assert bool(result) is True
        assert result.violations == ()
        assert result.budget_exhausted is None
        assert result.stats.elements_seen == \
            sum(len(v) for _, v in course_instance.relations())

    def test_violations_match_in_memory_engine(
            self, course_schema, course_sigma, conflicted_course):
        reference = ValidatorEngine(course_schema, course_sigma) \
            .validate(conflicted_course, all_violations=True)
        assert reference.violations
        result = stream_validate(course_schema, course_sigma,
                                 _sources(conflicted_course))
        assert not result.ok
        assert _describe(result.violations) == \
            _describe(reference.violations)

    def test_nested_violations_match_in_memory_engine(
            self, course_schema, course_sigma, nested_conflict_course):
        reference = ValidatorEngine(course_schema, course_sigma) \
            .validate(nested_conflict_course, all_violations=True)
        assert reference.violations
        result = stream_validate(course_schema, course_sigma,
                                 _sources(nested_conflict_course))
        assert _describe(result.violations) == \
            _describe(reference.violations)

    def test_tiny_budget_forces_spills_and_keeps_witnesses(
            self, course_schema, course_sigma, conflicted_course):
        reference = ValidatorEngine(course_schema, course_sigma) \
            .validate(conflicted_course, all_violations=True)
        budget = ResourceBudget(max_resident_rows=1)
        result = stream_validate(course_schema, course_sigma,
                                 _sources(conflicted_course),
                                 budget=budget)
        assert result.stats.spills >= 1
        assert result.stats.peak_resident_rows <= 1
        assert result.stats.rows_spilled > 0
        assert result.stats.runs_written >= 1
        assert result.stats.bytes_spilled > 0
        assert _describe(result.violations) == \
            _describe(reference.violations)

    def test_missing_source_raises(self, course_schema, course_sigma):
        with pytest.raises(InstanceError, match="Course"):
            stream_validate(course_schema, course_sigma, {})

    def test_explicit_spill_dir_is_left_in_place(
            self, tmp_path, course_schema, course_sigma,
            course_instance):
        spill = tmp_path / "spill"
        spill.mkdir()
        result = stream_validate(
            course_schema, course_sigma, _sources(course_instance),
            budget=ResourceBudget(max_resident_rows=1),
            spill_dir=str(spill))
        assert result.stats.spills >= 1
        assert spill.is_dir()  # caller-owned dir survives cleanup
        assert list(spill.iterdir()) == []  # but run files are removed


class TestBudgetExhaustion:
    def test_max_elements_stops_early(self, course_schema,
                                      course_sigma, course_instance):
        result = stream_validate(
            course_schema, course_sigma, _sources(course_instance),
            budget=ResourceBudget(max_elements=1))
        assert result.budget_exhausted == "max_elements"
        assert result.ok is False
        assert result.elements_seen == 1

    def test_zero_deadline_stops_immediately(
            self, course_schema, course_sigma, course_instance):
        result = stream_validate(
            course_schema, course_sigma, _sources(course_instance),
            budget=ResourceBudget(deadline=0.0))
        assert result.budget_exhausted == "deadline"
        assert result.ok is False
        assert result.elements_seen == 0

    def test_partial_prefix_is_still_checked(
            self, course_schema, conflicted_course):
        # The clashing pair shares the minimal cnum, so it occupies the
        # first two slots of the sorted walk: a 2-element prefix
        # already witnesses the violation.
        sigma = parse_nfds("Course:[cnum -> time]")
        reference = ValidatorEngine(course_schema, sigma).validate(
            conflicted_course, all_violations=True)
        assert reference.violations
        ordered = list(conflicted_course.relation("Course"))
        assert ordered[0].get("cnum") == ordered[1].get("cnum")
        result = stream_validate(
            course_schema, sigma, _sources(conflicted_course),
            budget=ResourceBudget(max_elements=2))
        assert result.budget_exhausted == "max_elements"
        assert _describe(result.violations) == \
            _describe(reference.violations)

    def test_budget_validation(self):
        with pytest.raises(ValueError_, match="max_resident_rows"):
            ResourceBudget(max_resident_rows=0)
        with pytest.raises(ValueError_, match="deadline"):
            ResourceBudget(deadline=-1.0)
        with pytest.raises(ValueError_, match="max_elements"):
            ResourceBudget(max_elements=-1)


class TestShardValidate:
    def test_cross_shard_conflict_found(self, course_schema,
                                        course_sigma,
                                        conflicted_course):
        reference = ValidatorEngine(course_schema, course_sigma) \
            .validate(conflicted_course, all_violations=True)
        assert reference.violations
        ordered = list(conflicted_course.relation("Course"))
        # one element per shard: no shard sees both clashing elements
        shards = [("rows", [element]) for element in ordered]
        result = shard_validate(course_schema, course_sigma, "Course",
                                shards)
        assert result.completed_shards == tuple(range(len(shards)))
        assert _describe(result.violations) == \
            _describe(reference.violations)

    def test_nested_witnesses_cross_shards(self, course_schema,
                                           course_sigma,
                                           nested_conflict_course):
        reference = ValidatorEngine(course_schema, course_sigma) \
            .validate(nested_conflict_course, all_violations=True)
        ordered = list(nested_conflict_course.relation("Course"))
        shards = [("rows", [element]) for element in ordered]
        result = shard_validate(course_schema, course_sigma, "Course",
                                shards)
        assert _describe(result.violations) == \
            _describe(reference.violations)

    def test_sharded_jsonl_matches_serial(self, tmp_path,
                                          course_schema, course_sigma,
                                          conflicted_course):
        from repro.io.stream import dump_jsonl, plan_shards
        path = tmp_path / "course.jsonl"
        dump_jsonl(path, iter_set_elements(
            conflicted_course.relation("Course")))
        reference = ValidatorEngine(course_schema, course_sigma) \
            .validate(conflicted_course, all_violations=True)
        result = shard_validate(course_schema, course_sigma, "Course",
                                plan_shards(path, 3))
        assert _describe(result.violations) == \
            _describe(reference.violations)

    def test_shard_budget_reports_exhaustion(
            self, course_schema, course_sigma, course_instance):
        ordered = list(course_instance.relation("Course"))
        result = shard_validate(
            course_schema, course_sigma, "Course",
            [("rows", ordered)],
            budget=ResourceBudget(max_elements=0))
        assert result.budget_exhausted == "max_elements"
        assert result.ok is False


class TestObservability:
    def test_tracer_invariance(self, course_schema, course_sigma,
                               conflicted_course):
        plain = stream_validate(course_schema, course_sigma,
                                _sources(conflicted_course))
        tracer = Tracer()
        traced = stream_validate(course_schema, course_sigma,
                                 _sources(conflicted_course),
                                 tracer=tracer)
        assert _describe(traced.violations) == \
            _describe(plain.violations)
        assert traced.stats.elements_seen == plain.stats.elements_seen
        assert [span.name for span in tracer.spans("stream.validate")]

    def test_shard_tracer_invariance(self, course_schema, course_sigma,
                                     conflicted_course):
        ordered = list(conflicted_course.relation("Course"))
        shards = [("rows", ordered[:1]), ("rows", ordered[1:])]
        plain = shard_validate(course_schema, course_sigma, "Course",
                               shards)
        tracer = Tracer()
        traced = shard_validate(course_schema, course_sigma, "Course",
                                shards, tracer=tracer)
        assert _describe(traced.violations) == \
            _describe(plain.violations)
        assert tracer.spans("stream.shard_validate")
        assert len(tracer.spans("stream.shard")) == len(shards)


class TestStreamStats:
    def test_absorb_takes_max_of_peaks(self):
        stats = StreamStats(elements_seen=2, peak_resident_rows=7)
        stats.absorb(StreamStats(elements_seen=3,
                                 peak_resident_rows=5).as_dict())
        assert stats.elements_seen == 5
        assert stats.peak_resident_rows == 7
        stats.absorb(StreamStats(peak_resident_rows=11).as_dict())
        assert stats.peak_resident_rows == 11

    def test_as_metrics_matches_as_dict(self):
        stats = StreamStats(rows_emitted=4, spills=1)
        assert stats.as_metrics() == stats.as_dict()
        assert "rows emitted: 4" in stats.to_text()


class TestCanonicalBytes:
    def test_equal_records_with_permuted_fields_encode_equal(self):
        left = Record((("p", Atom(1)), ("q", Atom("x"))))
        right = Record((("q", Atom("x")), ("p", Atom(1))))
        assert left == right
        assert canonical_bytes(left) == canonical_bytes(right)

    def test_distinct_values_encode_distinct(self):
        values = [Atom(1), Atom("1"), Atom(True), Atom("true"),
                  SetValue((Atom(1),)), SetValue(())]
        encodings = [canonical_bytes(v) for v in values]
        assert len(set(encodings)) == len(encodings)

    def test_key_tuples_are_self_delimiting(self):
        # ("ab", "c") and ("a", "bc") must not collide
        left = canonical_key_bytes((Atom("ab"), Atom("c")))
        right = canonical_key_bytes((Atom("a"), Atom("bc")))
        assert left != right


class TestCleanup:
    """Spill hygiene: every exit path — normal finalize, a mid-stream
    :class:`~repro.errors.StreamError`, or leaving a ``with`` block via
    an exception — must leave no run files, no element-store sidecar,
    and no owned spill directory behind."""

    def _spilling_jsonl(self, tmp_path, course_instance, malformed):
        from repro.io.stream import dump_jsonl
        path = tmp_path / "course.jsonl"
        dump_jsonl(path, iter_set_elements(
            course_instance.relation("Course")))
        if malformed:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("{not json\n")
        return path

    def test_spill_dir_emptied_after_stream_error(
            self, tmp_path, course_schema, course_sigma,
            course_instance):
        """A malformed line arriving *after* the first spill must not
        leak the runs (or the element sidecar) already on disk."""
        from repro.errors import StreamError
        from repro.io.stream import iter_jsonl_elements
        from repro.nfd.stream_validate import ResourceBudget
        path = self._spilling_jsonl(tmp_path, course_instance,
                                    malformed=True)
        spill = tmp_path / "spill"
        spill.mkdir()
        reader = iter_jsonl_elements(path, course_schema, "Course")
        with pytest.raises(StreamError):
            stream_validate(course_schema, course_sigma,
                            {"Course": reader},
                            budget=ResourceBudget(max_resident_rows=1),
                            spill_dir=str(spill))
        assert list(spill.iterdir()) == []  # caller's dir, emptied

    def test_owned_spill_dir_removed_after_stream_error(
            self, tmp_path, monkeypatch, course_schema, course_sigma,
            course_instance):
        """Without a caller-supplied dir the engine makes its own; an
        abnormal exit must remove the directory itself."""
        import os
        import tempfile
        from repro.errors import StreamError
        from repro.io.stream import iter_jsonl_elements
        from repro.nfd.stream_validate import ResourceBudget
        created = []
        real_mkdtemp = tempfile.mkdtemp

        def recording_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(tempfile, "mkdtemp", recording_mkdtemp)
        path = self._spilling_jsonl(tmp_path, course_instance,
                                    malformed=True)
        reader = iter_jsonl_elements(path, course_schema, "Course")
        with pytest.raises(StreamError):
            stream_validate(course_schema, course_sigma,
                            {"Course": reader},
                            budget=ResourceBudget(max_resident_rows=1))
        assert created, "the engine never made its spill dir"
        for dir_path in created:
            assert not os.path.exists(dir_path)

    def test_context_manager_cleans_up_on_exception(
            self, tmp_path, course_schema, course_sigma,
            course_instance):
        from repro.nfd import StreamValidator
        spill = tmp_path / "spill"
        spill.mkdir()
        with pytest.raises(RuntimeError):
            with StreamValidator(
                    course_schema, course_sigma,
                    budget=ResourceBudget(max_resident_rows=1),
                    spill_dir=str(spill)) as validator:
                validator.consume("Course", iter_set_elements(
                    course_instance.relation("Course")))
                assert validator.stats.spills >= 1
                assert list(spill.iterdir())  # runs are on disk now
                raise RuntimeError("abandon mid-validation")
        assert list(spill.iterdir()) == []

    def test_context_manager_returns_validator(self, course_schema,
                                               course_sigma):
        from repro.nfd import StreamValidator
        with StreamValidator(course_schema, course_sigma) as validator:
            assert validator.stats.elements_seen == 0


class TestElementStore:
    """The witness sidecar: elements spill once, refs are stable, and
    point reads thaw the exact element back."""

    def test_refs_round_trip(self, tmp_path):
        import pickle
        from repro.nfd.stream_validate import _ElementStore
        from repro.values import thaw_value
        store = _ElementStore(str(tmp_path / "elems.dat"))
        element = Record([("A", Atom(1)),
                          ("B", SetValue([Atom("x"), Atom("y")]))])
        ref = store.put(element)
        assert ref[0] == "@" and ref[1] == store.path
        again = store.put(element)   # same event: memoized, same ref
        assert again == ref
        store.end_event()
        store.close()
        with open(ref[1], "rb") as handle:
            handle.seek(ref[2])
            assert thaw_value(pickle.load(handle)) == element

    def test_memo_resets_between_events(self, tmp_path):
        from repro.nfd.stream_validate import _ElementStore
        store = _ElementStore(str(tmp_path / "elems.dat"))
        element = Record([("A", Atom(7))])
        first = store.put(element)
        store.end_event()
        second = store.put(element)  # new event: a fresh write
        store.close()
        assert first != second

    def test_violating_witnesses_survive_the_sidecar(
            self, tmp_path, course_schema, course_sigma,
            conflicted_course):
        """End to end: with a 1-row budget every aggregate spills, so
        the witnesses the result carries were read back through refs —
        and must still equal the in-memory engine's."""
        reference = ValidatorEngine(course_schema, course_sigma) \
            .validate(conflicted_course, all_violations=True)
        result = stream_validate(
            course_schema, course_sigma, _sources(conflicted_course),
            budget=ResourceBudget(max_resident_rows=1))
        assert result.stats.spills >= 1
        assert _describe(result.violations) == \
            _describe(reference.violations)
        for violation in result.violations:
            assert violation.element1.is_record()
