"""Unit tests for the NFD concrete-syntax parser."""

import pytest

from repro.errors import ParseError
from repro.nfd import NFD, parse_nfd, parse_nfds
from repro.paths import parse_path


class TestParseNFD:
    def test_global(self):
        nfd = parse_nfd("Course:[cnum -> time]")
        assert nfd.base == parse_path("Course")
        assert nfd.lhs == {parse_path("cnum")}
        assert nfd.rhs == parse_path("time")

    def test_multiple_lhs(self):
        nfd = parse_nfd("Course:[time, students:sid -> cnum]")
        assert nfd.lhs == {parse_path("time"), parse_path("students:sid")}

    def test_local_base(self):
        nfd = parse_nfd("Course:students:[sid -> grade]")
        assert nfd.base == parse_path("Course:students")
        assert nfd.lhs == {parse_path("sid")}

    @pytest.mark.parametrize("text", [
        "R:A:E:[∅ -> F]",
        "R:A:E:[ -> F]",
        "R:A:E:[0 -> F]",
        "R:A:E:[-> F]",
    ])
    def test_degenerate_forms(self, text):
        nfd = parse_nfd(text)
        assert nfd.is_degenerate
        assert nfd.rhs == parse_path("F")

    def test_unicode_arrow(self):
        assert parse_nfd("R:[A → B]") == parse_nfd("R:[A -> B]")

    def test_base_trailing_colon_tolerated(self):
        assert parse_nfd("R:[A -> B]") == parse_nfd("R :[A -> B]")

    @pytest.mark.parametrize("text", [
        "no brackets",
        "R:[A -> B",          # unclosed
        "R:[A, B]",           # no arrow
        ":[A -> B]",          # no base
        "R:[A -> ]",          # no rhs
        "R:[A -> B, C]",      # rhs must be a single path
        "R:[A -> B:9]",       # bad label
        "R:[ , A -> B]",      # empty lhs member
    ])
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_nfd(text)

    def test_rhs_set_error_explains_why(self):
        with pytest.raises(ParseError) as excinfo:
            parse_nfd("R:[A -> B, C]")
        assert "single path" in str(excinfo.value)


class TestParseNFDs:
    def test_multiline_with_comments(self):
        nfds = parse_nfds("""
            # keys
            Course:[cnum -> time]

            Course:students:[sid -> grade]
        """)
        assert len(nfds) == 2

    def test_roundtrip_through_str(self):
        texts = [
            "Course:[cnum -> time]",
            "Course:[students:sid, time -> cnum]",
            "Course:students:[sid -> grade]",
            "R:A:E:[∅ -> F]",
        ]
        for text in texts:
            nfd = parse_nfd(text)
            assert parse_nfd(str(nfd)) == nfd

    def test_nfd_parse_classmethod(self):
        assert NFD.parse("R:[A -> B]") == parse_nfd("R:[A -> B]")
