"""Unit tests for the brute-force prover and its agreement with the engine."""

import itertools

import pytest

from repro.errors import InferenceError
from repro.generators import workloads
from repro.inference import BruteForceProver, ClosureEngine
from repro.nfd import parse_nfd, parse_nfds
from repro.paths import parse_path, relation_paths
from repro.types import parse_schema


class TestBasics:
    def test_flat_transitivity(self):
        schema = parse_schema("R = {<A, B, C>}")
        prover = BruteForceProver(schema,
                                  parse_nfds("R:[A -> B]\nR:[B -> C]"))
        assert prover.implies(parse_nfd("R:[A -> C]"))
        assert not prover.implies(parse_nfd("R:[C -> A]"))

    def test_section_3_1_headline(self):
        prover = BruteForceProver(workloads.section_3_1_schema(),
                                  workloads.section_3_1_sigma())
        assert prover.implies(parse_nfd("R:A:[B -> E]"))

    def test_space_guard(self):
        prover_schema = workloads.example_a1_schema()  # 11 paths
        with pytest.raises(InferenceError):
            BruteForceProver(prover_schema, [], max_paths=7)

    def test_query_outside_space(self):
        schema = parse_schema("R = {<A, B>}")
        prover = BruteForceProver(schema, [])
        with pytest.raises(InferenceError):
            prover.closure(parse_path("S"), [])


class TestAgreementWithEngine:
    """The engine and the prover must compute identical closures."""

    @pytest.mark.parametrize("schema_text,sigma_text", [
        ("R = {<A, B, C>}", "R:[A -> B]\nR:[B -> C]"),
        ("R = {<A, B: {<C, D>}>}", "R:[B:C -> B:D]\nR:[A -> B]"),
        ("R = {<A: {<B, C>}, D>}", "R:[D -> A:B]\nR:[D -> A:C]"),
        ("R = {<A: {<B: {<C>}>}, D>}", "R:[A:B:C, D -> A:B]"),
        ("R = {<A, B: {<C>}, E>}", "R:[A -> B:C]\nR:[B:C -> E]"),
    ])
    def test_all_small_queries(self, schema_text, sigma_text):
        schema = parse_schema(schema_text)
        sigma = parse_nfds(sigma_text)
        prover = BruteForceProver(schema, sigma)
        engine = ClosureEngine(schema, sigma)
        paths = relation_paths(schema, "R")
        base = parse_path("R")
        for size in range(0, 3):
            for combo in itertools.combinations(paths, size):
                assert prover.closure(base, combo) == \
                    engine.closure(base, combo), combo

    def test_nested_bases_agree(self):
        schema = workloads.section_3_1_schema()
        sigma = workloads.section_3_1_sigma()
        prover = BruteForceProver(schema, sigma)
        engine = ClosureEngine(schema, sigma)
        for base_text, lhs_texts in [
            ("R:A", ["B"]), ("R:A", ["E"]), ("R:A:B", []),
            ("R:A:E", []), ("R", ["A:B:C", "D"]),
        ]:
            base = parse_path(base_text)
            lhs = [parse_path(t) for t in lhs_texts]
            assert prover.closure(base, lhs) == engine.closure(base, lhs)
