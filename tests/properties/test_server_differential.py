"""Differential tests: the daemon vs in-process engines.

One live daemon — a real ``repro serve`` subprocess on an ephemeral
port, spawned once per test session — answers ``implies``, ``closure``,
``keys``, and ``check`` queries, and every answer must be byte-identical
to what the in-process :class:`~repro.inference.ImplicationSession`,
:func:`~repro.analysis.minimal_keys`, and
:class:`~repro.nfd.batch_validate.ValidatorEngine` produce for the same
bundle.  The wire protocol, the bundle round-trip, the engine pool, the
closure batcher, and the deadline-bearing stream path may change *how*
an answer is computed, never *what* it is.

A deterministic seed sweep guarantees the advertised case count: 60
seeds x 2 modes (plain / NON-NULL-gated Sigma) x 2 strategies
(worklist / dense) = 240 randomized cases, clearing the >= 200 bar.  A
hypothesis wrapper adds shrinking on failure.
"""

import json
import os
import random
import re
import subprocess
import sys
import threading
from pathlib import Path as FsPath

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import minimal_keys
from repro.generators import (random_instance, random_nfd, random_schema,
                              random_sigma)
from repro.inference import ImplicationSession, NonEmptySpec
from repro.io.json_io import dump_bundle
from repro.nfd.batch_validate import ValidatorEngine
from repro.paths import Path, relation_paths, set_paths
from repro.server import ReproClient

SEEDS_PER_MODE = 60
STRATEGIES = ("worklist", "dense")
REPO_ROOT = FsPath(__file__).resolve().parents[2]

READY_RE = re.compile(
    r"repro daemon listening on (?P<host>[^:]+):(?P<port>\d+)")


# ------------------------------------------------------------- the daemon


@pytest.fixture(scope="session")
def daemon():
    """One live ``repro serve`` subprocess for the whole session.

    The daemon binds an ephemeral port (``--port 0``); the fixture
    parses the readiness line for the real endpoint and terminates the
    process (SIGTERM -> clean signal-driven stop) at session end.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=str(REPO_ROOT))

    endpoint: dict = {}

    def wait_ready():
        line = proc.stdout.readline()
        match = READY_RE.search(line)
        if match:
            endpoint["host"] = match.group("host")
            endpoint["port"] = int(match.group("port"))

    waiter = threading.Thread(target=wait_ready, daemon=True)
    waiter.start()
    waiter.join(timeout=30.0)
    if "port" not in endpoint:
        proc.kill()
        proc.wait(timeout=10.0)
        pytest.fail("daemon did not print its readiness line in time")
    try:
        yield endpoint["host"], endpoint["port"]
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - watchdog
            proc.kill()
            proc.wait(timeout=10.0)


@pytest.fixture(scope="session")
def client(daemon):
    host, port = daemon
    with ReproClient(host, port, timeout=60.0) as c:
        yield c


# ------------------------------------------------------------- case drawing


def _draw(seed: int, gated: bool):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4), max_lhs=2)
    relation = schema.relation_names[0]
    spec = _partial_spec(rng, schema, relation) if gated else None
    instance = random_instance(rng, schema, tuples=rng.randint(1, 3),
                               empty_probability=0.2)
    bundle = json.loads(dump_bundle(schema, sigma, instance,
                                    nonempty=spec))
    return rng, schema, sigma, relation, spec, instance, bundle


def _partial_spec(rng: random.Random, schema, relation: str) \
        -> NonEmptySpec:
    declared = {Path((relation,))}
    for p in set_paths(schema, relation):
        if rng.random() < 0.5:
            declared.add(Path((relation,)).concat(p))
    return NonEmptySpec(declared)


# ------------------------------------------------------------- the checks


def _check_agreement(client: ReproClient, seed: int, gated: bool,
                     strategy: str) -> None:
    rng, schema, sigma, relation, spec, instance, bundle = \
        _draw(seed, gated)
    session = ImplicationSession(schema, sigma, spec, strategy=strategy)
    paths = relation_paths(schema, relation)
    base = Path((relation,))

    # implies: random candidates plus every member of Sigma itself
    # (members are always implied -- an asymmetric sanity anchor)
    candidates = [random_nfd(rng, schema) for _ in range(3)]
    candidates.extend(sigma)
    for candidate in candidates:
        remote = client.implies(bundle, str(candidate),
                                strategy=strategy)
        assert remote == session.implies(candidate), \
            (seed, gated, strategy, str(candidate))

    # closure: single queries render exactly the session's answer in
    # the CLI's Path-tuple sort order
    queries = []
    for _ in range(3):
        lhs = rng.sample(paths, min(len(paths), rng.randint(0, 2)))
        queries.append((base, frozenset(lhs)))
    for q_base, q_lhs in queries:
        remote = client.closure(bundle, str(q_base),
                                [str(p) for p in q_lhs],
                                strategy=strategy)
        local = [str(p) for p in sorted(session.closure(q_base, q_lhs))]
        assert remote == local, (seed, gated, strategy, q_lhs)

    # closure: the pipelined "queries" form answers like the singles
    remote_many = client.closure_many(
        bundle,
        [(str(q_base), [str(p) for p in q_lhs])
         for q_base, q_lhs in queries],
        strategy=strategy)
    local_many = [[str(p) for p in sorted(session.closure(q_base, q_lhs))]
                  for q_base, q_lhs in queries]
    assert remote_many == local_many, (seed, gated, strategy)

    # keys: same relation, same strategy, same rendering
    remote_keys = client.keys(bundle, relation, strategy=strategy)
    local_keys = minimal_keys(schema, sigma, relation, engine=session,
                              nonempty=spec, strategy=strategy)
    assert remote_keys["relation"] == relation
    assert remote_keys["keys"] == \
        [sorted(str(p) for p in key) for key in local_keys], \
        (seed, gated, strategy)

    # check: the warm (compiled-validator) path
    engine = ValidatorEngine(schema, sigma)
    local_result = engine.validate(instance, all_violations=True)
    remote_check = client.check(bundle)
    assert remote_check["satisfied"] == (not local_result.violations), \
        (seed, gated, strategy)
    assert remote_check["violations"] == \
        [v.describe() for v in local_result.violations], \
        (seed, gated, strategy)

    # check with a (generous) deadline rides the stream engine; the
    # verdict and witnesses must not change with the machinery
    remote_stream = client.check(bundle, deadline=3600.0)
    assert remote_stream["satisfied"] == remote_check["satisfied"], \
        (seed, gated, strategy)
    assert remote_stream["violations"] == remote_check["violations"], \
        (seed, gated, strategy)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_daemon_equals_in_process_plain(client, seed, strategy):
    _check_agreement(client, seed, gated=False, strategy=strategy)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_daemon_equals_in_process_gated(client, seed, strategy):
    _check_agreement(client, seed, gated=True, strategy=strategy)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000), st.booleans(),
       st.sampled_from(STRATEGIES))
def test_daemon_equals_in_process_hypothesis(client, seed, gated,
                                             strategy):
    """Shrinkable variant of the seed sweep above."""
    _check_agreement(client, seed, gated, strategy)
