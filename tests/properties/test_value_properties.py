"""Property tests: structural laws of the value and path layers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_instance, random_schema
from repro.paths import Path, common_prefix, relation_paths
from repro.values import from_python, to_python


_LABELS = st.lists(
    st.sampled_from(["A", "B", "C", "D", "E"]), min_size=0, max_size=5
).map(tuple)


@settings(max_examples=200)
@given(_LABELS, _LABELS)
def test_common_prefix_laws(labels1, labels2):
    p1, p2 = Path(labels1), Path(labels2)
    shared = common_prefix(p1, p2)
    assert shared.is_prefix_of(p1)
    assert shared.is_prefix_of(p2)
    assert common_prefix(p1, p2) == common_prefix(p2, p1)
    assert common_prefix(p1, p1) == p1


@settings(max_examples=200)
@given(_LABELS, _LABELS)
def test_concat_strip_inverse(labels1, labels2):
    p1, p2 = Path(labels1), Path(labels2)
    assert p1.concat(p2).strip_prefix(p1) == p2


@settings(max_examples=200)
@given(_LABELS, _LABELS)
def test_follows_implies_shared_traversal(labels1, labels2):
    p1, p2 = Path(labels1), Path(labels2)
    if p1.follows(p2):
        # every set p1 traverses, p2 traverses too
        assert p1.parent.is_prefix_of(p2)
        assert len(p1.parent) < len(p2)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_value_python_roundtrip(seed):
    rng = random.Random(seed)
    schema = random_schema(rng, max_depth=2)
    instance = random_instance(rng, schema, tuples=2,
                               empty_probability=0.2)
    for name, relation in instance.relations():
        rel_type = schema.relation_type(name)
        assert from_python(to_python(relation), rel_type) == relation


_ROWS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=8,
)


@settings(max_examples=200)
@given(_ROWS)
def test_nest_unnest_roundtrip_preserves_value_and_hash(rows):
    """unnest(nest(r)) == r on flat relations, and the cached structural
    hashes of the round-tripped value agree with the original even
    though the two were constructed along different orders."""
    from repro.values import Atom, Record, SetValue
    from repro.values.restructure import nest, unnest

    relation = SetValue([
        Record([("A", Atom(a)), ("B", Atom(b))]) for a, b in rows
    ])
    nested = nest(relation, "G", ["B"])
    roundtrip = unnest(nested, "G")
    assert roundtrip == relation
    assert hash(roundtrip) == hash(relation)
    # group keys agree on A, so re-nesting is stable too
    renested = nest(roundtrip, "G", ["B"])
    assert renested == nested
    assert hash(renested) == hash(nested)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_relation_paths_are_well_typed_and_unique(seed):
    from repro.paths import is_well_typed
    rng = random.Random(seed)
    schema = random_schema(rng, max_depth=3)
    for name in schema.relation_names:
        paths = relation_paths(schema, name)
        assert len(paths) == len(set(paths))
        element = schema.element_type(name)
        assert all(is_well_typed(element, p) for p in paths)
