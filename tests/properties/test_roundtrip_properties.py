"""Property tests: every serialization layer round-trips."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_instance, random_nfd, random_schema
from repro.io import dump_bundle, load_bundle
from repro.nfd import parse_nfd, to_simple
from repro.nfd.simple_form import deepest_form
from repro.types import format_type, parse_type

from .strategies import schemas


@settings(max_examples=100, deadline=None)
@given(schemas(max_depth=3))
def test_type_syntax_roundtrip(schema):
    for name in schema.relation_names:
        rel_type = schema.relation_type(name)
        assert parse_type(format_type(rel_type)) == rel_type


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_nfd_syntax_roundtrip(seed):
    rng = random.Random(seed)
    schema = random_schema(rng, max_depth=2)
    nfd = random_nfd(rng, schema)
    assert parse_nfd(str(nfd)) == nfd


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_simple_form_roundtrip(seed):
    """to_simple is invertible by deepest_form on NFDs that were local."""
    rng = random.Random(seed)
    schema = random_schema(rng, max_depth=2, set_probability=0.6)
    nfd = random_nfd(rng, schema, local_probability=1.0)
    simple = to_simple(nfd)
    assert simple.is_simple
    assert to_simple(deepest_form(simple)) == simple


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_bundle_roundtrip(seed):
    rng = random.Random(seed)
    schema = random_schema(rng, max_depth=2)
    nfds = [random_nfd(rng, schema) for _ in range(3)]
    instance = random_instance(rng, schema, tuples=2,
                               empty_probability=0.2)
    text = dump_bundle(schema, nfds, instance)
    schema2, nfds2, instance2 = load_bundle(text)
    assert schema2 == schema
    assert nfds2 == nfds
    assert instance2 == instance
