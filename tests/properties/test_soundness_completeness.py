"""Property tests for Theorem 3.1: soundness and completeness.

Soundness — whatever the engine derives holds semantically: every
Sigma-satisfying instance (without empty sets) satisfies every implied
NFD.

Completeness — whatever the engine does *not* derive is semantically
refutable: the Appendix-A construction yields an instance satisfying
Sigma and violating the candidate.

Empty-set soundness — the gated engine's derivations hold on every
instance *admitted by the spec*, even ones with empty sets elsewhere.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    random_instance,
    random_nfd,
    random_schema,
    random_sigma,
)
from repro.inference import ClosureEngine, NonEmptySpec, \
    build_countermodel
from repro.nfd import satisfies_all_fast, satisfies_fast
from repro.paths import Path
from repro.values import check_instance, has_empty_sets


def _draw(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    candidate = random_nfd(rng, schema, max_lhs=2)
    return rng, schema, sigma, candidate


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_soundness(seed):
    rng, schema, sigma, candidate = _draw(seed)
    engine = ClosureEngine(schema, sigma)
    if not engine.implies(candidate):
        return
    checked = 0
    for _ in range(120):
        instance = random_instance(rng, schema, tuples=2, domain=2)
        if satisfies_all_fast(instance, sigma):
            checked += 1
            assert satisfies_fast(instance, candidate), \
                (sigma, candidate, instance)
        if checked >= 25:
            break


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_completeness_via_countermodel(seed):
    _, schema, sigma, candidate = _draw(seed)
    engine = ClosureEngine(schema, sigma)
    if engine.implies(candidate):
        return
    witness = build_countermodel(engine, candidate.base, candidate.lhs)
    check_instance(witness)
    assert not has_empty_sets(witness)
    assert satisfies_all_fast(witness, sigma)
    assert not satisfies_fast(witness, candidate), (sigma, candidate)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_empty_set_soundness(seed):
    """Gated derivations hold on spec-admitted instances with holes.

    Uses deeper schemas, local candidates, and *partial* random specs —
    the configuration that exposed the pull-out unsoundness fixed in
    ClosureEngine.closure (see DESIGN.md section 3.3).
    """
    from repro.paths import set_paths

    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=3,
                           set_probability=0.6)
    relation = schema.relation_names[0]
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4),
                         local_probability=0.4)
    candidate = random_nfd(rng, schema, max_lhs=2,
                           local_probability=0.5)
    declared = {Path((relation,))}
    for p in set_paths(schema, relation):
        if rng.random() < 0.5:
            declared.add(Path((relation,)).concat(p))
    spec = NonEmptySpec(declared)
    engine = ClosureEngine(schema, sigma, nonempty=spec)
    if not engine.implies(candidate):
        return
    checked = 0
    for _ in range(150):
        instance = random_instance(rng, schema, tuples=2, domain=2,
                                   empty_probability=0.35)
        if not spec.admits(instance):
            continue
        if satisfies_all_fast(instance, sigma):
            checked += 1
            assert satisfies_fast(instance, candidate), \
                (sigma, candidate, spec, instance)
        if checked >= 20:
            break
