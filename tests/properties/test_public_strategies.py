"""The public repro.testing strategies work as advertised."""

from hypothesis import given, settings

from repro import testing
from repro.nfd import satisfies_all_fast
from repro.types import Schema, check_no_repeated_labels
from repro.values import Instance, instance_conforms


@settings(max_examples=30, deadline=None)
@given(testing.schemas(max_depth=3))
def test_schemas_are_valid(schema):
    assert isinstance(schema, Schema)
    for name in schema.relation_names:
        check_no_repeated_labels(schema.relation_type(name))


@settings(max_examples=30, deadline=None)
@given(testing.schema_with_sigma())
def test_sigma_is_well_formed(case):
    schema, sigma = case
    # sigma can be empty on degenerate one-attribute schemas, where the
    # only expressible NFD is trivial
    for nfd in sigma:
        nfd.check_well_formed(schema)


@settings(max_examples=30, deadline=None)
@given(testing.schema_with_instance(empty_probability=0.2))
def test_instances_conform(case):
    schema, instance = case
    assert isinstance(instance, Instance)
    assert instance_conforms(instance)


@settings(max_examples=30, deadline=None)
@given(testing.full_bundles(satisfying=True))
def test_satisfying_bundles_satisfy(case):
    schema, sigma, instance = case
    if instance is None:
        return  # rejection sampling missed; documented behaviour
    assert satisfies_all_fast(instance, sigma)


def _course_schema():
    from repro.generators import workloads
    return workloads.course_schema()


@settings(max_examples=15, deadline=None)
@given(testing.nfd_sets(_course_schema()),
       testing.instances(_course_schema()))
def test_fixed_schema_strategies(sigma, instance):
    schema = _course_schema()
    for nfd in sigma:
        nfd.check_well_formed(schema)
    assert instance_conforms(instance)
