"""Property tests for the nested normalization pipeline.

Three families of randomized evidence back ``repro normalize``:

* **Round-trip soundness** — nesting a flat instance that satisfies
  Sigma by the winning plan yields a nested instance on which every
  carried NFD (and every structural NFD) holds, in the plain Section
  3.1 reading and with a fully-gated ``NonEmptySpec``.
* **Preservation honesty** — the report's ``preserved`` verdict equals
  a brute-force re-derivation: rebuild the enforced constraint set
  from the winner's :class:`~repro.design.PlanReport` (top-level
  placements, per-set local forms, structural NFDs) and ask one
  independent naive-strategy engine per carried dependency.
* **Sweep determinism** — ``sweep_normalize(..., jobs=2)`` renders
  byte-identically to the serial sweep, so CI gate numbers cannot
  depend on worker scheduling.

A deterministic seed sweep guarantees the advertised case count (the
acceptance bar is >= 200 randomized cases across the families)
independent of hypothesis profiles; a hypothesis wrapper adds
shrinking on failure.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import DependencyPlacement, sweep_normalize, synthesize_design
from repro.generators import (
    random_design_sigma,
    random_flat_schema,
    random_satisfying_instance,
)
from repro.inference import ClosureEngine, NonEmptySpec
from repro.nfd import satisfies_all_fast

ROUNDTRIP_SEEDS = 60
PRESERVATION_SEEDS = 60
GATED_PRESERVATION_SEEDS = 30
SWEEP_SEEDS = 5
SWEEP_SIZE = 6


def _draw(seed: int):
    rng = random.Random(seed)
    schema = random_flat_schema(rng, max_fields=5)
    sigma = random_design_sigma(rng, schema, fallback_count=4)
    return rng, schema, sigma


def _check_roundtrip(seed: int, gated: bool) -> None:
    rng, schema, sigma = _draw(seed)
    instance = random_satisfying_instance(rng, schema, sigma,
                                          tuples=3, domain=2)
    if instance is None:
        return  # generator gave up on this Sigma; seed still counts
    spec = NonEmptySpec.all_nonempty() if gated else None
    report = synthesize_design(schema, sigma, nonempty=spec,
                               instance=instance)
    assert report.roundtrip == "ok", \
        (seed, report.roundtrip, report.to_text())
    # the same fact, checked without going through _roundtrip: the
    # nested value satisfies every carried and structural NFD
    nested = report.plan.apply_instance(instance)
    assert satisfies_all_fast(nested, report.plan_report.all_nfds()), \
        (seed, report.to_text())


def _brute_force_preserved(report) -> bool:
    """Re-derive the preservation verdict from first principles.

    The enforced set is what a per-set checker maintains: top-level
    carried NFDs verbatim, each deep placement's local form when one
    exists, and the structural NFDs nesting induces.  The design
    preserves Sigma iff that set implies every carried dependency —
    one fresh naive-strategy engine per query, sharing nothing with
    the session machinery under test.
    """
    plan_report = report.plan_report
    enforced = []
    for placement in plan_report.placements:
        if placement.kind == DependencyPlacement.TOP:
            enforced.append(placement.nfd)
        else:
            local = plan_report.local_form(placement)
            if local is not None:
                enforced.append(local)
    enforced.extend(plan_report.structural_nfds())
    return all(
        ClosureEngine(plan_report.schema, enforced,
                      strategy="naive").implies(nfd)
        for nfd in plan_report.nfds())


def _check_preservation(seed: int, gated: bool) -> None:
    _, schema, sigma = _draw(seed)
    spec = NonEmptySpec.all_nonempty() if gated else None
    for mode in ("session", "fresh"):
        report = synthesize_design(schema, sigma, nonempty=spec,
                                   mode=mode)
        assert report.preserved == _brute_force_preserved(report), \
            (seed, mode, report.to_text())


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(ROUNDTRIP_SEEDS))
    def test_plain(self, seed):
        _check_roundtrip(seed, gated=False)

    @pytest.mark.parametrize("seed",
                             range(ROUNDTRIP_SEEDS, 2 * ROUNDTRIP_SEEDS))
    def test_gated(self, seed):
        _check_roundtrip(seed, gated=True)

    @settings(deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), gated=st.booleans())
    def test_hypothesis(self, seed, gated):
        _check_roundtrip(seed, gated)


class TestPreservationVerdict:
    @pytest.mark.parametrize("seed", range(PRESERVATION_SEEDS))
    def test_plain(self, seed):
        _check_preservation(seed, gated=False)

    @pytest.mark.parametrize("seed",
                             range(GATED_PRESERVATION_SEEDS))
    def test_gated(self, seed):
        _check_preservation(seed, gated=True)

    @settings(deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_hypothesis(self, seed):
        _check_preservation(seed, gated=False)


class TestSweepDeterminism:
    @pytest.mark.parametrize("seed", range(SWEEP_SEEDS))
    def test_jobs_two_matches_serial(self, seed):
        serial = sweep_normalize(SWEEP_SIZE, jobs=1, seed=seed)
        parallel = sweep_normalize(SWEEP_SIZE, jobs=2, seed=seed)
        assert serial.to_text() == parallel.to_text()
        assert serial.records == parallel.records

    def test_fresh_mode_matches_too(self):
        serial = sweep_normalize(SWEEP_SIZE, jobs=1, seed=1,
                                 mode="fresh")
        parallel = sweep_normalize(SWEEP_SIZE, jobs=2, seed=1,
                                   mode="fresh")
        assert serial.to_text() == parallel.to_text()
