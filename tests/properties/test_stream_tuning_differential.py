"""Differential property tests: every StreamTuning is invisible.

The hot-path knobs — canonical-bytes interning, batched binding
emission, the columnar (numpy) group-table backend, the plain spill
codec — are *performance* switches.  None of them may change a public
result: for any tuning, :func:`repro.nfd.stream_validate` must produce
byte-identical witness descriptions to the legacy (all-off) tuning and
to the in-memory engine, resident or spilling, and the worker
summarize/absorb protocol must merge to the same verdict.

Each hypothesis case draws one random schema/Σ/instance and runs the
full tuning matrix — pool on/off crossed with the dict and numpy
backends, plus the legacy configuration — so the default profile's
100 examples exercise well over 200 tuned validations per suite run
(the nightly profile multiplies that by 10).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_instance, random_schema, random_sigma
from repro.io.stream import iter_set_elements
from repro.nfd import (
    ResourceBudget,
    StreamTuning,
    StreamValidator,
    ValidatorEngine,
    stream_validate,
)

try:
    import numpy  # noqa: F401
    _BACKENDS = ("dict", "numpy")
except ImportError:  # pragma: no cover - image always has numpy
    _BACKENDS = ("dict",)

#: The matrix one drawn case is run through: interning x backend, the
#: legacy all-off configuration, and the value spill codec.
TUNINGS = [StreamTuning.legacy()] + [
    StreamTuning(interning=interning, backend=backend)
    for interning in (True, False)
    for backend in _BACKENDS
] + [StreamTuning(spill_codec="value")]


def _draw_case(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    instance = random_instance(rng, schema, tuples=rng.randint(2, 4),
                               domain=2, empty_probability=0.2)
    return schema, sigma, instance


def _sources(instance):
    return {name: iter_set_elements(value)
            for name, value in instance.relations()}


def _witnesses(result):
    return [v.describe() for v in result.violations]


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_all_tunings_match_engine_resident(seed):
    """Unbudgeted: every tuning equals the in-memory engine exactly."""
    schema, sigma, instance = _draw_case(seed)
    expected = _witnesses(ValidatorEngine(schema, sigma).validate(
        instance, all_violations=True))
    for tuning in TUNINGS:
        result = stream_validate(schema, sigma, _sources(instance),
                                 tuning=tuning)
        assert _witnesses(result) == expected, tuning
        assert result.ok == (not expected), tuning


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_all_tunings_match_engine_spilling(seed):
    """A 2-row budget forces spill/merge under every tuning; the
    witnesses, their order, and the residency cap must all hold."""
    schema, sigma, instance = _draw_case(seed)
    expected = _witnesses(ValidatorEngine(schema, sigma).validate(
        instance, all_violations=True))
    for tuning in TUNINGS:
        result = stream_validate(
            schema, sigma, _sources(instance),
            budget=ResourceBudget(max_resident_rows=2), tuning=tuning)
        assert _witnesses(result) == expected, tuning
        assert result.stats.peak_resident_rows <= 2, tuning


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_summaries_merge_identically(seed):
    """The worker summarize/absorb protocol is tuning-invariant: a
    spilling worker under any tuning, absorbed into a fresh driver,
    finalizes to the same witnesses as the legacy worker."""
    schema, sigma, instance = _draw_case(seed)
    if not sigma:
        return
    baseline = None
    for tuning in TUNINGS:
        worker = StreamValidator(
            schema, sigma,
            budget=ResourceBudget(max_resident_rows=2), tuning=tuning,
            shard_index=0)
        try:
            for name, value in instance.relations():
                worker.consume(name, iter_set_elements(value))
            summary = worker.summarize()
            driver = StreamValidator(schema, sigma)
            try:
                driver.absorb_summary(summary)
                # single-shard driver: renumbering offsets are zero
                triples = [(plan_index, (0, position), violation)
                           for plan_index, position, violation
                           in summary["nested"]]
                witnesses = _witnesses(driver.finalize(
                    nested=triples,
                    elements_seen=summary["elements_seen"],
                    exhausted=summary["exhausted"]))
            finally:
                driver.cleanup()
        finally:
            worker.cleanup()
        if baseline is None:
            baseline = witnesses
        else:
            assert witnesses == baseline, tuning


def test_matrix_is_at_least_the_promised_size():
    """100 hypothesis examples x len(TUNINGS) >= 200 tuned runs per
    suite, and the matrix really crosses pool x backend."""
    assert len(TUNINGS) >= 4
    crossed = {(t.interning, t.backend) for t in TUNINGS}
    assert {(True, "dict"), (False, "dict")} <= crossed
    if "numpy" in _BACKENDS:
        assert {(True, "numpy"), (False, "numpy")} <= crossed


@pytest.mark.parametrize("tuning", TUNINGS,
                         ids=lambda t: f"i{int(t.interning)}-"
                                       f"{t.backend}-{t.spill_codec}")
def test_stats_counters_are_consistent(tuning):
    """Whatever the tuning, the stats a run reports must describe the
    run: interning off => zero pool traffic; spills => rows spilled."""
    schema, sigma, instance = _draw_case(4242)
    result = stream_validate(
        schema, sigma, _sources(instance),
        budget=ResourceBudget(max_resident_rows=2), tuning=tuning)
    stats = result.stats
    if not tuning.interning:
        assert stats.intern_hits == 0
        assert stats.intern_misses == 0
    if stats.spills:
        assert stats.rows_spilled > 0
        assert stats.runs_written >= 1
