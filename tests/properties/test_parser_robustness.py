"""Parser robustness: garbage in, ReproError (never a crash) out."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.nfd import parse_nfd, parse_nfd_family
from repro.paths import parse_path
from repro.types import parse_schema, parse_type

_TEXT = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N", "P", "S", "Z"),
        max_codepoint=0x2FFF,
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(_TEXT)
def test_parse_type_never_crashes(text):
    try:
        parse_type(text)
    except ReproError:
        pass  # any library error is fine; non-library crashes are not


@settings(max_examples=200, deadline=None)
@given(_TEXT)
def test_parse_schema_never_crashes(text):
    try:
        parse_schema(text)
    except ReproError:
        pass


@settings(max_examples=200, deadline=None)
@given(_TEXT)
def test_parse_path_never_crashes(text):
    try:
        parse_path(text)
    except ReproError:
        pass


@settings(max_examples=200, deadline=None)
@given(_TEXT)
def test_parse_nfd_never_crashes(text):
    try:
        parse_nfd(text)
        parse_nfd_family(text)
    except ReproError:
        pass


class TestUnicodeLabels:
    """Python identifiers admit unicode; the pipeline must too."""

    def test_unicode_schema_roundtrip(self):
        from repro.types import format_type
        schema = parse_schema("Curso = {<número: string, años: int>}")
        rel_type = schema.relation_type("Curso")
        assert parse_type(format_type(rel_type)) == rel_type

    def test_unicode_nfd_end_to_end(self):
        from repro.inference import ClosureEngine
        from repro.values import Instance
        from repro.nfd import satisfies_fast

        schema = parse_schema("Curso = {<número: string, años: int>}")
        sigma = [parse_nfd("Curso:[número -> años]")]
        engine = ClosureEngine(schema, sigma)
        assert engine.implies(parse_nfd("Curso:[número -> años]"))
        instance = Instance(schema, {"Curso": [
            {"número": "a", "años": 1},
            {"número": "a", "años": 2},
        ]})
        assert not satisfies_fast(instance, sigma[0])
