"""Differential tests: the dense bitset kernel vs. the object strategies.

The ``strategy="dense"`` kernel interns each relation's path universe
into contiguous bit positions and saturates with pure integer mask
arithmetic, but it computes the least fixpoint of the *same* monotone
single-step operator as the worklist and the naive reference — so all
three must agree exactly: on every closure (simple, relation-name base,
nested base), on every implication verdict, and on every minimal-key
sweep, in the plain Section 3.1 mode, the fully-gated Section 3.2 mode,
and under partial non-empty declarations.

A deterministic seed sweep guarantees the advertised case count (the
acceptance bar is >= 200 randomized cases across the modes) independent
of hypothesis profiles; a hypothesis wrapper adds shrinking on failure.
The batch APIs (``closure_many`` / ``closure_batch`` / ``covers_many``)
are checked against their mapped one-query-at-a-time reading, and the
pickled-dense-tables parallel key sweep against the serial one.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import minimal_keys
from repro.generators import random_schema, random_sigma, workloads
from repro.inference import (
    ClosureEngine,
    ImplicationSession,
    NonEmptySpec,
)
from repro.nfd import NFD
from repro.paths import Path, relation_paths, set_paths

SEEDS_PER_MODE = 60
QUERIES_PER_CASE = 3


def _draw(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4), max_lhs=2)
    relation = schema.relation_names[0]
    paths = relation_paths(schema, relation)
    return rng, schema, sigma, relation, paths


def _partial_spec(rng: random.Random, schema, relation: str) \
        -> NonEmptySpec:
    declared = {Path((relation,))}
    for p in set_paths(schema, relation):
        if rng.random() < 0.5:
            declared.add(Path((relation,)).concat(p))
    return NonEmptySpec(declared)


def _check_dense_agreement(seed: int, gated: bool) -> None:
    rng, schema, sigma, relation, paths = _draw(seed)
    spec = _partial_spec(rng, schema, relation) if gated else None
    dense = ClosureEngine(schema, sigma, nonempty=spec,
                          strategy="dense")
    worklist = ClosureEngine(schema, sigma, nonempty=spec)
    naive = ClosureEngine(schema, sigma, nonempty=spec,
                          strategy="naive")
    base = Path((relation,))
    for _ in range(QUERIES_PER_CASE):
        lhs = frozenset(rng.sample(paths,
                                   min(len(paths), rng.randint(0, 2))))
        simple = dense.closure_simple(relation, lhs)
        assert simple == worklist.closure_simple(relation, lhs), \
            (sigma, spec, lhs)
        assert simple == naive.closure_simple(relation, lhs), \
            (sigma, spec, lhs)
        closed = dense.closure(base, lhs)
        assert closed == worklist.closure(base, lhs), (sigma, spec, lhs)
        # implication verdicts: one implied RHS, one arbitrary RHS
        for rhs in [*list(closed)[:1], *rng.sample(paths, 1)]:
            if rhs in lhs:
                continue
            nfd = NFD(base, lhs, rhs)
            assert dense.implies(nfd) == worklist.implies(nfd), \
                (sigma, spec, nfd)
    # nested bases exercise the simple-form translation and, in gated
    # mode, the pull-out gate of ClosureEngine.closure
    nested = list(set_paths(schema, relation))
    for tail in nested[:2]:
        nested_base = base.concat(tail)
        assert dense.closure(nested_base, ()) == \
            worklist.closure(nested_base, ()), (sigma, spec, nested_base)


@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_dense_equals_object_strategies_plain(seed):
    _check_dense_agreement(seed, gated=False)


@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_dense_equals_object_strategies_gated(seed):
    _check_dense_agreement(seed, gated=True)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000),
       st.booleans())
def test_dense_equals_object_strategies_hypothesis(seed, gated):
    """Shrinkable variant of the seed sweep above."""
    _check_dense_agreement(seed, gated)


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("strategy", ["dense", "worklist"])
def test_closure_many_matches_mapped_closure(seed, strategy):
    """The batch API answers exactly like one-at-a-time closure calls
    (on a fresh engine, so neither order nor seeding can leak)."""
    rng, schema, sigma, relation, paths = _draw(seed)
    base = Path((relation,))
    queries = []
    for _ in range(6):
        lhs = frozenset(rng.sample(paths,
                                   min(len(paths), rng.randint(0, 3))))
        queries.append((base, lhs))
    batch = ClosureEngine(schema, sigma, strategy=strategy) \
        .closure_many(queries)
    single = ClosureEngine(schema, sigma, strategy=strategy)
    assert batch == [single.closure(b, lhs) for b, lhs in queries]


@pytest.mark.parametrize("seed", range(20))
def test_session_batches_match_engine(seed):
    """closure_batch and covers_batch agree with the mapped reading,
    dense and worklist alike."""
    rng, schema, sigma, relation, paths = _draw(seed)
    base = Path((relation,))
    candidates = [
        frozenset(rng.sample(paths, min(len(paths), rng.randint(0, 2))))
        for _ in range(5)
    ]
    targets = rng.sample(paths, min(len(paths), 2))
    for strategy in ("dense", "worklist"):
        session = ImplicationSession(schema, sigma, strategy=strategy)
        closures = session.closure_batch(
            [(base, c) for c in candidates])
        fresh = ImplicationSession(schema, sigma, strategy=strategy)
        assert closures == [fresh.closure(base, c) for c in candidates]
        assert session.covers_batch(base, candidates, targets) == [
            all(t in closed for t in targets) for closed in closures
        ]


@pytest.mark.parametrize("seed", range(15))
@pytest.mark.parametrize("gated", [False, True])
def test_dense_keys_match_object_strategies(seed, gated):
    rng, schema, sigma, relation, paths = _draw(seed)
    spec = _partial_spec(rng, schema, relation) if gated else None
    keys = minimal_keys(schema, sigma, relation, nonempty=spec,
                        strategy="dense")
    assert keys == minimal_keys(schema, sigma, relation, nonempty=spec,
                                strategy="worklist")
    assert keys == minimal_keys(schema, sigma, relation, nonempty=spec,
                                strategy="naive")


class TestParallelDenseSweep:
    """jobs=2 workers adopt the driver's pickled dense tables and must
    reproduce the serial sweep byte-for-byte."""

    def test_parallel_dense_sweep_identical(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        serial = minimal_keys(schema, sigma, "Course",
                              strategy="dense")
        parallel = minimal_keys(schema, sigma, "Course",
                                strategy="dense", jobs=2)
        assert parallel == serial
        assert repr(sorted(map(sorted, parallel))) == \
            repr(sorted(map(sorted, serial)))
        assert serial == minimal_keys(schema, sigma, "Course",
                                      strategy="worklist")

    def test_parallel_dense_sweep_identical_gated(self):
        from repro.paths import parse_path
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        spec = NonEmptySpec({parse_path("Course")})
        serial = minimal_keys(schema, sigma, "Course", nonempty=spec,
                              strategy="dense")
        assert minimal_keys(schema, sigma, "Course", nonempty=spec,
                            strategy="dense", jobs=2) == serial
        assert serial == minimal_keys(schema, sigma, "Course",
                                      nonempty=spec,
                                      strategy="worklist")
