"""Hypothesis strategies for schemas, paths, NFDs, and instances.

The strategies reuse the seeded random generators: a hypothesis-drawn
integer seeds a :class:`random.Random`, which keeps the generator logic
in one place and the strategies shrinkable (smaller seeds, smaller
shapes).
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.generators import (
    random_instance,
    random_nfd,
    random_schema,
    random_sigma,
)

__all__ = ["schemas", "schema_sigma", "schema_sigma_instance",
           "schema_sigma_candidate"]


@st.composite
def schemas(draw, max_fields: int = 3, max_depth: int = 2):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    return random_schema(rng, relations=1, max_fields=max_fields,
                         max_depth=max_depth, set_probability=0.5)


@st.composite
def schema_sigma(draw, max_nfds: int = 4):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=max_nfds))
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=count)
    return schema, sigma


@st.composite
def schema_sigma_instance(draw, empty_probability: float = 0.0):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    instance = random_instance(rng, schema, tuples=2, domain=2,
                               max_set_size=2,
                               empty_probability=empty_probability)
    return schema, sigma, instance


@st.composite
def schema_sigma_candidate(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    candidate = random_nfd(rng, schema, max_lhs=2)
    return schema, sigma, candidate
