"""Differential property tests: streaming vs the in-memory engine.

:func:`repro.nfd.stream_validate` must report **exactly** the
violations — same witnesses, same order — as
:meth:`repro.nfd.ValidatorEngine.validate` on the materialized
instance, whether the group tables stay resident or spill to disk, and
whether the elements arrive in one stream or sharded (including shards
split so that no single worker sees both elements of a clash).

The three seeded hypothesis tests run 100 examples each under the
default profile (≥ 300 randomized cases per run; the nightly profile
raises them to 1000 each — they deliberately do not pin
``max_examples``), and the explicit seed loops cover the JSONL
round-trip and the multiprocess fan-out.
"""

import random
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_instance, random_schema, random_sigma
from repro.io.stream import dump_jsonl, iter_set_elements, plan_shards
from repro.nfd import (
    ResourceBudget,
    ValidatorEngine,
    shard_validate,
    stream_validate,
)


def _draw_case(seed: int, empty_probability: float):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    instance = random_instance(rng, schema, tuples=rng.randint(2, 4),
                               domain=2,
                               empty_probability=empty_probability)
    return rng, schema, sigma, instance


def _reference(schema, sigma, instance):
    result = ValidatorEngine(schema, sigma).validate(
        instance, all_violations=True)
    return [v.describe() for v in result.violations]


def _sources(instance):
    return {name: iter_set_elements(value)
            for name, value in instance.relations()}


def _row_shards(rng, instance, relation):
    """Split the relation's serial walk into 2-3 contiguous row shards
    at random cut points (empty shards are legitimate)."""
    ordered = list(instance.relation(relation))
    count = rng.randint(2, 3)
    cuts = sorted(rng.randint(0, len(ordered)) for _ in range(count - 1))
    shards = []
    lo = 0
    for cut in cuts + [len(ordered)]:
        shards.append(("rows", ordered[lo:cut]))
        lo = cut
    return shards


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_adapter_stream_matches_engine(seed):
    """Unbudgeted streaming over the in-memory adapter is witness-exact."""
    _, schema, sigma, instance = _draw_case(seed, empty_probability=0.2)
    expected = _reference(schema, sigma, instance)
    result = stream_validate(schema, sigma, _sources(instance))
    assert [v.describe() for v in result.violations] == expected
    assert result.ok == (not expected)
    assert result.budget_exhausted is None


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_spilling_stream_matches_engine(seed):
    """A 2-row budget forces external sort-merge grouping; witnesses
    and order must not change, and residency must respect the cap."""
    _, schema, sigma, instance = _draw_case(seed, empty_probability=0.3)
    expected = _reference(schema, sigma, instance)
    result = stream_validate(schema, sigma, _sources(instance),
                             budget=ResourceBudget(max_resident_rows=2))
    assert [v.describe() for v in result.violations] == expected
    assert result.stats.peak_resident_rows <= 2
    if result.stats.rows_spilled:
        assert result.stats.spills >= 1
        assert result.stats.runs_written >= 1


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_sharded_stream_matches_engine(seed):
    """Random contiguous row shards (any clash may straddle a shard
    boundary) merge to the serial witnesses, budgeted and not."""
    rng, schema, sigma, instance = _draw_case(seed,
                                              empty_probability=0.2)
    if not sigma:  # nothing to shard over; trivially consistent
        return
    relation = sigma[0].relation
    expected = _reference(schema, sigma, instance)
    shards = _row_shards(rng, instance, relation)
    result = shard_validate(schema, sigma, relation, shards)
    assert [v.describe() for v in result.violations] == expected
    budgeted = shard_validate(
        schema, sigma, relation, shards,
        budget=ResourceBudget(max_resident_rows=2))
    assert [v.describe() for v in budgeted.violations] == expected
    assert budgeted.stats.peak_resident_rows <= 2


def test_jsonl_shards_match_engine():
    """Dump → plan_shards → shard_validate equals the in-memory run."""
    checked = 0
    for seed in range(40):
        _, schema, sigma, instance = _draw_case(
            seed * 7919, empty_probability=0.2)
        if not sigma:
            continue
        relation = sigma[0].relation
        if len(instance.relation(relation)) == 0:
            continue  # plan_shards rejects empty dumps by contract
        expected = _reference(schema, sigma, instance)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "relation.jsonl"
            dump_jsonl(path, iter_set_elements(
                instance.relation(relation)))
            result = shard_validate(schema, sigma, relation,
                                    plan_shards(path, 3))
        assert [v.describe() for v in result.violations] == expected
        checked += 1
    assert checked >= 20


def test_parallel_shard_workers_match_serial():
    """jobs=2 (a real process pool) changes nothing about the result."""
    checked = 0
    for seed in range(8):
        rng, schema, sigma, instance = _draw_case(
            seed * 104_729, empty_probability=0.2)
        if not sigma:
            continue
        relation = sigma[0].relation
        expected = _reference(schema, sigma, instance)
        shards = _row_shards(rng, instance, relation)
        result = shard_validate(schema, sigma, relation, shards,
                                jobs=2)
        assert [v.describe() for v in result.violations] == expected
        assert result.completed_shards == tuple(range(len(shards)))
        checked += 1
    assert checked >= 5
