"""Differential tests: worklist saturation vs. the naive reference.

The worklist engine (indexed, delta-driven) and the retained
``strategy="naive"`` global fixpoint share one single-step rule, so both
compute the least fixpoint of the same monotone operator and must agree
exactly — on every closure, at relation-name and nested bases, in both
the plain Section 3.1 mode and the non-empty-gated Section 3.2 mode.

A deterministic seed sweep guarantees the advertised case count (the
acceptance bar is >= 200 randomized (schema, Sigma, query) cases across
the two modes) independent of hypothesis profiles; a hypothesis wrapper
adds shrinking on failure.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_schema, random_sigma
from repro.inference import ClosureEngine, NonEmptySpec
from repro.paths import Path, relation_paths, set_paths

SEEDS_PER_MODE = 40
QUERIES_PER_CASE = 3


def _draw(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4), max_lhs=2)
    relation = schema.relation_names[0]
    paths = relation_paths(schema, relation)
    return rng, schema, sigma, relation, paths


def _partial_spec(rng: random.Random, schema, relation: str) \
        -> NonEmptySpec:
    declared = {Path((relation,))}
    for p in set_paths(schema, relation):
        if rng.random() < 0.5:
            declared.add(Path((relation,)).concat(p))
    return NonEmptySpec(declared)


def _check_agreement(seed: int, gated: bool) -> None:
    rng, schema, sigma, relation, paths = _draw(seed)
    spec = _partial_spec(rng, schema, relation) if gated else None
    fast = ClosureEngine(schema, sigma, nonempty=spec)
    slow = ClosureEngine(schema, sigma, nonempty=spec, strategy="naive")
    assert fast.strategy == "worklist"
    base = Path((relation,))
    for _ in range(QUERIES_PER_CASE):
        lhs = frozenset(rng.sample(paths,
                                   min(len(paths), rng.randint(0, 2))))
        assert fast.closure_simple(relation, lhs) == \
            slow.closure_simple(relation, lhs), (sigma, spec, lhs)
        assert fast.closure(base, lhs) == slow.closure(base, lhs), \
            (sigma, spec, lhs)
    # nested bases exercise the simple-form translation and, in gated
    # mode, the pull-out gate of ClosureEngine.closure
    nested = list(set_paths(schema, relation))
    for tail in nested[:2]:
        nested_base = base.concat(tail)
        assert fast.closure(nested_base, ()) == \
            slow.closure(nested_base, ()), (sigma, spec, nested_base)


@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_worklist_equals_naive_plain(seed):
    _check_agreement(seed, gated=False)


@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_worklist_equals_naive_gated(seed):
    _check_agreement(seed, gated=True)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000),
       st.booleans())
def test_worklist_equals_naive_hypothesis(seed, gated):
    """Shrinkable variant of the seed sweep above."""
    _check_agreement(seed, gated)


@pytest.mark.parametrize("seed", range(10))
def test_worklist_does_less_work(seed):
    """The point of the index: strictly fewer step attempts, identical
    successes (both strategies derive exactly the closure)."""
    rng, schema, sigma, relation, paths = _draw(seed)
    fast = ClosureEngine(schema, sigma)
    slow = ClosureEngine(schema, sigma, strategy="naive")
    base = Path((relation,))
    for p in paths:
        assert fast.closure(base, frozenset([p])) == \
            slow.closure(base, frozenset([p]))
    assert fast.stats.attempts <= slow.stats.attempts
    assert fast.stats.successes == slow.stats.successes
