"""Canonical encoding injectivity, with a numeric-heavy strategy.

The streaming group tables key on :func:`canonical_bytes`, so the
encoding must be a *bijection up to value equality*:

* **soundness** — equal values encode to identical bytes (otherwise a
  group splits and a real clash is missed);
* **injectivity** — distinct values encode to distinct bytes (otherwise
  two groups fuse and a phantom clash is reported).

The strategy is deliberately numeric-heavy: ``1`` vs ``1.0`` vs
``True``, ``0.0`` vs ``-0.0``, huge ints whose decimal widths collide,
and floats whose ``repr`` is a prefix of another's — exactly the
corners where an encoding that leans on Python's cross-type ``==`` or
on unframed string concatenation goes wrong.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.values import Atom, InternPool, Record, SetValue
from repro.values.canonical import canonical_bytes, canonical_key_bytes

# Numbers chosen to collide across types or widths: bool/int/float
# triples of the same magnitude, signed zeros, ints at float-precision
# boundaries, and floats that print as prefixes of other floats.
_TRICKY_NUMBERS = [
    0, 1, -1, True, False, 0.0, -0.0, 1.0, -1.0, 0.5, 1.5,
    2**31, 2**31 + 1, 2**53, 2**53 + 1, float(2**53), -2**63,
    10, 100, 1000, 10.0, 100.0, 1e2, 1e3, 1e300, -1e300,
    0.1, 0.10000000000000001, 1/3, 2/3,
]

_atoms = st.one_of(
    st.sampled_from(_TRICKY_NUMBERS),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=True),
    st.booleans(),
    st.sampled_from(["", "0", "1", "1.0", "True", "i", "f", "s", "R"]),
    st.text(max_size=6),
).map(Atom)

_labels = st.sampled_from(["A", "B", "C", "D"])


def _values(depth: int = 2):
    if depth == 0:
        return _atoms
    sub = _values(depth - 1)
    return st.one_of(
        _atoms,
        st.lists(st.tuples(_labels, sub), min_size=1, max_size=3,
                 unique_by=lambda pair: pair[0]).map(Record),
        st.lists(sub, max_size=3).map(SetValue),
    )


@settings(deadline=None)
@given(_values(), _values())
def test_bytes_equal_iff_values_equal(u, v):
    """Both directions of the grouping contract in one property."""
    assert (canonical_bytes(u) == canonical_bytes(v)) == (u == v)


@settings(deadline=None)
@given(_values())
def test_encoding_is_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(value)


@settings(deadline=None)
@given(st.lists(_values(1), min_size=1, max_size=3),
       st.lists(_values(1), min_size=1, max_size=3))
def test_key_bytes_equal_iff_key_tuples_equal(left, right):
    """Composite keys frame their parts: a 2-part key can never
    collide with a differently-split 2-part key or a 1-part key."""
    same = len(left) == len(right) and \
        all(a == b for a, b in zip(left, right))
    assert (canonical_key_bytes(tuple(left)) ==
            canonical_key_bytes(tuple(right))) == same


@settings(deadline=None)
@given(st.lists(_values(1), min_size=1, max_size=3))
def test_pooled_key_bytes_match_unpooled(parts):
    """The intern pool is a cache, never an encoding change."""
    pool = InternPool(max_entries=4)  # tiny: forces eviction mid-key
    scratch = bytearray()
    key = tuple(parts)
    assert canonical_key_bytes(key, pool=pool, scratch=scratch) == \
        canonical_key_bytes(key)
    # and again, now that every part is (maybe) pooled
    assert canonical_key_bytes(key, pool=pool, scratch=scratch) == \
        canonical_key_bytes(key)


def test_numeric_triples_stay_apart():
    """The classic cross-type equalities must not merge groups."""
    for a, b in [(Atom(1), Atom(1.0)), (Atom(1), Atom(True)),
                 (Atom(1.0), Atom(True)), (Atom(0), Atom(False)),
                 (Atom(0), Atom(0.0)), (Atom(0.0), Atom(False))]:
        assert a != b
        assert canonical_bytes(a) != canonical_bytes(b)


def test_signed_zero_merges():
    """0.0 == -0.0 inside the float type, so one group."""
    assert canonical_bytes(Atom(0.0)) == canonical_bytes(Atom(-0.0))


def test_float_int_same_repr_stay_apart():
    """1e16 prints like an int at full precision; the type tag must
    still separate it from the equal-magnitude int."""
    as_float = Atom(1e16)
    as_int = Atom(10_000_000_000_000_000)
    assert not math.isnan(1e16)
    assert as_float != as_int
    assert canonical_bytes(as_float) != canonical_bytes(as_int)
