"""Property tests: algebraic laws of the closure operator.

The closure ``(x0, X, Sigma)*`` is a closure operator in the lattice
sense: extensive (reflexivity), monotone (augmentation), and idempotent
(transitivity saturation).  Additional laws tie the engine to its inputs:
more dependencies never shrink a closure, and the non-empty-gated engine
never exceeds the ungated one.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_schema, random_sigma
from repro.inference import ClosureEngine, NonEmptySpec
from repro.paths import Path, relation_paths


def _draw(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4))
    relation = schema.relation_names[0]
    paths = relation_paths(schema, relation)
    lhs = frozenset(rng.sample(paths, min(len(paths),
                                          rng.randint(0, 2))))
    return schema, sigma, relation, paths, lhs, rng


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_extensive(seed):
    schema, sigma, relation, _, lhs, _ = _draw(seed)
    engine = ClosureEngine(schema, sigma)
    assert lhs <= engine.closure(Path((relation,)), lhs)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_idempotent(seed):
    schema, sigma, relation, _, lhs, _ = _draw(seed)
    engine = ClosureEngine(schema, sigma)
    base = Path((relation,))
    once = engine.closure(base, lhs)
    twice = engine.closure(base, once)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_monotone_in_lhs(seed):
    schema, sigma, relation, paths, lhs, rng = _draw(seed)
    engine = ClosureEngine(schema, sigma)
    base = Path((relation,))
    extra = frozenset(rng.sample(paths, min(len(paths), 1)))
    small = engine.closure(base, lhs)
    large = engine.closure(base, lhs | extra)
    assert small <= large


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_monotone_in_sigma(seed):
    schema, sigma, relation, _, lhs, _ = _draw(seed)
    base = Path((relation,))
    fewer = ClosureEngine(schema, sigma[:-1]).closure(base, lhs)
    more = ClosureEngine(schema, sigma).closure(base, lhs)
    assert fewer <= more


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_gated_engine_is_weaker(seed):
    schema, sigma, relation, paths, lhs, rng = _draw(seed)
    base = Path((relation,))
    set_valued = [p for p in paths if len(p) < max(len(q) for q in paths)]
    except_paths = [Path((relation,)).concat(p)
                    for p in rng.sample(set_valued,
                                        min(1, len(set_valued)))]
    spec = NonEmptySpec.for_schema(schema, except_paths=except_paths)
    gated = ClosureEngine(schema, sigma, nonempty=spec)
    ungated = ClosureEngine(schema, sigma)
    assert gated.closure(base, lhs) <= ungated.closure(base, lhs)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_all_nonempty_spec_equals_default(seed):
    schema, sigma, relation, _, lhs, _ = _draw(seed)
    base = Path((relation,))
    explicit = ClosureEngine(schema, sigma,
                             nonempty=NonEmptySpec.all_nonempty())
    default = ClosureEngine(schema, sigma)
    assert explicit.closure(base, lhs) == default.closure(base, lhs)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_engine_matches_brute_force(seed):
    """The efficient strategy equals exhaustive rule application."""
    from repro.errors import InferenceError
    from repro.inference import BruteForceProver

    schema, sigma, relation, paths, lhs, _ = _draw(seed)
    if len(paths) > 6:
        return  # brute-force space too large; other seeds cover this
    try:
        prover = BruteForceProver(schema, sigma, max_paths=6)
    except InferenceError:
        return
    engine = ClosureEngine(schema, sigma)
    base = Path((relation,))
    assert engine.closure(base, lhs) == prover.closure(base, lhs)
