"""Property tests: view propagation soundness and proof certificates."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    random_nfd,
    random_satisfying_instance,
    random_schema,
    random_sigma,
)
from repro.inference import ClosureEngine, compile_proof
from repro.nfd import satisfies_all_fast
from repro.types.base import BaseType
from repro.values import Instance
from repro.views import Base, evaluate, propagate_nfds, view_schema


def _random_view(rng, expr, schema, steps):
    """Grow a random pipeline over a nested schema."""
    from repro.views import output_type

    nest_counter = 0
    for _ in range(steps):
        element = output_type(expr, schema).element
        labels = list(element.labels)
        base_attrs = [label for label in labels
                      if isinstance(element.field(label), BaseType)]
        set_attrs = [label for label in labels
                     if not isinstance(element.field(label), BaseType)]
        op = rng.randrange(4)
        if op == 0 and len(labels) > 1:
            keep = rng.sample(labels, rng.randint(1, len(labels) - 1))
            expr = expr.project(*keep)
        elif op == 1 and base_attrs:
            expr = expr.select(rng.choice(base_attrs), rng.randrange(2))
        elif op == 2 and set_attrs:
            expr = expr.unnest(rng.choice(set_attrs))
        elif op == 3 and base_attrs and len(labels) > 1:
            nested = rng.sample(base_attrs,
                                rng.randint(1, len(base_attrs)))
            if len(nested) < len(labels):
                nest_counter += 1
                expr = expr.nest(f"VN{nest_counter}", nested)
    return expr


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_view_propagation_is_sound(seed):
    """Propagated NFDs hold on every materialized view of every
    Sigma-satisfying (empty-set-free) source instance."""
    from repro.errors import ReproError

    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.4)
    relation = schema.relation_names[0]
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    instance = random_satisfying_instance(rng, schema, sigma, tuples=2,
                                          domain=2, max_attempts=80)
    if instance is None:
        return
    expr = _random_view(rng, Base(relation), schema,
                        steps=rng.randint(1, 3))
    try:
        carried = propagate_nfds(expr, schema, sigma)
        target_schema = view_schema(expr, schema)
        view_value = evaluate(expr, instance)
    except ReproError:
        return  # the random pipeline was ill-formed (e.g. label clash)
    view_instance = Instance(target_schema, {"View": view_value})
    assert satisfies_all_fast(view_instance, carried), \
        (expr, sigma, carried, instance)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_proof_certificates_for_implied_nfds(seed):
    """compile_proof succeeds on every implied NFD and concludes it."""
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    engine = ClosureEngine(schema, sigma)
    for _ in range(4):
        candidate = random_nfd(rng, schema, max_lhs=2,
                               local_probability=0.4)
        if not engine.implies(candidate):
            continue
        proof = compile_proof(engine, candidate)
        assert proof.conclusion() == candidate
        assert len(proof) >= 1
