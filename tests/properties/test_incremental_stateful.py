"""Stateful property test: the incremental checker vs batch checking.

Hypothesis drives random insert/remove/dry-run scripts against the
incremental checker while a shadow batch check (re-validating the
materialized instance from scratch) verifies the consistency verdict
after every step.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.generators import random_instance, random_schema, random_sigma
from repro.incremental import IncrementalChecker
from repro.nfd import satisfies_all_fast


class IncrementalCheckerMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=10_000))
    def setup(self, seed):
        rng = random.Random(seed)
        self.schema = random_schema(rng, relations=1, max_fields=3,
                                    max_depth=2, set_probability=0.5)
        self.relation = self.schema.relation_names[0]
        self.sigma = random_sigma(rng, self.schema,
                                  count=rng.randint(1, 3))
        self.checker = IncrementalChecker(self.schema, self.sigma)
        # a fixed pool so inserts collide often enough to conflict
        self.pool = [
            next(iter(random_instance(rng, self.schema, tuples=1,
                                      domain=2).relation(self.relation)))
            for _ in range(5)
        ]
        self.present: list = []

    @rule(index=st.integers(min_value=0, max_value=4))
    def insert(self, index):
        row = self.pool[index]
        self.checker.insert(self.relation, row)
        if row not in self.present:
            self.present.append(row)

    @precondition(lambda self: self.present)
    @rule(data=st.data())
    def remove(self, data):
        row = data.draw(st.sampled_from(self.present))
        self.present.remove(row)
        self.checker.remove(self.relation, row)

    @rule(index=st.integers(min_value=0, max_value=4))
    def dry_run_does_not_change_state(self, index):
        before = self.checker.conflicts()
        self.checker.check_insert(self.relation, self.pool[index])
        assert self.checker.conflicts() == before

    @invariant()
    def verdict_matches_batch_check(self):
        if not hasattr(self, "checker"):
            return
        instance = self.checker.to_instance()
        assert self.checker.is_consistent() == \
            satisfies_all_fast(instance, self.sigma)

    @invariant()
    def tuple_count_matches(self):
        if not hasattr(self, "checker"):
            return
        assert len(self.checker) == len(self.present)


IncrementalCheckerMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None)

TestIncrementalCheckerStateful = IncrementalCheckerMachine.TestCase
