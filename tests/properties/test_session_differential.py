"""Differential tests: ImplicationSession vs fresh ClosureEngines.

The session layers a bounded memo, subset-closure seeding, and
copy-on-write Sigma probes over the engine; none of that machinery may
change an answer.  Each case draws a random (schema, Sigma), serves a
repetitive query stream through one session — repeating queries (memo
hits), growing LHSs (seed reuse), a deliberately tiny memo bound
(forced evictions), and interleaved ``without``/``with_added`` probes —
and checks every answer against a fresh engine over the corresponding
Sigma.

A deterministic seed sweep guarantees the advertised case count (the
acceptance bar is >= 200 randomized cases across the plain and gated
modes); a hypothesis wrapper adds shrinking on failure.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_schema, random_sigma
from repro.inference import ClosureEngine, ImplicationSession, NonEmptySpec
from repro.paths import Path, relation_paths, set_paths

SEEDS_PER_MODE = 100
#: Small enough that the query stream below always overflows it.
TINY_MEMO = 4


def _draw(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4), max_lhs=2)
    relation = schema.relation_names[0]
    paths = relation_paths(schema, relation)
    return rng, schema, sigma, relation, paths


def _partial_spec(rng: random.Random, schema, relation: str) \
        -> NonEmptySpec:
    declared = {Path((relation,))}
    for p in set_paths(schema, relation):
        if rng.random() < 0.5:
            declared.add(Path((relation,)).concat(p))
    return NonEmptySpec(declared)


def _query_stream(rng: random.Random, paths):
    """Nested LHS chains plus repeats: the shapes that hit the memo,
    the seeder, and (with TINY_MEMO) the evictor."""
    queries = []
    for _ in range(3):
        chain = rng.sample(paths, min(len(paths), rng.randint(1, 3)))
        for cut in range(1, len(chain) + 1):
            queries.append(frozenset(chain[:cut]))
    queries.extend(rng.sample(queries, min(len(queries), 4)))
    queries.append(frozenset())
    return queries


def _check_agreement(seed: int, gated: bool) -> None:
    rng, schema, sigma, relation, paths = _draw(seed)
    spec = _partial_spec(rng, schema, relation) if gated else None
    session = ImplicationSession(schema, sigma, spec,
                                 max_memo=TINY_MEMO)
    reference = ClosureEngine(schema, sigma, nonempty=spec)
    base = Path((relation,))

    for lhs in _query_stream(rng, paths):
        assert session.closure_simple(relation, lhs) == \
            reference.closure_simple(relation, lhs), (sigma, spec, lhs)
        assert session.closure(base, lhs) == \
            reference.closure(base, lhs), (sigma, spec, lhs)

    # interleaved copy-on-write probes answer like fresh engines over
    # the perturbed Sigma...
    probe_lhs = frozenset(rng.sample(paths, min(len(paths), 2)))
    if sigma:
        index = rng.randrange(len(sigma))
        rest = sigma[:index] + sigma[index + 1:]
        assert session.without(index).closure_simple(relation, probe_lhs) \
            == ClosureEngine(schema, rest, nonempty=spec) \
            .closure_simple(relation, probe_lhs), (sigma, spec, index)
        extra = sigma[index]
        grown = sigma + [extra]
        assert session.with_added(extra) \
            .closure_simple(relation, probe_lhs) == \
            ClosureEngine(schema, grown, nonempty=spec) \
            .closure_simple(relation, probe_lhs), (sigma, spec, index)

    # ...and the probed session keeps answering for the original Sigma,
    # memo evictions and all
    for lhs in _query_stream(rng, paths):
        assert session.closure_simple(relation, lhs) == \
            reference.closure_simple(relation, lhs), (sigma, spec, lhs)
    assert session.stats.evictions > 0 or \
        session.stats.memo_size <= TINY_MEMO


@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_session_equals_fresh_engine_plain(seed):
    _check_agreement(seed, gated=False)


@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
def test_session_equals_fresh_engine_gated(seed):
    _check_agreement(seed, gated=True)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000),
       st.booleans())
def test_session_equals_fresh_engine_hypothesis(seed, gated):
    """Shrinkable variant of the seed sweep above."""
    _check_agreement(seed, gated)
