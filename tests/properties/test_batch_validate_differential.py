"""Differential property tests: the batch engine vs the reference checkers.

:class:`repro.nfd.ValidatorEngine` compiles shared path-trie plans and
validates a whole Σ in one walk; these tests pin its verdicts to the
literal Definition-2.4 checker (`satisfies`) and the hash-grouped one
(`satisfies_fast`) *per NFD*, across randomized schemas, constraint
sets, and instances — including instances with empty sets (the
trivially-true escape clause) and hence partially defined paths.

Together the three seeds-based tests run ≥ 200 randomized cases.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_instance, random_schema, random_sigma
from repro.nfd import (
    ValidatorEngine,
    satisfies,
    satisfies_all,
    satisfies_all_fast,
    satisfies_fast,
)


def _draw_case(seed: int, empty_probability: float):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4))
    instance = random_instance(rng, schema, tuples=3, domain=2,
                               empty_probability=empty_probability)
    return schema, sigma, instance


def _assert_engine_agrees(schema, sigma, instance):
    engine = ValidatorEngine(schema, sigma)
    result = engine.validate(instance, all_violations=True)
    expected_failed = {nfd for nfd in sigma
                       if not satisfies(instance, nfd)}
    assert set(result.failed) == expected_failed
    assert engine.check(instance) == (not expected_failed)
    for nfd in sigma:
        assert satisfies_fast(instance, nfd) == \
            satisfies(instance, nfd)
    assert engine.satisfies_all(instance) == \
        satisfies_all(instance, sigma) == \
        satisfies_all_fast(instance, sigma)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_engine_agrees_without_empty_sets(seed):
    schema, sigma, instance = _draw_case(seed, empty_probability=0.0)
    _assert_engine_agrees(schema, sigma, instance)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_engine_agrees_with_empty_sets(seed):
    """Empty sets exercise the Definition 2.4 escape clause: paths that
    run into an empty set are undefined and constrain nothing."""
    schema, sigma, instance = _draw_case(seed, empty_probability=0.3)
    _assert_engine_agrees(schema, sigma, instance)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_single_nfd_engine_matches_both_checkers(seed):
    """Per-NFD engines (the find_violation path) agree with both
    reference checkers, heavier on empty sets."""
    schema, sigma, instance = _draw_case(seed, empty_probability=0.5)
    for nfd in sigma:
        engine = ValidatorEngine(schema, (nfd,))
        verdict = engine.check(instance)
        assert verdict == satisfies(instance, nfd)
        assert verdict == satisfies_fast(instance, nfd)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_exhaustive_violations_cover_every_failed_nfd(seed):
    """Every violated NFD contributes at least one witness, witnesses
    come in Σ order, and each witness really disagrees on its RHS."""
    schema, sigma, instance = _draw_case(seed, empty_probability=0.2)
    engine = ValidatorEngine(schema, sigma)
    result = engine.validate(instance, all_violations=True)
    order = {nfd: pos for pos, nfd in enumerate(sigma)}
    positions = [order[v.nfd] for v in result.violations]
    assert positions == sorted(positions)
    for violation in result.violations:
        assert violation.rhs_value1 != violation.rhs_value2
        assert not satisfies(instance, violation.nfd)
