"""Differential property tests: the persistent cache is invisible.

The store is a pure accelerator, so for any random schema/Σ/instance
the full cache-mode matrix — no cache, cold cache, warm cache,
read-only warm cache — must produce byte-identical witness
descriptions and closures.  Each hypothesis case runs the whole
matrix, so the default profile's 100 examples exercise several hundred
cached validations per suite run (the nightly profile multiplies that
by 10), in the style of ``test_stream_tuning_differential``.

The concurrency half drives two OS processes writing the same WAL
database through :func:`repro.parallel.process_map`: the database must
stay uncorrupted (``PRAGMA integrity_check``), contended rows must
resolve to exactly one writer's value (last-writer-wins, never a
torn/merged row), and uncontended rows must read back verbatim.
"""

import json
import os
import random
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_instance, random_schema, \
    random_sigma
from repro.inference import ImplicationSession
from repro.io.stream import dump_jsonl, iter_jsonl_elements, \
    iter_set_elements
from repro.nfd import ValidatorEngine, stream_validate
from repro.parallel import process_map
from repro.paths import parse_path
from repro.store import CacheStore, cached_session, cached_validator, \
    incremental_stream_validate
from repro.values import to_python


def _draw_case(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
    instance = random_instance(rng, schema, tuples=rng.randint(2, 5),
                               domain=2, empty_probability=0.2)
    return schema, tuple(sigma), instance


def _witnesses(result):
    return [v.describe() for v in result.violations]


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_cache_mode_matrix_is_invisible(seed):
    """off / cold / warm / read-only-warm all agree, byte for byte."""
    schema, sigma, instance = _draw_case(seed)
    expected = _witnesses(ValidatorEngine(schema, sigma).validate(
        instance, all_violations=True))
    workdir = tempfile.mkdtemp(prefix="repro-storeprop-")
    try:
        with CacheStore(workdir) as store:
            cold = cached_validator(schema, sigma, store=store)
            assert cold.stats.plan_compilations == 1
            assert _witnesses(cold.validate(
                instance, all_violations=True)) == expected
        with CacheStore(workdir) as store:
            warm = cached_validator(schema, sigma, store=store)
            assert warm.stats.plan_compilations == 0
            assert _witnesses(warm.validate(
                instance, all_violations=True)) == expected
        reader = CacheStore(workdir, read_only=True)
        try:
            ro = cached_validator(schema, sigma, store=reader)
            assert ro.stats.plan_compilations == 0
            assert _witnesses(ro.validate(
                instance, all_violations=True)) == expected
        finally:
            reader.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_warm_sessions_answer_every_closure_identically(seed):
    """Cold-computed and store-restored closures agree on every base
    and every single-attribute LHS — and the warm pass saturates
    nothing."""
    schema, sigma, _ = _draw_case(seed)
    queries = []
    for relation in schema.relation_names:
        labels = schema.element_type(relation).labels
        base = parse_path(relation)
        queries.append((base, frozenset()))
        for label in labels:
            queries.append((base, frozenset({parse_path(label)})))
    plain = ImplicationSession(schema, sigma)
    expected = [plain.closure(base, lhs) for base, lhs in queries]
    workdir = tempfile.mkdtemp(prefix="repro-storeprop-")
    try:
        with CacheStore(workdir) as store:
            cold = cached_session(schema, sigma, store=store)
            assert [cold.closure(b, l) for b, l in queries] == expected
        with CacheStore(workdir) as store:
            warm = cached_session(schema, sigma, store=store)
            assert [warm.closure(b, l) for b, l in queries] == expected
            assert warm.engine.stats.attempts == 0
            assert warm.stats.store_hits == len(queries)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=0, max_value=10**6))
def test_incremental_resume_matches_cold_at_any_split(seed, cut):
    """Checkpoint after a random prefix, fold the rest incrementally:
    witnesses equal the full cold re-stream, at every split point."""
    schema, sigma, instance = _draw_case(seed)
    relation = schema.relation_names[0]
    rows = [to_python(e)
            for e in iter_set_elements(instance.relation(relation))]
    if not rows:
        return
    # split >= 1: an empty cold stream is a typed StreamError by
    # design (the CLI exits 2), not a checkpointable run
    split = 1 + cut % len(rows)
    workdir = tempfile.mkdtemp(prefix="repro-storeprop-")
    try:
        path = os.path.join(workdir, "stream.jsonl")
        dump_jsonl(path, instance.relation(relation).elements)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:split])
        with CacheStore(os.path.join(workdir, "cache")) as store:
            first, info = incremental_stream_validate(
                schema, sigma, relation, path, store=store)
            assert info["mode"] == "cold"
            with open(path, "a") as handle:
                handle.writelines(lines[split:])
            resumed, info = incremental_stream_validate(
                schema, sigma, relation, path, store=store)
            assert info["elements_folded"] == len(rows) - split
        cold = stream_validate(
            schema, sigma,
            {relation: iter_jsonl_elements(path, schema, relation,
                                           require_elements=False)})
        assert _witnesses(resumed) == _witnesses(cold)
        assert resumed.ok == cold.ok
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ------------------------------------------------- concurrent writers
# Module-level workers so the process pool can pickle them.

def _writer_setup(cache_dir):
    return CacheStore(cache_dir)


def _writer_probe(store, task):
    fp, relation, lhs_texts, closure_texts = task
    lhs = frozenset(parse_path(t) for t in lhs_texts)
    closure = frozenset(parse_path(t) for t in closure_texts)
    store.put_closure(fp, relation, lhs, closure)
    return store.stats.errors


class TestConcurrentWALWriters:
    def test_two_processes_share_one_store_without_corruption(
            self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        contended_a = ("a", "b")
        contended_b = ("a", "c")
        tasks = []
        for i in range(20):
            # every worker hammers the same contended row ...
            tasks.append(("fp", "R", ("a",),
                          contended_a if i % 2 else contended_b))
            # ... and owns one uncontended row of its own
            tasks.append(("fp", "R", (f"k{i}",), (f"k{i}", "z")))
        errors = process_map(_writer_setup, cache_dir, _writer_probe,
                             tasks, jobs=2)
        assert all(count == 0 for count in errors)
        with CacheStore(cache_dir) as store:
            assert store.integrity_check()
            # contended row: exactly one writer's value, never a merge
            winner = store.get_closure("fp", "R",
                                       frozenset({parse_path("a")}))
            candidates = [frozenset(parse_path(t) for t in texts)
                          for texts in (contended_a, contended_b)]
            assert winner in candidates
            # uncontended rows read back verbatim
            for i in range(20):
                row = store.get_closure(
                    "fp", "R", frozenset({parse_path(f"k{i}")}))
                assert row == frozenset({parse_path(f"k{i}"),
                                         parse_path("z")})

    def test_last_writer_wins_within_one_connection(self, tmp_path):
        with CacheStore(str(tmp_path / "cache")) as store:
            lhs = frozenset({parse_path("a")})
            first = frozenset({parse_path("a"), parse_path("b")})
            second = frozenset({parse_path("a"), parse_path("c")})
            store.put_closure("fp", "R", lhs, first)
            store.put_closure("fp", "R", lhs, second)
            assert store.get_closure("fp", "R", lhs) == second
