"""Property tests: the three satisfaction semantics and their relations.

* the literal Definition-2.4 checker and the hash-grouped checker agree
  on *every* instance (they implement the same definition);
* on instances without empty sets they also agree with the pure
  first-order evaluation of the Section 2.2 translation;
* with empty sets, Definition 2.4 is weaker than FOL (trivially-true
  clause): FOL-satisfaction implies Def-2.4-satisfaction.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import random_instance, random_nfd, random_schema
from repro.nfd import holds_fol, satisfies, satisfies_fast

from .strategies import schema_sigma_instance


def _draw_case(seed: int, empty_probability: float):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    nfd = random_nfd(rng, schema, max_lhs=2)
    instance = random_instance(rng, schema, tuples=2, domain=2,
                               empty_probability=empty_probability)
    return instance, nfd


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_fast_checker_agrees_everywhere(seed):
    instance, nfd = _draw_case(seed, empty_probability=0.3)
    assert satisfies_fast(instance, nfd) == satisfies(instance, nfd)


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_def_2_4_equals_fol_without_empty_sets(seed):
    instance, nfd = _draw_case(seed, empty_probability=0.0)
    assert satisfies(instance, nfd) == holds_fol(instance, nfd)


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_fol_is_at_least_as_strong_with_empty_sets(seed):
    instance, nfd = _draw_case(seed, empty_probability=0.4)
    if holds_fol(instance, nfd):
        assert satisfies(instance, nfd)


@settings(max_examples=60, deadline=None)
@given(schema_sigma_instance())
def test_violation_witness_iff_not_satisfied(case):
    from repro.nfd import find_violation
    _, sigma, instance = case
    for nfd in sigma:
        witness = find_violation(instance, nfd)
        assert (witness is None) == satisfies(instance, nfd)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_satisfaction_is_invariant_under_simple_form(seed):
    """Push-in/pull-out preserve meaning on every instance (Section 2.3
    claims equivalence; this is its semantic half)."""
    from repro.nfd import to_simple
    instance, nfd = _draw_case(seed, empty_probability=0.0)
    assert satisfies(instance, nfd) == satisfies(instance, to_simple(nfd))
