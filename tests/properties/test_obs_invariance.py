"""Instrumentation invariance: tracing can never change a result.

Every instrumented public entry point — closures and implication
(engine and session), batch validation, minimal keys, minimal covers,
chase repair — is run twice on the same randomized input: once with
``tracer=None`` (the default no-op path) and once with a live
:class:`repro.obs.Tracer`.  The public results must be identical, in
both the plain Section 3.1 mode and the non-empty-gated Section 3.2
mode; the traced run must additionally have recorded spans (so the
suite cannot pass vacuously with instrumentation unplugged).

A deterministic seed sweep guarantees the advertised case count
(>= 200 randomized cases across the entry points and modes)
independent of hypothesis profiles; hypothesis wrappers add shrinking
on failure.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import minimal_cover, minimal_keys, non_redundant
from repro.chase import repair
from repro.generators import (
    random_instance,
    random_nfd,
    random_schema,
    random_sigma,
)
from repro.inference import ImplicationSession, NonEmptySpec
from repro.nfd import ValidatorEngine
from repro.obs import Tracer
from repro.paths import Path, relation_paths, set_paths

CLOSURE_SEEDS = 40       # x2 modes = 80 cases
VALIDATE_SEEDS = 40      # 40 cases
KEYS_SEEDS = 20          # x2 modes = 40 cases
COVER_SEEDS = 20         # x2 modes = 40 cases
REPAIR_SEEDS = 20        # 20 cases
# total: 220 deterministic cases, plus the hypothesis wrappers


def _draw(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, relations=1, max_fields=3, max_depth=2,
                           set_probability=0.5)
    sigma = random_sigma(rng, schema, count=rng.randint(1, 4), max_lhs=2)
    relation = schema.relation_names[0]
    return rng, schema, sigma, relation


def _partial_spec(rng: random.Random, schema, relation: str) \
        -> NonEmptySpec:
    declared = {Path((relation,))}
    for p in set_paths(schema, relation):
        if rng.random() < 0.5:
            declared.add(Path((relation,)).concat(p))
    return NonEmptySpec(declared)


def _assert_traced(tracer: Tracer) -> None:
    """The traced run must actually have recorded something."""
    assert tracer.spans(), "tracer recorded no spans — wiring unplugged?"


def _check_closure_invariance(seed: int, gated: bool) -> None:
    rng, schema, sigma, relation = _draw(seed)
    spec = _partial_spec(rng, schema, relation) if gated else None
    paths = relation_paths(schema, relation)
    queries = [
        frozenset(rng.sample(paths, min(len(paths), rng.randint(0, 2))))
        for _ in range(3)
    ]
    candidate = random_nfd(rng, schema, max_lhs=2)
    base = Path((relation,))

    plain = ImplicationSession(schema, sigma, spec)
    tracer = Tracer()
    traced = ImplicationSession(schema, sigma, spec, tracer=tracer)
    for lhs in queries:
        assert traced.closure(base, lhs) == plain.closure(base, lhs), \
            (sigma, spec, lhs)
    # repeat one query so the traced session exercises its memo-hit path
    assert traced.closure(base, queries[0]) == \
        plain.closure(base, queries[0])
    assert traced.implies(candidate) == plain.implies(candidate), \
        (sigma, spec, candidate)
    assert traced.snapshot().queries == plain.snapshot().queries
    _assert_traced(tracer)


def _check_validate_invariance(seed: int) -> None:
    rng, schema, sigma, relation = _draw(seed)
    instance = random_instance(rng, schema, tuples=3, domain=2,
                               max_set_size=2, empty_probability=0.2)
    plain = ValidatorEngine(schema, sigma)
    tracer = Tracer()
    traced = ValidatorEngine(schema, sigma, tracer=tracer)
    for all_violations in (False, True):
        expected = plain.validate(instance, all_violations=all_violations)
        actual = traced.validate(instance, all_violations=all_violations)
        assert actual.ok == expected.ok
        assert [v.describe() for v in actual.violations] == \
            [v.describe() for v in expected.violations], (sigma, instance)
    _assert_traced(tracer)


def _check_keys_invariance(seed: int, gated: bool) -> None:
    rng, schema, sigma, relation = _draw(seed)
    spec = _partial_spec(rng, schema, relation) if gated else None
    plain = minimal_keys(schema, sigma, relation, nonempty=spec)
    tracer = Tracer()
    session = ImplicationSession(schema, sigma, spec, tracer=tracer)
    traced = minimal_keys(schema, sigma, relation, engine=session,
                          nonempty=spec)
    assert traced == plain, (sigma, spec)
    _assert_traced(tracer)


def _check_cover_invariance(seed: int, gated: bool) -> None:
    rng, schema, sigma, relation = _draw(seed)
    spec = _partial_spec(rng, schema, relation) if gated else None
    plain_cover = minimal_cover(schema, sigma, spec)
    plain_nr = non_redundant(schema, sigma, spec)
    tracer = Tracer()
    session = ImplicationSession(schema, list(sigma), spec,
                                 tracer=tracer)
    traced_cover = minimal_cover(schema, list(sigma), spec,
                                 session=session)
    assert traced_cover == plain_cover, (sigma, spec)
    tracer2 = Tracer()
    session2 = ImplicationSession(schema, list(sigma), spec,
                                  tracer=tracer2)
    traced_nr = non_redundant(schema, list(sigma), spec,
                              session=session2)
    assert traced_nr == plain_nr, (sigma, spec)
    _assert_traced(tracer)


def _check_repair_invariance(seed: int) -> None:
    rng, schema, sigma, relation = _draw(seed)
    instance = random_instance(rng, schema, tuples=3, domain=2,
                               max_set_size=2, empty_probability=0.1)
    plain = repair(instance, sigma)
    tracer = Tracer()
    traced = repair(instance, sigma, tracer=tracer)
    assert traced == plain, (sigma, instance)
    assert tracer.spans("chase.repair"), "repair span missing"


@pytest.mark.parametrize("seed", range(CLOSURE_SEEDS))
def test_closure_invariance_plain(seed):
    _check_closure_invariance(seed, gated=False)


@pytest.mark.parametrize("seed", range(CLOSURE_SEEDS))
def test_closure_invariance_gated(seed):
    _check_closure_invariance(seed, gated=True)


@pytest.mark.parametrize("seed", range(VALIDATE_SEEDS))
def test_validate_invariance(seed):
    _check_validate_invariance(seed)


@pytest.mark.parametrize("seed", range(KEYS_SEEDS))
def test_keys_invariance_plain(seed):
    _check_keys_invariance(seed, gated=False)


@pytest.mark.parametrize("seed", range(KEYS_SEEDS))
def test_keys_invariance_gated(seed):
    _check_keys_invariance(seed, gated=True)


@pytest.mark.parametrize("seed", range(COVER_SEEDS))
def test_cover_invariance_plain(seed):
    _check_cover_invariance(seed, gated=False)


@pytest.mark.parametrize("seed", range(COVER_SEEDS))
def test_cover_invariance_gated(seed):
    _check_cover_invariance(seed, gated=True)


@pytest.mark.parametrize("seed", range(REPAIR_SEEDS))
def test_repair_invariance(seed):
    _check_repair_invariance(seed)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       gated=st.booleans())
@settings(max_examples=25, deadline=None)
def test_closure_invariance_hypothesis(seed, gated):
    _check_closure_invariance(seed, gated)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_validate_invariance_hypothesis(seed):
    _check_validate_invariance(seed)
