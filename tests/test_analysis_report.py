"""Unit tests for the constraint-analysis report."""

from repro.analysis import analyze_constraints
from repro.generators import workloads
from repro.nfd import parse_nfd, parse_nfds
from repro.paths import parse_path
from repro.types import parse_schema


class TestAnalyzeConstraints:
    def test_course_report(self):
        report = analyze_constraints(workloads.course_schema(),
                                     workloads.course_sigma())
        assert frozenset({parse_path("cnum")}) in report.keys["Course"]
        assert report.trivial == []
        text = report.to_text()
        assert "minimal keys" in text
        assert "cnum" in text

    def test_acedb_report(self):
        report = analyze_constraints(workloads.acedb_schema(),
                                     workloads.acedb_sigma())
        singles = {str(p) for p in report.singletons["Gene"]}
        assert singles == {"name", "map_position"}
        assert len(report.cover) == len(report.sigma)

    def test_trivial_and_redundant_detection(self):
        schema = parse_schema("R = {<A, B, C>}")
        sigma = parse_nfds("""
            R:[A -> A]
            R:[A -> B]
            R:[B -> C]
            R:[A -> C]
        """)
        report = analyze_constraints(schema, sigma)
        assert report.trivial == [parse_nfd("R:[A -> A]")]
        assert parse_nfd("R:[A -> C]") in report.redundant
        assert parse_nfd("R:[A -> A]") in report.redundant
        assert len(report.cover) == 2
        text = report.to_text()
        assert "trivial members" in text
        assert "redundant members" in text

    def test_disjoint_or_equal_reported(self):
        schema = parse_schema("R = {<S: {<C, T>}, W>}")
        report = analyze_constraints(schema, parse_nfds("R:[S:C -> S]"))
        assert report.disjoint_or_equal["R"] == [parse_path("S")]
        assert "equal-or-disjoint" in report.to_text()

    def test_multi_relation(self):
        report = analyze_constraints(workloads.warehouse_schema(),
                                     workloads.warehouse_sigma())
        assert set(report.keys) == {"StoreA", "StoreB", "Warehouse"}
        assert frozenset({parse_path("order_id")}) in \
            report.keys["StoreA"]
