"""CLI tests for the persistent cache: warm starts, the ``cache``
subcommand, ``--incremental`` streaming, and corruption fallback.

The acceptance gates live here: a warm second ``check`` of the same Σ
performs zero plan compilations, a warm ``implies`` performs zero
saturation rule applications — both asserted through the obs counters
(``--metrics-json``) — and a corrupted database changes neither stdout
nor the exit code.
"""

import json
import os

import pytest

from repro.cli import main
from repro.generators import workloads
from repro.io import dump_bundle
from repro.store import DB_FILENAME


@pytest.fixture
def course_bundle(tmp_path):
    path = tmp_path / "course.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma(),
                                workloads.course_instance()))
    return str(path)


@pytest.fixture
def course_jsonl(tmp_path):
    from repro.io.stream import dump_jsonl, iter_set_elements
    path = tmp_path / "course.jsonl"
    dump_jsonl(path, iter_set_elements(
        workloads.course_instance().relation("Course")))
    return str(path)


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _metrics(path):
    with open(path) as handle:
        return json.load(handle)["sections"]


def _append_clash(jsonl):
    from repro.io.stream import iter_set_elements
    from repro.values import Atom, to_python
    first = next(iter_set_elements(
        workloads.course_instance().relation("Course")))
    with open(jsonl, "a") as handle:
        handle.write(json.dumps(
            to_python(first.replace("time", Atom(99)))) + "\n")


class TestWarmStart:
    def test_second_check_compiles_no_plans(self, course_bundle,
                                            cache_dir, tmp_path,
                                            capsys):
        metrics = str(tmp_path / "m.json")
        assert main(["check", course_bundle, "--cache-dir", cache_dir,
                     "--metrics-json", metrics]) == 0
        cold_out = capsys.readouterr().out
        cold = _metrics(metrics)
        assert cold["validator"]["plan_compilations"] == 1
        assert cold["cache"]["plan_misses"] == 1
        assert main(["check", course_bundle, "--cache-dir", cache_dir,
                     "--metrics-json", metrics]) == 0
        warm_out = capsys.readouterr().out
        warm = _metrics(metrics)
        # the acceptance gate: a warm check compiles nothing
        assert warm["validator"]["plan_compilations"] == 0
        assert warm["cache"]["plan_hits"] == 1
        assert warm_out == cold_out

    def test_second_implies_applies_no_rules(self, course_bundle,
                                             cache_dir, tmp_path,
                                             capsys):
        metrics = str(tmp_path / "m.json")
        query = ["implies", course_bundle, "Course:[cnum -> time]",
                 "--cache-dir", cache_dir, "--metrics-json", metrics]
        assert main(query) == 0
        cold_out = capsys.readouterr().out
        cold = _metrics(metrics)
        assert cold["closure"]["attempts"] > 0
        assert cold["session"]["store_misses"] == 1
        assert main(query) == 0
        warm_out = capsys.readouterr().out
        warm = _metrics(metrics)
        # the acceptance gate: zero saturation rule applications
        assert warm["closure"]["attempts"] == 0
        assert warm["closure"]["saturations"] == 0
        assert warm["session"]["store_hits"] == 1
        assert warm_out == cold_out

    def test_closure_and_keys_share_the_memo(self, course_bundle,
                                             cache_dir, tmp_path,
                                             capsys):
        metrics = str(tmp_path / "m.json")
        assert main(["closure", course_bundle, "Course", "cnum",
                     "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert main(["closure", course_bundle, "Course", "cnum",
                     "--cache-dir", cache_dir,
                     "--metrics-json", metrics]) == 0
        assert capsys.readouterr().out == first
        warm = _metrics(metrics)
        assert warm["closure"]["attempts"] == 0
        # keys issues many closure queries; a fully warmed memo
        # answers them all without saturating
        assert main(["keys", course_bundle, "--cache-dir",
                     cache_dir]) == 0
        keys_out = capsys.readouterr().out
        assert main(["keys", course_bundle, "--cache-dir", cache_dir,
                     "--metrics-json", metrics]) == 0
        assert capsys.readouterr().out == keys_out
        assert _metrics(metrics)["closure"]["attempts"] == 0

    def test_cache_section_prints_under_stats(self, course_bundle,
                                              cache_dir, capsys):
        assert main(["check", course_bundle, "--cache-dir", cache_dir,
                     "--stats"]) == 0
        err = capsys.readouterr().err
        assert "cache stats (persistent store)" in err

    def test_env_var_configures_the_cache(self, course_bundle,
                                          cache_dir, monkeypatch,
                                          capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["check", course_bundle]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(cache_dir, DB_FILENAME))


class TestCacheSubcommand:
    def test_requires_a_directory(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_stats_clear_vacuum_cycle(self, course_bundle, cache_dir,
                                      capsys):
        assert main(["check", course_bundle,
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "plans: 1" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cache cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "plans: 0" in capsys.readouterr().out
        assert main(["cache", "vacuum", "--cache-dir", cache_dir]) == 0
        assert "cache vacuumed" in capsys.readouterr().out

    def test_env_var_names_the_directory(self, cache_dir, monkeypatch,
                                         capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["cache", "stats"]) == 0
        assert "available: True" in capsys.readouterr().out

    def test_stats_report_dense_tables(self, course_bundle, cache_dir,
                                       capsys):
        # a dense-strategy query persists the interned tables ...
        assert main(["closure", course_bundle, "Course", "cnum",
                     "--strategy", "dense",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        # ... and `cache stats` reports their rows and bytes
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        stats = dict(line.split(": ", 1)
                     for line in out.splitlines() if ": " in line)
        assert int(stats["dense_tables"]) >= 1
        assert int(stats["dense_bytes"]) > 0


class TestIncrementalCLI:
    def test_requires_a_cache_dir(self, course_bundle, course_jsonl,
                                  monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["check", course_bundle, "--stream", course_jsonl,
                     "--incremental"]) == 2
        assert "--incremental requires a cache directory" in \
            capsys.readouterr().err

    def test_rejects_shards(self, course_bundle, course_jsonl,
                            cache_dir, capsys):
        assert main(["check", course_bundle, "--stream", course_jsonl,
                     "--incremental", "--shards", "2",
                     "--cache-dir", cache_dir]) == 2
        assert "single-shard" in capsys.readouterr().err

    def test_resume_matches_cold_stdout_and_exit(self, course_bundle,
                                                 course_jsonl,
                                                 cache_dir, capsys):
        args = ["check", course_bundle, "--stream", course_jsonl,
                "--incremental", "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "incremental: cold" in first.err
        _append_clash(course_jsonl)
        code = main(args)
        resumed = capsys.readouterr()
        assert "incremental: resumed" in resumed.err
        assert "1 element(s) folded" in resumed.err
        # reference: a cold streamed check without any cache
        cold_code = main(["check", course_bundle, "--stream",
                          course_jsonl])
        cold = capsys.readouterr()
        assert code == cold_code == 1
        assert resumed.out == cold.out

    def test_streamed_check_warms_plan_cache(self, course_bundle,
                                             course_jsonl, cache_dir,
                                             tmp_path, capsys):
        metrics = str(tmp_path / "m.json")
        args = ["check", course_bundle, "--stream", course_jsonl,
                "--cache-dir", cache_dir, "--metrics-json", metrics]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        capsys.readouterr()
        assert _metrics(metrics)["cache"]["plan_hits"] == 1

    def test_sharded_stream_with_cache_matches_without(
            self, course_bundle, course_jsonl, cache_dir, capsys):
        _append_clash(course_jsonl)
        base = ["check", course_bundle, "--stream", course_jsonl,
                "--shards", "2", "--jobs", "2"]
        assert main(base) == 1
        plain = capsys.readouterr().out
        assert main(base + ["--cache-dir", cache_dir]) == 1
        cold_cached = capsys.readouterr().out
        assert main(base + ["--cache-dir", cache_dir]) == 1
        warm_cached = capsys.readouterr().out
        assert plain == cold_cached == warm_cached


class TestCorruptionFallback:
    def test_corrupt_db_keeps_stdout_and_exit_identical(
            self, course_bundle, cache_dir, capsys, recwarn):
        assert main(["check", course_bundle]) == 0
        reference = capsys.readouterr().out
        os.makedirs(cache_dir)
        with open(os.path.join(cache_dir, DB_FILENAME), "wb") as fh:
            fh.write(b"\x00garbage" * 512)
        assert main(["check", course_bundle,
                     "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == reference
        assert any("continuing without the persistent cache"
                   in str(w.message) for w in recwarn.list)

    def test_corrupt_db_keeps_implies_identical(self, course_bundle,
                                                cache_dir, capsys,
                                                recwarn):
        query = ["implies", course_bundle, "Course:[cnum -> time]"]
        assert main(query) == 0
        reference = capsys.readouterr().out
        os.makedirs(cache_dir)
        with open(os.path.join(cache_dir, DB_FILENAME), "wb") as fh:
            fh.write(b"not sqlite\n" * 64)
        assert main(query + ["--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == reference
