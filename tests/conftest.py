"""Shared fixtures: the paper's workloads, ready-built engines."""

from __future__ import annotations

import random

import pytest

from repro.generators import workloads
from repro.inference import ClosureEngine


@pytest.fixture
def course_schema():
    return workloads.course_schema()


@pytest.fixture
def course_sigma():
    return workloads.course_sigma()


@pytest.fixture
def course_instance():
    return workloads.course_instance()


@pytest.fixture
def course_engine(course_schema, course_sigma):
    return ClosureEngine(course_schema, course_sigma)


@pytest.fixture
def figure1_instance():
    return workloads.figure1_instance()


@pytest.fixture
def example_3_2_instance():
    return workloads.example_3_2_instance()


@pytest.fixture
def section_3_1_engine():
    return ClosureEngine(workloads.section_3_1_schema(),
                         workloads.section_3_1_sigma())


@pytest.fixture
def rng():
    return random.Random(20260706)
