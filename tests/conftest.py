"""Shared fixtures: the paper's workloads, ready-built engines.

Hypothesis profiles: the default profile keeps CI fast; the scheduled
nightly workflow exports ``HYPOTHESIS_PROFILE=nightly`` to rerun every
property suite at >= 1000 examples (tests that should scale with the
profile must not pin ``max_examples`` in their own ``@settings``).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.generators import workloads
from repro.inference import ClosureEngine

settings.register_profile("nightly", max_examples=1000, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session", autouse=True)
def repro_cache_dir_must_not_leak():
    """REPRO_CACHE_DIR redirects every store-aware code path, so a test
    exporting it via ``os.environ`` instead of ``monkeypatch`` would
    silently re-point all later tests at a stale cache.  The variable
    must be unset when the session starts and still unset when it ends;
    tests that need it go through ``monkeypatch.setenv`` (undone per
    test) and ``tmp_path``."""
    assert "REPRO_CACHE_DIR" not in os.environ, (
        "REPRO_CACHE_DIR is set in the test environment; unset it -- "
        "tests must opt in via monkeypatch, not inherit ambient state")
    yield
    assert "REPRO_CACHE_DIR" not in os.environ, (
        "a test exported REPRO_CACHE_DIR without monkeypatch and "
        "leaked it past its own scope")


@pytest.fixture
def course_schema():
    return workloads.course_schema()


@pytest.fixture
def course_sigma():
    return workloads.course_sigma()


@pytest.fixture
def course_instance():
    return workloads.course_instance()


@pytest.fixture
def course_engine(course_schema, course_sigma):
    return ClosureEngine(course_schema, course_sigma)


@pytest.fixture
def figure1_instance():
    return workloads.figure1_instance()


@pytest.fixture
def example_3_2_instance():
    return workloads.example_3_2_instance()


@pytest.fixture
def section_3_1_engine():
    return ClosureEngine(workloads.section_3_1_schema(),
                         workloads.section_3_1_sigma())


@pytest.fixture
def rng():
    return random.Random(20260706)
