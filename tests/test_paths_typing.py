"""Unit tests for path well-typedness and schema path enumeration."""

import pytest

from repro.errors import PathError
from repro.paths import (
    base_label_paths,
    is_set_path,
    is_well_typed,
    parse_path,
    relation_paths,
    resolve_base_path,
    schema_paths,
    set_paths,
    type_at,
)
from repro.types import INT, STRING, parse_schema, parse_type


@pytest.fixture
def course():
    return parse_schema("""
        Course = {<cnum: string, time: int,
                   students: {<sid: int, grade: string>},
                   books: {<isbn: int, title: string>}>}
    """)


class TestTypeAt:
    def test_empty_path_is_the_record(self):
        record = parse_type("<A: int>")
        assert type_at(record, parse_path("")) == record

    def test_single_label(self):
        record = parse_type("<A: int, B: string>")
        assert type_at(record, parse_path("A")) == INT
        assert type_at(record, parse_path("B")) == STRING

    def test_traversal_into_sets(self, course):
        element = course.element_type("Course")
        assert type_at(element, parse_path("students:sid")) == INT
        assert type_at(element, parse_path("students")).is_set()

    def test_paper_example(self):
        # A:B is well-typed wrt <A: {<B: int, C: int>}> but not <A: int>
        good = parse_type("<A: {<B: int, C: int>}>")
        assert type_at(good, parse_path("A:B")) == INT
        bad = parse_type("<A: int>")
        with pytest.raises(PathError):
            type_at(bad, parse_path("A:B"))

    def test_unknown_label(self, course):
        with pytest.raises(PathError) as excinfo:
            type_at(course.element_type("Course"), parse_path("nope"))
        assert "nope" in str(excinfo.value)

    def test_continuing_past_base_type_rejected(self, course):
        with pytest.raises(PathError):
            type_at(course.element_type("Course"),
                    parse_path("time:x"))

    def test_is_well_typed(self, course):
        element = course.element_type("Course")
        assert is_well_typed(element, parse_path("students:grade"))
        assert not is_well_typed(element, parse_path("students:title"))

    def test_is_set_path(self, course):
        element = course.element_type("Course")
        assert is_set_path(element, parse_path("students"))
        assert not is_set_path(element, parse_path("cnum"))
        assert not is_set_path(element, parse_path("missing"))


class TestEnumeration:
    def test_relation_paths(self, course):
        paths = {str(p) for p in relation_paths(course, "Course")}
        assert paths == {
            "cnum", "time", "students", "students:sid", "students:grade",
            "books", "books:isbn", "books:title",
        }

    def test_set_and_base_partition(self, course):
        sets = {str(p) for p in set_paths(course, "Course")}
        bases = {str(p) for p in base_label_paths(course, "Course")}
        assert sets == {"students", "books"}
        assert sets | bases == \
            {str(p) for p in relation_paths(course, "Course")}
        assert not sets & bases

    def test_schema_paths_include_relation_name(self, course):
        paths = {str(p) for p in schema_paths(course)}
        assert "Course" in paths
        assert "Course:students:sid" in paths

    def test_deep_schema(self):
        schema = parse_schema("R = {<A: {<B: {<C>}>}>}")
        assert {str(p) for p in relation_paths(schema, "R")} == \
            {"A", "A:B", "A:B:C"}


class TestResolveBasePath:
    def test_relation_base(self, course):
        scope = resolve_base_path(course, parse_path("Course"))
        assert scope == course.element_type("Course")

    def test_nested_base(self, course):
        scope = resolve_base_path(course, parse_path("Course:students"))
        assert scope.labels == ("sid", "grade")

    def test_unknown_relation(self, course):
        with pytest.raises(PathError):
            resolve_base_path(course, parse_path("Nope"))

    def test_non_set_base_rejected(self, course):
        with pytest.raises(PathError):
            resolve_base_path(course, parse_path("Course:cnum"))

    def test_empty_base_rejected(self, course):
        with pytest.raises(PathError):
            resolve_base_path(course, parse_path(""))
