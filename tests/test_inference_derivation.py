"""Machine-checked reproduction of the Section 3.1 worked proof."""

import pytest

from repro.errors import InferenceError
from repro.generators import workloads
from repro.inference import Derivation
from repro.nfd import parse_nfd
from repro.paths import parse_path


@pytest.fixture
def proof():
    schema = workloads.section_3_1_schema()
    nfd1, nfd2 = workloads.section_3_1_sigma()
    return Derivation(schema, {"nfd1": nfd1, "nfd2": nfd2})


class TestSection31Proof:
    """The paper's eight steps, replayed and checked one by one."""

    def _run(self, proof: Derivation) -> Derivation:
        proof.locality("1", "nfd1")
        proof.prefix("2", "1", parse_path("B:C"))
        proof.locality("3", "2")
        proof.push_in("4", "3")
        proof.locality("5", "nfd2")
        proof.push_in("6", "5")
        proof.singleton("7", ["4", "6"])
        proof.transitivity("8", ["2", "nfd2"], "7")
        return proof

    def test_each_step_matches_the_paper(self, proof):
        self._run(proof)
        expected = {
            "1": "R:A:[B:C -> E:F]",
            "2": "R:A:[B -> E:F]",
            "3": "R:A:E:[∅ -> F]",
            "4": "R:A:[E -> E:F]",
            "5": "R:A:E:[∅ -> G]",
            "6": "R:A:[E -> E:G]",
            "7": "R:A:[E:F, E:G -> E]",
            "8": "R:A:[B -> E]",
        }
        for label, text in expected.items():
            assert proof.fact(label) == parse_nfd(text), label

    def test_conclusion(self, proof):
        self._run(proof)
        assert proof.conclusion() == parse_nfd("R:A:[B -> E]")
        assert len(proof) == 8

    def test_rule_sequence_matches_the_paper(self, proof):
        self._run(proof)
        assert [step.rule for step in proof.steps] == [
            "locality", "prefix", "locality", "push-in",
            "locality", "push-in", "singleton", "transitivity",
        ]

    def test_rendering_is_numbered(self, proof):
        self._run(proof)
        text = proof.to_text()
        assert text.splitlines()[0].startswith("1. R:A:[B:C -> E:F]")
        assert "by singleton of (4), (6)" in text

    def test_engine_agrees_with_every_step(self, proof,
                                           section_3_1_engine):
        self._run(proof)
        for step in proof.steps:
            assert section_3_1_engine.implies(step.conclusion), step


class TestDerivationBookkeeping:
    def test_unknown_label(self, proof):
        with pytest.raises(InferenceError):
            proof.locality("1", "nope")

    def test_duplicate_label(self, proof):
        proof.locality("1", "nfd1")
        with pytest.raises(InferenceError):
            proof.locality("1", "nfd2")

    def test_conclusions_must_be_well_formed(self, proof):
        # reflexivity with an ill-typed path fails the schema check.
        from repro.errors import NFDError
        with pytest.raises(NFDError):
            proof.reflexivity("1", parse_path("R"),
                              [parse_path("nope")], parse_path("nope"))

    def test_empty_derivation_has_no_conclusion(self, proof):
        with pytest.raises(InferenceError):
            proof.conclusion()

    def test_hypotheses_are_validated(self):
        schema = workloads.section_3_1_schema()
        from repro.errors import NFDError
        with pytest.raises(NFDError):
            Derivation(schema, {"bad": parse_nfd("R:[nope -> D]")})
