"""Unit tests for violation witnesses."""

from repro.nfd import find_violation, find_violations, parse_nfd, \
    satisfies
from repro.types import parse_schema
from repro.values import Atom, Instance


class TestFindViolation:
    def test_none_when_satisfied(self, course_instance):
        assert find_violation(course_instance,
                              parse_nfd("Course:[cnum -> time]")) is None

    def test_witness_identifies_the_clash(self, course_instance):
        violation = find_violation(
            course_instance, parse_nfd("Course:[students:sid -> cnum]"))
        assert violation is not None
        assert {violation.rhs_value1, violation.rhs_value2} == \
            {Atom("cis550"), Atom("cis500")}
        assert violation.lhs_values == (Atom(1001),)

    def test_describe_mentions_paths_and_values(self, course_instance):
        violation = find_violation(
            course_instance, parse_nfd("Course:[students:sid -> cnum]"))
        text = violation.describe()
        assert "students:sid" in text
        assert "1001" in text
        assert "cnum" in text

    def test_figure1_witness(self, figure1_instance):
        violation = find_violation(figure1_instance,
                                   parse_nfd("R:[B:C -> E:F]"))
        assert violation is not None
        assert violation.lhs_values == (Atom(1),)

    def test_local_violation_reports_base_index(self):
        schema = parse_schema("R = {<A, B: {<C, D>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 1, "D": 1}]},               # fine
            {"A": 2, "B": [{"C": 1, "D": 1},
                           {"C": 1, "D": 2}]},               # clash
        ]})
        violation = find_violation(instance, parse_nfd("R:B:[C -> D]"))
        assert violation is not None
        assert violation.base_index in (0, 1)


class TestFindViolations:
    def test_one_witness_per_conflicting_key(self):
        schema = parse_schema("R = {<A, B>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": 1}, {"A": 1, "B": 2},
            {"A": 2, "B": 3}, {"A": 2, "B": 4},
            {"A": 3, "B": 5},
        ]})
        witnesses = list(find_violations(instance, parse_nfd("R:[A -> B]")))
        keys = {w.lhs_values for w in witnesses}
        assert keys == {(Atom(1),), (Atom(2),)}

    def test_consistency_with_satisfies(self, course_instance,
                                        course_sigma):
        for nfd in course_sigma:
            has_witness = find_violation(course_instance, nfd) is not None
            assert has_witness == (not satisfies(course_instance, nfd))

    def test_degenerate_nfd_witness(self):
        schema = parse_schema("R = {<A, E: {<F, G>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "E": [{"F": 7, "G": 1}, {"F": 8, "G": 2}]},
        ]})
        violation = find_violation(instance, parse_nfd("R:E:[∅ -> F]"))
        assert violation is not None
        assert violation.lhs_values == ()
        assert {violation.rhs_value1, violation.rhs_value2} == \
            {Atom(7), Atom(8)}
