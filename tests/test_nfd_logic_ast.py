"""Unit tests for the logic AST details and variable allocation."""

from repro.nfd import parse_nfd, translate
from repro.nfd.logic import Equality, Quantifier, Term


class TestTerm:
    def test_identity(self):
        assert Term("c1", "cnum") == Term("c1", "cnum")
        assert Term("c1", "cnum") != Term("c2", "cnum")
        assert hash(Term("c1", "cnum")) == hash(Term("c1", "cnum"))

    def test_str(self):
        assert str(Term("c1", "cnum")) == "c1.cnum"
        assert repr(Term("c1", "cnum")) == "Term('c1', 'cnum')"


class TestEquality:
    def test_str(self):
        eq = Equality(Term("a", "x"), Term("b", "x"))
        assert str(eq) == "a.x = b.x"
        assert "Equality" in repr(eq)


class TestQuantifier:
    def test_relation_range(self):
        q = Quantifier("c1", None, "Course")
        assert q.range_text == "Course"
        assert str(q) == "∀c1 ∈ Course"

    def test_projection_range(self):
        q = Quantifier("s1", "c1", "students")
        assert q.range_text == "c1.students"
        assert "Quantifier" in repr(q)


class TestVariableAllocation:
    def test_label_collision_with_relation_name(self):
        """A field named like its relation must not reuse the stem
        (regression: the env KeyError found by hypothesis)."""
        formula = translate(parse_nfd("R:[O:R:T -> G]"))
        names = [q.var for q in formula.quantifiers]
        assert len(names) == len(set(names))

    def test_stem_suffix_collision(self):
        """A label C1 must not collide with label C's side variable
        c1."""
        formula = translate(parse_nfd("R:[C:X, C1:Y -> Z]"))
        names = [q.var for q in formula.quantifiers]
        assert len(names) == len(set(names))

    def test_formula_repr(self):
        formula = translate(parse_nfd("R:[A -> B]"))
        assert "NFDFormula" in repr(formula)
        assert str(formula) == formula.to_text()

    def test_quantifier_counts(self):
        # base pair + one pair per traversed prefix, per side
        formula = translate(parse_nfd("R:[A:B:C -> D]"))
        # R gets 2, A gets 2, A:B gets 2
        assert len(formula.quantifiers) == 6

    def test_antecedent_order_is_sorted_lhs(self):
        formula = translate(parse_nfd("R:[B, A -> C]"))
        lefts = [eq.left.field for eq in formula.antecedent]
        assert lefts == ["A", "B"]
