"""Unit tests for the classical FD baseline and its NFD bridge."""

import itertools
import random

import pytest

from repro.errors import InferenceError
from repro.inference import (
    FD,
    ClosureEngine,
    attribute_closure,
    attribute_closure_many,
    fd_implies,
    fd_to_nfd,
    is_flat_relation,
    nfd_to_fd,
)
from repro.nfd import parse_nfd
from repro.paths import parse_path
from repro.types import parse_schema


class TestAttributeClosure:
    def test_textbook_example(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C"), FD({"C", "D"}, "E")]
        assert attribute_closure({"A"}, fds) == {"A", "B", "C"}
        assert attribute_closure({"A", "D"}, fds) == \
            {"A", "B", "C", "D", "E"}

    def test_empty_lhs_fires_immediately(self):
        fds = [FD(set(), "A"), FD({"A"}, "B")]
        assert attribute_closure(set(), fds) == {"A", "B"}

    def test_fd_implies(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        assert fd_implies(fds, FD({"A"}, "C"))
        assert not fd_implies(fds, FD({"C"}, "A"))

    def test_fd_identity(self):
        assert FD({"A", "B"}, "C") == FD({"B", "A"}, "C")
        assert hash(FD({"A"}, "B")) == hash(FD({"A"}, "B"))


class TestAttributeClosureMany:
    def test_matches_single_closures(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C"), FD({"C", "D"}, "E"),
               FD(set(), "F")]
        bases = [set(), {"A"}, {"D"}, {"A", "D"}, {"C", "D"}, {"A"}]
        batch = attribute_closure_many(bases, fds)
        assert batch == [attribute_closure(base, fds)
                         for base in bases]

    def test_random_agreement(self):
        rng = random.Random(7)
        names = [f"a{i}" for i in range(8)]
        for _ in range(25):
            fds = [FD(rng.sample(names, rng.randint(0, 2)),
                      rng.choice(names)) for _ in range(rng.randint(1, 8))]
            bases = [rng.sample(names, rng.randint(0, 3))
                     for _ in range(10)]
            assert attribute_closure_many(bases, fds) == \
                [attribute_closure(base, fds) for base in bases]

    def test_order_independent(self):
        fds = [FD({"A"}, "B"), FD({"B"}, "C")]
        bases = [{"A"}, {"B"}, {"C"}]
        forward = attribute_closure_many(bases, fds)
        assert attribute_closure_many(reversed(bases), fds) == \
            forward[::-1]


class TestBridge:
    def test_flat_detection(self):
        flat = parse_schema("R = {<A, B>}")
        nested = parse_schema("R = {<A, B: {<C>}>}")
        assert is_flat_relation(flat, "R")
        assert not is_flat_relation(nested, "R")

    def test_nfd_to_fd(self):
        assert nfd_to_fd(parse_nfd("R:[A, B -> C]")) == FD({"A", "B"}, "C")
        with pytest.raises(InferenceError):
            nfd_to_fd(parse_nfd("R:[A:B -> C]"))
        with pytest.raises(InferenceError):
            nfd_to_fd(parse_nfd("R:A:[B -> C]"))

    def test_fd_to_nfd_roundtrip(self):
        fd = FD({"A", "B"}, "C")
        assert nfd_to_fd(fd_to_nfd("R", fd)) == fd


class TestEngineMatchesArmstrong:
    """On flat schemas the NFD engine is exactly Armstrong closure."""

    def test_exhaustive_small(self):
        attributes = ["A", "B", "C", "D"]
        schema = parse_schema("R = {<A, B, C, D>}")
        fds = [FD({"A"}, "B"), FD({"B", "C"}, "D"), FD({"D"}, "A")]
        engine = ClosureEngine(schema, [fd_to_nfd("R", fd) for fd in fds])
        for size in range(len(attributes) + 1):
            for combo in itertools.combinations(attributes, size):
                classical = attribute_closure(set(combo), fds)
                nested = engine.closure(
                    parse_path("R"), {parse_path(a) for a in combo})
                assert {p.first for p in nested} | set(combo) == \
                    classical | set(combo)

    def test_randomized(self):
        rng = random.Random(11)
        attributes = ["A", "B", "C", "D", "E"]
        schema = parse_schema("R = {<A, B, C, D, E>}")
        for _ in range(20):
            fds = [
                FD(set(rng.sample(attributes, rng.randint(1, 2))),
                   rng.choice(attributes))
                for _ in range(rng.randint(1, 5))
            ]
            engine = ClosureEngine(schema,
                                   [fd_to_nfd("R", fd) for fd in fds])
            lhs = set(rng.sample(attributes, rng.randint(1, 3)))
            classical = attribute_closure(lhs, fds)
            nested = engine.closure(parse_path("R"),
                                    {parse_path(a) for a in lhs})
            assert {p.first for p in nested} == classical
