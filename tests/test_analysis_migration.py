"""Unit tests for schema-migration analysis."""

from repro.analysis import migrate_sigma, schema_changes
from repro.generators import workloads
from repro.nfd import parse_nfd
from repro.types import parse_schema


class TestSchemaChanges:
    def test_added_and_removed_paths(self):
        old = parse_schema("R = {<A, B: {<C>}>}")
        new = parse_schema("R = {<A, B: {<C, D>}, E>}")
        changes = schema_changes(old, new)
        assert changes["added_paths"] == ["R:B:D", "R:E"]
        assert changes["removed_paths"] == []
        assert changes["added_relations"] == []

    def test_relation_changes(self):
        old = parse_schema("R = {<A>}; S = {<B>}")
        new = parse_schema("R = {<A>}; T = {<C>}")
        changes = schema_changes(old, new)
        assert changes["added_relations"] == ["T"]
        assert changes["removed_relations"] == ["S"]

    def test_no_change(self):
        schema = workloads.course_schema()
        changes = schema_changes(schema, schema)
        assert all(not value for value in changes.values())


class TestMigrateSigma:
    def test_clean_migration(self):
        old = workloads.course_schema()
        # adding an attribute keeps every constraint well-formed
        new = parse_schema("""
            Course = {<cnum: string, time: int, room: string,
                       students: {<sid: int, age: int, grade: string>},
                       books: {<isbn: int, title: string>}>}
        """)
        report = migrate_sigma(old, new, workloads.course_sigma())
        assert report.clean
        assert len(report.kept) == len(workloads.course_sigma())
        assert "kept constraints: 7" in report.to_text()

    def test_dropped_attribute_breaks_its_constraints(self):
        old = workloads.course_schema()
        new = parse_schema("""
            Course = {<cnum: string, time: int,
                       students: {<sid: int, grade: string>},
                       books: {<isbn: int, title: string>}>}
        """)  # age removed
        report = migrate_sigma(old, new, workloads.course_sigma())
        assert not report.clean
        broken_nfds = {nfd for nfd, _ in report.broken}
        assert parse_nfd(
            "Course:[students:sid -> students:age]") in broken_nfds
        assert len(report.kept) == 6
        text = report.to_text()
        assert "broken constraints: 1" in text
        assert "age" in text

    def test_flattened_set_breaks_local_constraints(self):
        old = workloads.course_schema()
        new = parse_schema("""
            Course = {<cnum: string, time: int, sid: int, age: int,
                       grade: string,
                       books: {<isbn: int, title: string>}>}
        """)  # students flattened away
        report = migrate_sigma(old, new, workloads.course_sigma())
        broken_nfds = {nfd for nfd, _ in report.broken}
        assert parse_nfd("Course:students:[sid -> grade]") in broken_nfds
        assert parse_nfd("Course:[cnum -> books]") not in broken_nfds
