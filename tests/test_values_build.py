"""Unit tests for from_python/to_python and Instance."""

import pytest

from repro.errors import InstanceError, ValueError_
from repro.types import parse_schema, parse_type
from repro.values import (
    Atom,
    Instance,
    Record,
    SetValue,
    from_python,
    to_python,
)


class TestFromPython:
    def test_scalars(self):
        assert from_python(5) == Atom(5)
        assert from_python("x") == Atom("x")
        assert from_python(True) == Atom(True)

    def test_dict_to_record(self):
        value = from_python({"A": 1, "B": "x"})
        assert isinstance(value, Record)
        assert value.get("A") == Atom(1)

    def test_list_to_set(self):
        value = from_python([{"A": 1}, {"A": 2}])
        assert isinstance(value, SetValue)
        assert len(value) == 2

    def test_nested(self):
        value = from_python({"A": 1, "B": [{"C": 2}]})
        inner = value.get("B")
        assert isinstance(inner, SetValue)

    def test_passthrough(self):
        atom = Atom(1)
        assert from_python(atom) is atom

    def test_typed_conversion_checks_shape(self):
        t = parse_type("{<A: int>}")
        value = from_python([{"A": 1}], t)
        assert isinstance(value, SetValue)
        with pytest.raises(ValueError_):
            from_python({"A": 1}, t)  # dict where a set is expected
        with pytest.raises(ValueError_):
            from_python([{"A": 1}], parse_type("int"))

    def test_unliftable(self):
        with pytest.raises(ValueError_):
            from_python(object())


class TestToPython:
    def test_roundtrip(self):
        data = {"A": 1, "B": [{"C": 2}, {"C": 3}]}
        value = from_python(data)
        back = to_python(value)
        assert back["A"] == 1
        assert sorted(row["C"] for row in back["B"]) == [2, 3]

    def test_deterministic(self):
        value = from_python([{"A": 2}, {"A": 1}])
        assert to_python(value) == to_python(value)


class TestInstance:
    def test_construction_from_python(self):
        schema = parse_schema("R = {<A, B: {<C>}>}")
        instance = Instance(schema, {"R": [{"A": 1, "B": [{"C": 2}]}]})
        relation = instance.relation("R")
        assert len(relation) == 1

    def test_missing_relation(self):
        schema = parse_schema("R = {<A>}; S = {<B>}")
        with pytest.raises(InstanceError):
            Instance(schema, {"R": []})

    def test_extra_relation(self):
        schema = parse_schema("R = {<A>}")
        with pytest.raises(InstanceError):
            Instance(schema, {"R": [], "T": []})

    def test_relation_must_be_set(self):
        schema = parse_schema("R = {<A>}")
        with pytest.raises(InstanceError):
            Instance(schema, {"R": Atom(1)})

    def test_with_relation(self):
        schema = parse_schema("R = {<A>}")
        instance = Instance(schema, {"R": [{"A": 1}]})
        updated = instance.with_relation("R", [{"A": 2}])
        assert instance != updated
        assert len(updated.relation("R")) == 1

    def test_equality_and_hash(self):
        schema = parse_schema("R = {<A>}")
        a = Instance(schema, {"R": [{"A": 1}]})
        b = Instance(schema, {"R": [{"A": 1}]})
        assert a == b
        assert hash(a) == hash(b)

    def test_total_atoms(self):
        schema = parse_schema("R = {<A, B: {<C>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": 2}, {"C": 3}]},
        ]})
        assert instance.total_atoms() == 3

    def test_unknown_relation_lookup(self):
        schema = parse_schema("R = {<A>}")
        instance = Instance(schema, {"R": []})
        with pytest.raises(InstanceError):
            instance.relation("S")
