"""Unit tests for nest/unnest (values and types)."""

import pytest

from repro.errors import TypeConstructionError, ValueError_
from repro.types import parse_type
from repro.values import from_python, nest, nest_type, unnest, unnest_type


def _nested_relation():
    return from_python([
        {"A": 1, "B": [{"C": 10}, {"C": 11}]},
        {"A": 2, "B": [{"C": 10}]},
    ])


class TestUnnest:
    def test_flattens(self):
        flat = unnest(_nested_relation(), "B")
        rows = {(r.get("A").value, r.get("C").value) for r in flat}
        assert rows == {(1, 10), (1, 11), (2, 10)}

    def test_empty_set_loses_tuple(self):
        relation = from_python([
            {"A": 1, "B": []},
            {"A": 2, "B": [{"C": 10}]},
        ])
        flat = unnest(relation, "B")
        assert {r.get("A").value for r in flat} == {2}

    def test_non_set_attribute_rejected(self):
        relation = from_python([{"A": 1, "B": [{"C": 10}]}])
        with pytest.raises(ValueError_):
            unnest(relation, "A")

    def test_label_collision_rejected(self):
        relation = from_python([{"A": 1, "B": [{"A": 2}]}])
        with pytest.raises(ValueError_):
            unnest(relation, "B")


class TestNest:
    def test_groups(self):
        flat = from_python([
            {"A": 1, "C": 10},
            {"A": 1, "C": 11},
            {"A": 2, "C": 10},
        ])
        nested = nest(flat, "B", ["C"])
        by_a = {r.get("A").value: r.get("B") for r in nested}
        assert len(by_a[1]) == 2
        assert len(by_a[2]) == 1

    def test_nest_then_unnest_is_identity_without_empties(self):
        flat = from_python([
            {"A": 1, "C": 10},
            {"A": 1, "C": 11},
            {"A": 2, "C": 10},
        ])
        assert unnest(nest(flat, "B", ["C"]), "B") == flat

    def test_unnest_then_nest_can_lose_grouping(self):
        # Two tuples with identical grouping attrs merge: nest o unnest
        # is not the identity in general (Fischer et al.'s observation).
        relation = from_python([
            {"A": 1, "B": [{"C": 10}]},
            {"A": 1, "B": [{"C": 11}]},
        ])
        renested = nest(unnest(relation, "B"), "B", ["C"])
        assert len(renested) == 1  # the two groups merged

    def test_requires_grouping_attributes(self):
        flat = from_python([{"A": 1}])
        with pytest.raises(ValueError_):
            nest(flat, "B", ["A"])

    def test_unknown_attribute(self):
        flat = from_python([{"A": 1}])
        with pytest.raises(ValueError_):
            nest(flat, "B", ["Z"])

    def test_label_collision(self):
        flat = from_python([{"A": 1, "C": 2}])
        with pytest.raises(ValueError_):
            nest(flat, "A", ["C"])


class TestTypeLevel:
    def test_unnest_type(self):
        t = parse_type("{<A: int, B: {<C: int>}>}")
        flat = unnest_type(t, "B")
        assert flat.element.labels == ("A", "C")

    def test_nest_type(self):
        t = parse_type("{<A: int, C: int>}")
        nested = nest_type(t, "B", ["C"])
        assert nested.element.labels == ("A", "B")
        assert nested.element.field("B").is_set()

    def test_type_value_consistency(self):
        t = parse_type("{<A: int, B: {<C: int>}>}")
        relation = _nested_relation()
        from repro.values import check_value
        check_value(unnest(relation, "B"), unnest_type(t, "B"))

    def test_unnest_type_non_set(self):
        t = parse_type("{<A: int>}")
        with pytest.raises(TypeConstructionError):
            unnest_type(t, "A")

    def test_nest_type_no_grouping(self):
        t = parse_type("{<C: int>}")
        with pytest.raises(TypeConstructionError):
            nest_type(t, "B", ["C"])
