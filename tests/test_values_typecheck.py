"""Unit tests for value/instance typechecking."""

import pytest

from repro.errors import InstanceError, ValueError_
from repro.types import parse_schema, parse_type
from repro.values import (
    Atom,
    Instance,
    Record,
    SetValue,
    check_instance,
    check_value,
    conforms,
    instance_conforms,
)


class TestCheckValue:
    def test_atoms(self):
        check_value(Atom(5), parse_type("int"))
        check_value(Atom("x"), parse_type("string"))
        check_value(Atom(True), parse_type("bool"))

    def test_atom_type_mismatch(self):
        with pytest.raises(ValueError_):
            check_value(Atom("x"), parse_type("int"))
        with pytest.raises(ValueError_):
            check_value(Atom(True), parse_type("int"))  # bool is not int

    def test_record(self):
        t = parse_type("<A: int, B: string>")
        check_value(Record({"A": Atom(1), "B": Atom("x")}), t)

    def test_record_missing_and_extra_fields(self):
        t = parse_type("<A: int, B: string>")
        with pytest.raises(ValueError_) as excinfo:
            check_value(Record({"A": Atom(1)}), t)
        assert "missing" in str(excinfo.value)
        with pytest.raises(ValueError_) as excinfo:
            check_value(
                Record({"A": Atom(1), "B": Atom("x"), "C": Atom(2)}), t)
        assert "unexpected" in str(excinfo.value)

    def test_set(self):
        t = parse_type("{<A: int>}")
        check_value(SetValue([Record({"A": Atom(1)})]), t)
        check_value(SetValue([]), t)  # empty set inhabits any set type

    def test_set_element_mismatch_is_located(self):
        t = parse_type("{<A: int>}")
        with pytest.raises(ValueError_) as excinfo:
            check_value(SetValue([Record({"A": Atom("oops")})]), t,
                        context="R")
        assert "R" in str(excinfo.value)

    def test_conforms(self):
        t = parse_type("{<A: int>}")
        assert conforms(SetValue([]), t)
        assert not conforms(Atom(1), t)


class TestCheckInstance:
    def test_good_instance(self):
        schema = parse_schema("R = {<A, B: {<C: string>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": [{"C": "x"}]},
        ]})
        check_instance(instance)
        assert instance_conforms(instance)

    def test_bad_instance(self):
        schema = parse_schema("R = {<A>}")
        instance = Instance(schema, {"R": SetValue([
            Record({"A": Atom("not an int")}),
        ])})
        with pytest.raises(InstanceError):
            check_instance(instance)
        assert not instance_conforms(instance)
