"""Unit tests for JSON serialization round trips."""

import json

import pytest

from repro.errors import ParseError
from repro.generators import workloads
from repro.io import (
    dump_bundle,
    instance_from_dict,
    instance_to_dict,
    load_bundle,
    nfds_from_list,
    nfds_to_list,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaRoundTrip:
    def test_course(self):
        schema = workloads.course_schema()
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_multi_relation(self):
        schema = workloads.warehouse_schema()
        assert schema_from_dict(schema_to_dict(schema)) == schema


class TestInstanceRoundTrip:
    @pytest.mark.parametrize("make", [
        workloads.course_instance,
        workloads.figure1_instance,
        workloads.example_3_2_instance,   # includes empty sets
        workloads.warehouse_instance,
    ])
    def test_roundtrip(self, make):
        instance = make()
        data = instance_to_dict(instance)
        json.dumps(data)  # must be JSON-serializable
        assert instance_from_dict(instance.schema, data) == instance


class TestNFDRoundTrip:
    def test_course_sigma(self):
        sigma = workloads.course_sigma()
        assert nfds_from_list(nfds_to_list(sigma)) == sigma

    def test_bad_nfd_reported(self):
        with pytest.raises(ParseError):
            nfds_from_list(["not an nfd"])


class TestSpecPersistence:
    def test_explicit_spec_roundtrip(self):
        from repro.inference import NonEmptySpec
        from repro.io import load_spec
        from repro.paths import parse_path

        spec = NonEmptySpec({parse_path("Course"),
                             parse_path("Course:students")})
        text = dump_bundle(workloads.course_schema(),
                           workloads.course_sigma(), nonempty=spec)
        recovered = load_spec(text)
        assert recovered is not None
        assert recovered.declared == spec.declared

    def test_all_nonempty_roundtrip(self):
        from repro.inference import NonEmptySpec
        from repro.io import load_spec

        text = dump_bundle(workloads.course_schema(), [],
                           nonempty=NonEmptySpec.all_nonempty())
        recovered = load_spec(text)
        assert recovered is not None and recovered.declares_everything

    def test_absent_spec_is_none(self):
        from repro.io import load_spec
        text = dump_bundle(workloads.course_schema(), [])
        assert load_spec(text) is None


class TestBundle:
    def test_full_roundtrip(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        instance = workloads.course_instance()
        text = dump_bundle(schema, sigma, instance)
        schema2, sigma2, instance2 = load_bundle(text)
        assert schema2 == schema
        assert sigma2 == sigma
        assert instance2 == instance

    def test_bundle_without_instance(self):
        schema = workloads.course_schema()
        text = dump_bundle(schema, workloads.course_sigma())
        _, _, instance = load_bundle(text)
        assert instance is None

class TestMalformedBundles:
    def test_invalid_json_names_line_and_column(self):
        text = '{"schema": {"relations": []},\n  "nfds": [,]}'
        with pytest.raises(ParseError) as info:
            load_bundle(text)
        message = str(info.value)
        assert "line 2" in message
        assert "column" in message

    def test_truncated_bundle_is_typed(self):
        text = dump_bundle(workloads.course_schema(),
                           workloads.course_sigma())
        with pytest.raises(ParseError, match="not valid JSON"):
            load_bundle(text[: len(text) // 2])

    def test_non_object_bundle(self):
        with pytest.raises(ParseError, match="must be a JSON object"):
            load_bundle('["schema"]')

    def test_missing_schema_key(self):
        with pytest.raises(ParseError,
                           match='missing the required "schema" key'):
            load_bundle('{"nfds": []}')

    def test_non_list_nfds(self):
        import json as json_module
        payload = json_module.loads(
            dump_bundle(workloads.course_schema(), []))
        payload["nfds"] = {"oops": True}
        with pytest.raises(ParseError, match='"nfds" must be a list'):
            load_bundle(json_module.dumps(payload))

    def test_spec_loader_shares_typed_errors(self):
        from repro.io import load_spec
        with pytest.raises(ParseError, match="not valid JSON"):
            load_spec("{truncated")
