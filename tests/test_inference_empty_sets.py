"""Unit tests for the Section 3.2 empty-set machinery."""

import pytest

from repro.errors import RuleApplicationError
from repro.generators import workloads
from repro.inference import (
    ClosureEngine,
    NonEmptySpec,
    prefix_nonempty,
    transitivity_nonempty,
)
from repro.nfd import parse_nfd, satisfies
from repro.paths import parse_path
from repro.types import parse_schema


@pytest.fixture
def schema_3_2():
    return workloads.example_3_2_schema()


class TestNonEmptySpec:
    def test_all_declares_everything(self):
        spec = NonEmptySpec.all_nonempty()
        assert spec.declares_everything
        assert spec.is_declared("R", parse_path("B"))

    def test_explicit_declarations(self):
        spec = NonEmptySpec({parse_path("R:B")})
        assert spec.is_declared("R", parse_path("B"))
        assert not spec.is_declared("R", parse_path("C"))

    def test_for_schema_except(self, schema_3_2):
        spec = NonEmptySpec.for_schema(schema_3_2,
                                       except_paths=[parse_path("R:B")])
        assert spec.is_declared("R", parse_path(""))  # the relation
        assert not spec.is_declared("R", parse_path("B"))

    def test_always_defined(self):
        spec = NonEmptySpec({parse_path("R:B")})
        assert spec.always_defined("R", parse_path("B:C"))
        assert spec.always_defined("R", parse_path("A"))  # no traversal
        assert not spec.always_defined("R", parse_path("D:E"))

    def test_always_defined_with_base_tail(self):
        # path E:F relative to base R:A: the traversed set is R:A:E.
        spec = NonEmptySpec({parse_path("R:A:E")})
        assert spec.always_defined("R", parse_path("E:F"),
                                   base_tail=parse_path("A"))
        assert not spec.always_defined("R", parse_path("E:F"))

    def test_admits(self, schema_3_2):
        instance = workloads.example_3_2_instance()
        assert NonEmptySpec.none().admits(instance)
        assert not NonEmptySpec.all_nonempty().admits(instance)
        assert not NonEmptySpec({parse_path("R:B")}).admits(instance)
        assert NonEmptySpec({parse_path("R")}).admits(instance)


class TestGatedTransitivity:
    def test_blocked_without_declaration(self):
        premises = [parse_nfd("R:[A -> B:C]")]
        bridge = parse_nfd("R:[B:C -> D]")
        with pytest.raises(RuleApplicationError):
            transitivity_nonempty(premises, bridge, NonEmptySpec.none())

    def test_allowed_with_declaration(self):
        premises = [parse_nfd("R:[A -> B:C]")]
        bridge = parse_nfd("R:[B:C -> D]")
        spec = NonEmptySpec({parse_path("R:B")})
        concluded = transitivity_nonempty(premises, bridge, spec)
        assert concluded == parse_nfd("R:[A -> D]")

    def test_follows_suffices(self):
        # intermediate B:C follows the conclusion RHS B:E: wherever B:E
        # is defined, so is B:C.
        premises = [parse_nfd("R:[A -> B:C]")]
        bridge = parse_nfd("R:[B:C -> B:E]")
        concluded = transitivity_nonempty(premises, bridge,
                                          NonEmptySpec.none())
        assert concluded == parse_nfd("R:[A -> B:E]")

    def test_single_label_intermediates_always_pass(self):
        premises = [parse_nfd("R:[A -> B]")]
        bridge = parse_nfd("R:[B -> D]")
        concluded = transitivity_nonempty(premises, bridge,
                                          NonEmptySpec.none())
        assert concluded == parse_nfd("R:[A -> D]")


class TestGatedPrefix:
    def test_blocked_without_declaration(self):
        with pytest.raises(RuleApplicationError):
            prefix_nonempty(parse_nfd("R:[B:C -> E]"), parse_path("B:C"),
                            NonEmptySpec.none())

    def test_allowed_with_declaration(self):
        concluded = prefix_nonempty(
            parse_nfd("R:[B:C -> E]"), parse_path("B:C"),
            NonEmptySpec({parse_path("R:B")}))
        assert concluded == parse_nfd("R:[B -> E]")


class TestGatedEngine:
    """Example 3.2 drives the engine-level gating."""

    def test_transitivity_blocked_by_possible_empty_b(self, schema_3_2):
        sigma = [parse_nfd("R:[A -> B:C]"), parse_nfd("R:[B:C -> D]")]
        spec = NonEmptySpec.for_schema(schema_3_2,
                                       except_paths=[parse_path("R:B")])
        engine = ClosureEngine(schema_3_2, sigma, nonempty=spec)
        assert not engine.implies(parse_nfd("R:[A -> D]"))
        # and the Example 3.2 instance is the semantic witness:
        instance = workloads.example_3_2_instance()
        assert spec.admits(instance)
        assert all(satisfies(instance, nfd) for nfd in sigma)
        assert not satisfies(instance, parse_nfd("R:[A -> D]"))

    def test_transitivity_allowed_when_b_declared(self, schema_3_2):
        sigma = [parse_nfd("R:[A -> B:C]"), parse_nfd("R:[B:C -> D]")]
        engine = ClosureEngine(schema_3_2, sigma,
                               nonempty=NonEmptySpec.for_schema(schema_3_2))
        assert engine.implies(parse_nfd("R:[A -> D]"))

    def test_prefix_blocked(self, schema_3_2):
        sigma = [parse_nfd("R:[B:C -> E]")]
        spec = NonEmptySpec.for_schema(schema_3_2,
                                       except_paths=[parse_path("R:B")])
        engine = ClosureEngine(schema_3_2, sigma, nonempty=spec)
        assert not engine.implies(parse_nfd("R:[B -> E]"))
        # with B declared non-empty the shortening is sound again
        full = ClosureEngine(schema_3_2, sigma,
                             nonempty=NonEmptySpec.for_schema(schema_3_2))
        assert full.implies(parse_nfd("R:[B -> E]"))

    def test_gated_engine_never_exceeds_ungated(self, schema_3_2):
        sigma = [parse_nfd("R:[A -> B:C]"), parse_nfd("R:[B:C -> D]"),
                 parse_nfd("R:[D -> E]")]
        spec = NonEmptySpec.for_schema(schema_3_2,
                                       except_paths=[parse_path("R:B")])
        gated = ClosureEngine(schema_3_2, sigma, nonempty=spec)
        ungated = ClosureEngine(schema_3_2, sigma)
        base = parse_path("R")
        for lhs in [{parse_path("A")}, {parse_path("B:C")},
                    {parse_path("D")}]:
            assert gated.closure(base, lhs) <= ungated.closure(base, lhs)

    def test_pull_out_gated_regression(self):
        """Regression: pull-out is unsound under Definition 2.4 with
        empty sets.  Sigma |- [A:C -> A:C:D] (simple form), but the
        local reading R:A:C:[∅ -> D] fails on an instance where one
        element's empty C excuses the simple pair while a sibling's
        two-element C carries distinct D values.  Found by the
        hypothesis soundness sweep; the closure() pull-out gate must
        block the local form when C is not declared non-empty.
        """
        schema = parse_schema(
            "R = {<A: {<B, C: {<D: string>}, E>}>}")
        sigma = [parse_nfd("R:[A, A:B, A:E -> A:C:D]"),
                 parse_nfd("R:[A, A:C -> A:B]"),
                 parse_nfd("R:[A, A:E -> A:C:D]")]
        spec = NonEmptySpec({parse_path("R")})
        engine = ClosureEngine(schema, sigma, nonempty=spec)
        local = parse_nfd("R:A:C:[∅ -> D]")
        assert not engine.implies(local)
        # the separating instance from the sweep:
        from repro.values import Instance
        instance = Instance(schema, {"R": [
            {"A": [{"B": 0, "C": [{"D": "s0"}, {"D": "s1"}], "E": 0},
                   {"B": 1, "C": [], "E": 1}]},
            {"A": [{"B": 0, "C": [{"D": "s0"}], "E": 1}]},
        ]})
        assert spec.admits(instance)
        assert all(satisfies(instance, nfd) for nfd in sigma)
        assert not satisfies(instance, local)
        # declaring C non-empty restores the inference
        restored = ClosureEngine(
            schema, sigma,
            nonempty=NonEmptySpec({parse_path("R"),
                                   parse_path("R:A:C")}))
        assert restored.implies(local)

    def test_sigma_members_at_nested_bases_still_hold(self):
        """The pull-out gate must not reject NFDs stated in Sigma at
        the queried base (augmentation included)."""
        schema = parse_schema("R = {<A: {<B, C: {<D: string>}, E>}>}")
        sigma = [parse_nfd("R:A:C:[∅ -> D]")]
        spec = NonEmptySpec({parse_path("R")})
        engine = ClosureEngine(schema, sigma, nonempty=spec)
        assert engine.implies(parse_nfd("R:A:C:[∅ -> D]"))

    def test_localization_gated(self):
        # Localizing R:[B:C -> A:F] at A drops B:C, which is only sound
        # when B cannot be empty.
        schema = parse_schema("R = {<A: {<F, G>}, B: {<C>}>}")
        sigma = [parse_nfd("R:[B:C -> A:F]")]
        spec = NonEmptySpec.for_schema(schema,
                                       except_paths=[parse_path("R:B")])
        gated = ClosureEngine(schema, sigma, nonempty=spec)
        ungated = ClosureEngine(schema, sigma)
        target = parse_nfd("R:A:[∅ -> F]")
        assert ungated.implies(target)
        assert not gated.implies(target)
