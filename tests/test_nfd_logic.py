"""Unit tests for the logic translation (Section 2.2) and its evaluator."""

from repro.nfd import holds_fol, parse_nfd, satisfies, translate
from repro.types import parse_schema
from repro.values import Instance


class TestTranslationShape:
    def test_global_books_example(self):
        # Course:[books:isbn -> books:title]: two Course variables, two
        # books variables; books is referenced twice but bound once per
        # side (the paper's own remark).
        formula = translate(parse_nfd(
            "Course:[books:isbn -> books:title]"))
        assert len(formula.quantifiers) == 4
        text = formula.to_text()
        assert "∀c1 ∈ Course ∀c2 ∈ Course" in text
        assert "∀b1 ∈ c1.books ∀b2 ∈ c2.books" in text
        assert "(b1.isbn = b2.isbn → b1.title = b2.title)" in text

    def test_local_students_example(self):
        # Course:students:[sid -> grade]: ONE Course variable, two
        # student variables.
        formula = translate(parse_nfd("Course:students:[sid -> grade]"))
        assert len(formula.quantifiers) == 3
        text = formula.to_text()
        assert "∀c ∈ Course" in text
        assert "∀s1 ∈ c.students ∀s2 ∈ c.students" in text
        assert "(s1.sid = s2.sid → s1.grade = s2.grade)" in text

    def test_relational_fd_shape(self):
        formula = translate(parse_nfd("Course:[cnum -> time]"))
        text = formula.to_text()
        assert "(c1.cnum = c2.cnum → c1.time = c2.time)" in text

    def test_degenerate_antecedent_is_true(self):
        formula = translate(parse_nfd("R:A:E:[∅ -> F]"))
        assert "true →" in formula.to_text()

    def test_shared_prefixes_share_variables(self):
        formula = translate(parse_nfd("R:[A:B, A:C -> A:D]"))
        # Only one pair of variables for A despite three mentions.
        a_quantifiers = [q for q in formula.quantifiers if q.field == "A"]
        assert len(a_quantifiers) == 2

    def test_deep_base_chain(self):
        formula = translate(parse_nfd("R:A:E:[∅ -> F]"))
        # Chain: one var for R, one for A, two for E.
        assert len(formula.quantifiers) == 4
        sources = [q.source_var for q in formula.quantifiers]
        assert sources[0] is None


class TestEvaluation:
    def test_agrees_with_def_2_4_without_empty_sets(self, course_instance,
                                                    course_sigma):
        for nfd in course_sigma:
            assert holds_fol(course_instance, nfd) == \
                satisfies(course_instance, nfd)

    def test_figure1_violation_via_fol(self, figure1_instance):
        assert not holds_fol(figure1_instance, parse_nfd("R:[B:C -> E:F]"))

    def test_example_3_2_verdicts_via_fol(self, example_3_2_instance):
        # On this instance the two semantics happen to coincide.
        verdicts = {
            "R:[A -> B:C]": True,
            "R:[B:C -> D]": True,
            "R:[A -> D]": False,
        }
        for text, expected in verdicts.items():
            assert holds_fol(example_3_2_instance,
                             parse_nfd(text)) is expected

    def test_fol_is_stronger_on_partially_defined_values(self):
        # v has A = {a1 with B empty, a2 with B = {b}}: A:B:C is
        # undefined on v, so Definition 2.4 excuses the pair (v, v) and
        # the NFD holds; the pure FOL semantics still checks the live
        # branch through a2 and catches the G clash.
        schema = parse_schema("R = {<A: {<B: {<C>}>}, G: {<H>}>}")
        instance = Instance(schema, {"R": [
            {"A": [{"B": []}, {"B": [{"C": 1}]}],
             "G": [{"H": 1}, {"H": 2}]},
        ]})
        nfd = parse_nfd("R:[A:B:C -> G:H]")
        assert satisfies(instance, nfd)          # Def 2.4: trivially true
        assert not holds_fol(instance, nfd)      # FOL: violated

    def test_empty_range_is_vacuous(self):
        schema = parse_schema("R = {<A, B: {<C>}>}")
        instance = Instance(schema, {"R": [
            {"A": 1, "B": []},
            {"A": 1, "B": []},
        ]})
        assert holds_fol(instance, parse_nfd("R:[B:C -> A]"))
