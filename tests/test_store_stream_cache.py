"""Unit tests for incremental resumable streaming validation.

The contract under test (see :mod:`repro.store.stream_cache`): a
resumed run folds only appended lines, yet reports witnesses
byte-identical to a full cold re-stream; any prefix disturbance —
rewrite, truncation, Σ reorder — degrades to a cold run; and a
budget-exhausted run never poisons the checkpoint.
"""

import json
import os

import pytest

from repro.generators import workloads
from repro.io.stream import dump_jsonl, iter_jsonl_elements, \
    iter_set_elements
from repro.nfd import ResourceBudget, stream_validate
from repro.store import CacheStore, incremental_stream_validate, \
    stream_source_id
from repro.store.stream_cache import _scan_source
from repro.values import Atom, to_python


@pytest.fixture
def schema():
    return workloads.course_schema()


@pytest.fixture
def sigma():
    return tuple(workloads.course_sigma())


@pytest.fixture
def store(tmp_path):
    with CacheStore(str(tmp_path / "cache")) as handle:
        yield handle


@pytest.fixture
def jsonl(tmp_path):
    path = tmp_path / "course.jsonl"
    dump_jsonl(path, iter_set_elements(
        workloads.course_instance().relation("Course")))
    return str(path)


def _append(path, element):
    with open(path, "a") as handle:
        handle.write(json.dumps(to_python(element)) + "\n")


def _clashing_element():
    first = next(iter_set_elements(
        workloads.course_instance().relation("Course")))
    return first.replace("time", Atom(99))


def _nested_clash_row():
    return {"cnum": "cis700", "time": 9,
            "students": [{"sid": 1, "age": 20, "grade": "A"},
                         {"sid": 1, "age": 21, "grade": "B"}],
            "books": [{"isbn": 7, "title": "Nested FDs"}]}


def _cold_witnesses(schema, sigma, path):
    result = stream_validate(
        schema, sigma,
        {"Course": iter_jsonl_elements(path, schema, "Course")})
    return [v.describe() for v in result.violations]


def _witnesses(result):
    return [v.describe() for v in result.violations]


class TestScanSource:
    def test_counts_and_prefix_digest(self, tmp_path):
        path = tmp_path / "lines.jsonl"
        path.write_bytes(b"a\nb\nc\n")
        total, full_hash, prefix_hash = _scan_source(str(path), 2)
        assert total == 3
        short_total, short_full, _ = _scan_source(str(path), 0)
        assert short_total == 3 and short_full == full_hash
        # the prefix digest is the digest OF the two-line file
        two = tmp_path / "two.jsonl"
        two.write_bytes(b"a\nb\n")
        _, two_full, _ = _scan_source(str(two), 0)
        assert prefix_hash == two_full

    def test_prefix_beyond_eof_forces_cold(self, tmp_path):
        path = tmp_path / "lines.jsonl"
        path.write_bytes(b"a\n")
        _, _, prefix_hash = _scan_source(str(path), 5)
        assert prefix_hash == ""  # never matches a stored digest


class TestIncrementalHappyPath:
    def test_cold_run_persists_a_checkpoint(self, schema, sigma, store,
                                            jsonl):
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert result.ok
        assert info["mode"] == "cold"
        assert info["persisted"]
        assert store.summary()["stream_sources"] == 1
        assert store.summary()["stream_groups"] > 0

    def test_unchanged_file_folds_nothing(self, schema, sigma, store,
                                          jsonl):
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert info["mode"] == "resumed"
        assert info["elements_folded"] == 0
        assert result.ok

    def test_appended_clash_matches_cold_restream(self, schema, sigma,
                                                  store, jsonl):
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        _append(jsonl, _clashing_element())
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert info["mode"] == "resumed"
        assert info["elements_folded"] == 1
        assert not result.ok
        assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                     jsonl)

    def test_violations_survive_a_further_resume(self, schema, sigma,
                                                 store, jsonl):
        """A checkpoint taken of a violating run re-reports the same
        witnesses on the next resume — the clash aggregates persist."""
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        _append(jsonl, _clashing_element())
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert info["mode"] == "resumed"
        assert info["elements_folded"] == 0
        assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                     jsonl)

    def test_nested_violation_appended_after_checkpoint(
            self, schema, sigma, store, jsonl, tmp_path):
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        with open(jsonl, "a") as handle:
            handle.write(json.dumps(_nested_clash_row()) + "\n")
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert info["mode"] == "resumed"
        assert not result.ok
        assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                     jsonl)

    def test_nested_violation_before_checkpoint_is_restored(
            self, schema, sigma, store, tmp_path):
        path = str(tmp_path / "nested.jsonl")
        rows = [to_python(e) for e in iter_set_elements(
            workloads.course_instance().relation("Course"))]
        rows.append(_nested_clash_row())
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        first, _ = incremental_stream_validate(
            schema, sigma, "Course", path, store=store)
        assert not first.ok
        _append(path, _clashing_element())
        result, info = incremental_stream_validate(
            schema, sigma, "Course", path, store=store)
        assert info["mode"] == "resumed"
        assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                     path)

    def test_read_only_store_resumes_without_persisting(
            self, schema, sigma, store, jsonl):
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        _append(jsonl, _clashing_element())
        reader = CacheStore(store.cache_dir, read_only=True)
        try:
            result, info = incremental_stream_validate(
                schema, sigma, "Course", jsonl, store=reader)
            assert info["mode"] == "resumed"
            assert not info["persisted"]
            assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                         jsonl)
        finally:
            reader.close()


class TestWatermarkInvalidation:
    def test_rewritten_prefix_forces_cold(self, schema, sigma, store,
                                          jsonl):
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        lines = open(jsonl).readlines()
        with open(jsonl, "w") as handle:
            handle.writelines(reversed(lines))
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert info["mode"] == "cold"
        assert store.stats.stale >= 1
        assert result.ok
        assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                     jsonl)

    def test_truncated_file_forces_cold(self, schema, sigma, store,
                                        jsonl):
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        lines = open(jsonl).readlines()
        with open(jsonl, "w") as handle:
            handle.writelines(lines[:1])
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert info["mode"] == "cold"
        assert info["elements_folded"] == 1

    def test_sigma_reorder_forces_cold_then_resumes(self, schema,
                                                    sigma, store,
                                                    jsonl):
        assert len(sigma) >= 2
        reordered = tuple(reversed(sigma))
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        # same fingerprint, same source id — but plan indices differ
        assert stream_source_id(jsonl, "x", "Course") == \
            stream_source_id(jsonl, "x", "Course")
        result, info = incremental_stream_validate(
            schema, reordered, "Course", jsonl, store=store)
        assert info["mode"] == "cold"
        assert store.stats.stale >= 1
        _, again = incremental_stream_validate(
            schema, reordered, "Course", jsonl, store=store)
        assert again["mode"] == "resumed"

    def test_different_relations_checkpoint_independently(
            self, schema, sigma, store, jsonl, tmp_path):
        fp = "samefp"
        assert stream_source_id(jsonl, fp, "Course") != \
            stream_source_id(jsonl, fp, "Other")
        other = str(tmp_path / "other.jsonl")
        with open(other, "w") as handle:
            handle.write(open(jsonl).read())
        assert stream_source_id(jsonl, fp, "Course") != \
            stream_source_id(other, fp, "Course")


class TestBudgets:
    def test_exhausted_run_does_not_poison_the_checkpoint(
            self, schema, sigma, store, jsonl):
        incremental_stream_validate(schema, sigma, "Course", jsonl,
                                    store=store)
        _append(jsonl, _clashing_element())
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store,
            budget=ResourceBudget(max_elements=0))
        assert result.budget_exhausted == "max_elements"
        assert not info["persisted"]
        # the checkpoint still points at the last complete run, so a
        # full-budget retry folds the append and matches cold
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store)
        assert info["mode"] == "resumed"
        assert info["elements_folded"] == 1
        assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                     jsonl)

    def test_cold_exhausted_run_persists_nothing(self, schema, sigma,
                                                 store, jsonl):
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store,
            budget=ResourceBudget(max_elements=1))
        assert result.budget_exhausted == "max_elements"
        assert not info["persisted"]
        assert store.summary()["stream_sources"] == 0

    def test_resume_with_spilling_budget_matches_cold(
            self, schema, sigma, store, jsonl):
        incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store,
            budget=ResourceBudget(max_resident_rows=1))
        _append(jsonl, _clashing_element())
        result, info = incremental_stream_validate(
            schema, sigma, "Course", jsonl, store=store,
            budget=ResourceBudget(max_resident_rows=1))
        assert info["mode"] == "resumed"
        assert _witnesses(result) == _cold_witnesses(schema, sigma,
                                                     jsonl)
