"""Unit tests for benchmarks/aggregate_trajectory.py.

The nightly workflow folds every committed ``BENCH_*.json`` baseline
plus this run's snapshots into one ``BENCH_trajectory.json`` artifact;
these tests pin the per-gauge history shape, the regression plumbing
through :func:`repro.obs.compare_snapshots`, the suite-discovery glob,
and the missing-snapshot and ``--fail-on-regression`` behaviors.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                       / "benchmarks"))

from aggregate_trajectory import aggregate, build_trajectory, main  # noqa: E402


def _snapshot(**gauges):
    return {"gauges": gauges}


class TestBuildTrajectory:
    def test_history_and_change(self):
        data = build_trajectory(
            _snapshot(**{"x.items_per_sec": 100.0, "x.count": 7}),
            _snapshot(**{"x.items_per_sec": 110.0, "x.count": 7}))
        assert data["gauges"]["x.items_per_sec"]["history"] == \
            [100.0, 110.0]
        assert data["gauges"]["x.items_per_sec"]["change"] == 0.1
        assert data["regressions"] == []
        assert not data["current_missing"]

    def test_throughput_drop_is_a_regression(self):
        data = build_trajectory(
            _snapshot(**{"x.items_per_sec": 100.0}),
            _snapshot(**{"x.items_per_sec": 50.0}))
        assert data["regressions"]
        assert data["gauges"]["x.items_per_sec"]["change"] == -0.5

    def test_non_rate_gauges_never_regress(self):
        # compare_snapshots only gates *_per_sec gauges; counts may move
        data = build_trajectory(_snapshot(**{"x.count": 100}),
                                _snapshot(**{"x.count": 1}))
        assert data["regressions"] == []

    def test_missing_current_snapshot(self):
        data = build_trajectory(
            _snapshot(**{"x.items_per_sec": 100.0}), None)
        assert data["current_missing"]
        assert data["regressions"] == []
        assert data["gauges"]["x.items_per_sec"]["history"] == \
            [100.0, None]

    def test_gauge_new_in_current(self):
        data = build_trajectory(
            _snapshot(), _snapshot(**{"y.count": 3}))
        assert data["gauges"]["y.count"]["history"] == [None, 3]
        assert "change" not in data["gauges"]["y.count"]


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    return baseline, current


def _write(directory, name, snapshot):
    (directory / name).write_text(json.dumps(snapshot))


class TestAggregate:
    def test_discovers_bench_files(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_alpha.json",
               _snapshot(**{"a.items_per_sec": 10.0}))
        _write(baseline, "BENCH_beta.json",
               _snapshot(**{"b.items_per_sec": 10.0}))
        _write(baseline, "unrelated.json", _snapshot())
        _write(current, "BENCH_alpha.json",
               _snapshot(**{"a.items_per_sec": 11.0}))
        result = aggregate(baseline, current)
        assert sorted(result["suites"]) == ["alpha", "beta"]
        assert result["suites"]["beta"]["current_missing"]
        assert result["regressed"] == []

    def test_trajectory_baseline_excluded(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_trajectory.json", _snapshot())
        assert aggregate(baseline, current)["suites"] == {}

    def test_regressed_suites_listed(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_slow.json",
               _snapshot(**{"s.items_per_sec": 100.0}))
        _write(current, "BENCH_slow.json",
               _snapshot(**{"s.items_per_sec": 10.0}))
        assert aggregate(baseline, current)["regressed"] == ["slow"]


class TestMain:
    def test_writes_artifact_and_reports(self, dirs, tmp_path, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_ok.json",
               _snapshot(**{"o.items_per_sec": 10.0}))
        _write(current, "BENCH_ok.json",
               _snapshot(**{"o.items_per_sec": 10.5}))
        out = tmp_path / "BENCH_trajectory.json"
        code = main(["--baseline-dir", str(baseline),
                     "--current-dir", str(current),
                     "--out", str(out)])
        assert code == 0
        assert "ok: held" in capsys.readouterr().out
        written = json.loads(out.read_text())
        assert written["suites"]["ok"]["regressions"] == []

    def test_fail_on_regression(self, dirs, tmp_path, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_bad.json",
               _snapshot(**{"b.items_per_sec": 100.0}))
        _write(current, "BENCH_bad.json",
               _snapshot(**{"b.items_per_sec": 1.0}))
        out = tmp_path / "t.json"
        args = ["--baseline-dir", str(baseline),
                "--current-dir", str(current), "--out", str(out)]
        assert main(args) == 0  # reporting only by default
        capsys.readouterr()
        assert main(args + ["--fail-on-regression"]) == 1
        assert "regression" in capsys.readouterr().out
