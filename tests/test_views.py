"""Unit and randomized tests for the view algebra and NFD propagation."""

import random

import pytest

from repro.errors import InferenceError
from repro.generators import (
    random_satisfying_instance,
    random_sigma,
    workloads,
)
from repro.nfd import parse_nfd, parse_nfds, satisfies_all_fast
from repro.types import parse_schema
from repro.values import Instance, check_value
from repro.views import (
    Base,
    evaluate,
    output_type,
    propagate_nfds,
    view_schema,
)


@pytest.fixture
def enrollment_schema():
    return parse_schema(
        "Enrollment = {<cnum: string, time: int, sid: int, "
        "grade: string>}")


@pytest.fixture
def enrollment_instance(enrollment_schema):
    return Instance(enrollment_schema, {"Enrollment": [
        {"cnum": "a", "time": 1, "sid": 1, "grade": "A"},
        {"cnum": "a", "time": 1, "sid": 2, "grade": "B"},
        {"cnum": "b", "time": 2, "sid": 1, "grade": "A"},
    ]})


class TestAlgebraEvaluation:
    def test_base(self, enrollment_instance):
        result = evaluate(Base("Enrollment"), enrollment_instance)
        assert len(result) == 3

    def test_select(self, enrollment_instance):
        expr = Base("Enrollment").select("cnum", "a")
        assert len(evaluate(expr, enrollment_instance)) == 2

    def test_project(self, enrollment_instance):
        expr = Base("Enrollment").project("cnum", "time")
        result = evaluate(expr, enrollment_instance)
        assert len(result) == 2  # the two a-rows collapse

    def test_nest_unnest_roundtrip(self, enrollment_instance):
        nested = Base("Enrollment").nest("students", ["sid", "grade"])
        flat_again = nested.unnest("students")
        assert evaluate(flat_again, enrollment_instance) == \
            enrollment_instance.relation("Enrollment")

    def test_composition(self, enrollment_instance):
        expr = Base("Enrollment").select("cnum", "a") \
            .nest("students", ["sid", "grade"]) \
            .project("cnum", "students")
        result = evaluate(expr, enrollment_instance)
        assert len(result) == 1
        element = next(iter(result))
        assert len(element.get("students")) == 2

    def test_output_type_matches_value(self, enrollment_schema,
                                       enrollment_instance):
        expr = Base("Enrollment").nest("students", ["sid", "grade"]) \
            .project("cnum", "students")
        value = evaluate(expr, enrollment_instance)
        check_value(value, output_type(expr, enrollment_schema))

    def test_select_requires_base_attribute(self, enrollment_schema):
        nested = Base("Enrollment").nest("students", ["sid", "grade"])
        with pytest.raises(InferenceError):
            output_type(nested.select("students", 1), enrollment_schema)

    def test_project_unknown_attribute(self, enrollment_schema):
        with pytest.raises(InferenceError):
            output_type(Base("Enrollment").project("zzz"),
                        enrollment_schema)


class TestPropagation:
    SIGMA_TEXT = """
        Enrollment:[cnum -> time]
        Enrollment:[sid, cnum -> grade]
    """

    def test_base_passthrough(self, enrollment_schema):
        sigma = parse_nfds(self.SIGMA_TEXT)
        carried = propagate_nfds(Base("Enrollment"), enrollment_schema,
                                 sigma)
        assert parse_nfd("View:[cnum -> time]") in carried

    def test_selection_gains_constant(self, enrollment_schema):
        sigma = parse_nfds(self.SIGMA_TEXT)
        expr = Base("Enrollment").select("cnum", "a")
        carried = propagate_nfds(expr, enrollment_schema, sigma)
        assert parse_nfd("View:[∅ -> cnum]") in carried

    def test_projection_filters(self, enrollment_schema):
        sigma = parse_nfds(self.SIGMA_TEXT)
        expr = Base("Enrollment").project("cnum", "time")
        carried = propagate_nfds(expr, enrollment_schema, sigma)
        assert parse_nfd("View:[cnum -> time]") in carried
        assert all("grade" not in str(nfd) for nfd in carried)

    def test_nest_rewrites_and_adds_structure(self, enrollment_schema):
        sigma = parse_nfds(self.SIGMA_TEXT)
        expr = Base("Enrollment").nest("students", ["sid", "grade"])
        carried = propagate_nfds(expr, enrollment_schema, sigma)
        assert parse_nfd("View:[cnum -> time]") in carried
        assert parse_nfd(
            "View:[cnum, students:sid -> students:grade]") in carried
        assert parse_nfd("View:[cnum, time -> students]") in carried

    def test_unnest_flattens(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        expr = Base("Course").unnest("students")
        carried = propagate_nfds(expr, schema, sigma)
        # the global sid -> age NFD flattens to a plain FD
        assert parse_nfd("View:[sid -> age]") in carried
        # cnum -> students mentions the vanished set: dropped
        assert all("students" not in str(nfd) for nfd in carried)

    def test_view_schema(self, enrollment_schema):
        expr = Base("Enrollment").nest("students", ["sid", "grade"])
        schema = view_schema(expr, enrollment_schema)
        assert schema.relation_names == ("View",)
        assert schema.element_type("View").has_field("students")


class TestJoin:
    @pytest.fixture
    def dept_emp(self):
        schema = parse_schema("""
            Dept = {<dept: string, head: string>} ;
            Emp = {<emp: string, dept: string,
                    skills: {<skill: string, level: int>}>}
        """)
        instance = Instance(schema, {
            "Dept": [{"dept": "db", "head": "codd"},
                     {"dept": "pl", "head": "milner"}],
            "Emp": [
                {"emp": "ada", "dept": "db",
                 "skills": [{"skill": "sql", "level": 3}]},
                {"emp": "bob", "dept": "pl",
                 "skills": [{"skill": "ml", "level": 2}]},
                {"emp": "cyn", "dept": "none",
                 "skills": [{"skill": "c", "level": 1}]},
            ],
        })
        sigma = parse_nfds("""
            Dept:[dept -> head]
            Emp:[emp -> dept]
            Emp:[emp -> skills]
            Emp:[skills:skill -> skills:level]
        """)
        return schema, instance, sigma

    def test_evaluation(self, dept_emp):
        schema, instance, _ = dept_emp
        expr = Base("Emp").join(Base("Dept"))
        result = evaluate(expr, instance)
        assert len(result) == 2  # cyn's dept has no match
        emps = {row.get("emp").value for row in result}
        assert emps == {"ada", "bob"}
        for row in result:
            assert row.has("head") and row.has("skills")

    def test_output_type(self, dept_emp):
        schema, _, _ = dept_emp
        expr = Base("Emp").join(Base("Dept"))
        labels = output_type(expr, schema).element.labels
        assert set(labels) == {"emp", "dept", "skills", "head"}

    def test_propagation_carries_both_sides(self, dept_emp):
        schema, instance, sigma = dept_emp
        expr = Base("Emp").join(Base("Dept"))
        carried = propagate_nfds(expr, schema, sigma)
        assert parse_nfd("View:[dept -> head]") in carried
        assert parse_nfd("View:[emp -> dept]") in carried
        assert parse_nfd(
            "View:[skills:skill -> skills:level]") in carried
        target = view_schema(expr, schema)
        view = Instance(target, {"View": evaluate(expr, instance)})
        assert satisfies_all_fast(view, carried)

    def test_join_composes_with_nest(self, dept_emp):
        schema, instance, sigma = dept_emp
        expr = Base("Emp").unnest("skills").join(Base("Dept")) \
            .nest("staff", ["emp", "skill", "level"])
        carried = propagate_nfds(expr, schema, sigma)
        target = view_schema(expr, schema)
        view = Instance(target, {"View": evaluate(expr, instance)})
        assert satisfies_all_fast(view, carried)

    def test_no_shared_attributes_rejected(self, dept_emp):
        schema, _, _ = dept_emp
        bad_schema = parse_schema("""
            A = {<x: int>} ; B = {<y: int>}
        """)
        with pytest.raises(InferenceError):
            output_type(Base("A").join(Base("B")), bad_schema)

    def test_set_valued_join_key_rejected(self):
        schema = parse_schema("""
            A = {<k: {<v: int>}, x: int>} ; B = {<k: {<v: int>}, y: int>}
        """)
        with pytest.raises(InferenceError):
            output_type(Base("A").join(Base("B")), schema)


class TestPropagationSoundness:
    """Every propagated NFD holds on the evaluated view whenever the
    source satisfies Sigma (no-empty-sets setting)."""

    def _check(self, expr, schema, sigma, instance):
        carried = propagate_nfds(expr, schema, sigma)
        target_schema = view_schema(expr, schema)
        view_instance = Instance(target_schema, {
            "View": evaluate(expr, instance)
        })
        assert satisfies_all_fast(view_instance, carried), \
            (expr, carried)

    def test_course_views(self):
        schema = workloads.course_schema()
        sigma = workloads.course_sigma()
        instance = workloads.course_instance()
        for expr in [
            Base("Course"),
            Base("Course").select("time", 10),
            Base("Course").project("cnum", "students"),
            Base("Course").unnest("books"),
            Base("Course").unnest("books").project("cnum", "isbn",
                                                   "title"),
            Base("Course").unnest("students").nest(
                "enrolled", ["sid", "age", "grade"]),
        ]:
            self._check(expr, schema, sigma, instance)

    def test_randomized_flat_pipelines(self):
        rng = random.Random(88)
        schema = parse_schema("R = {<A, B, C, D>}")
        checked = 0
        for _ in range(25):
            sigma = random_sigma(rng, schema, count=rng.randint(1, 3))
            instance = random_satisfying_instance(
                rng, schema, sigma, tuples=3, domain=2)
            if instance is None:
                continue
            expr = Base("R")
            nest_counter = 0
            for _ in range(rng.randint(1, 3)):
                op = rng.randrange(3)
                element = output_type(expr, schema).element
                current = list(element.labels)
                if op == 0 and len(current) > 1:
                    keep = rng.sample(current,
                                      rng.randint(1, len(current) - 1))
                    expr = expr.project(*keep)
                elif op == 1:
                    base_attrs = [
                        label for label in current
                        if not element.field(label).is_set()
                    ]
                    if base_attrs:
                        expr = expr.select(rng.choice(base_attrs),
                                           rng.randrange(2))
                else:
                    base_attrs = [
                        label for label in current
                        if not element.field(label).is_set()
                    ]
                    if len(base_attrs) >= 1 and len(current) >= 2:
                        nested = rng.sample(
                            base_attrs,
                            rng.randint(1, max(1,
                                               len(base_attrs) - 1)))
                        if len(nested) < len(current):
                            nest_counter += 1
                            expr = expr.nest(
                                f"N{checked}x{nest_counter}", nested)
            self._check(expr, schema, sigma, instance)
            checked += 1
        assert checked > 10
