"""Tests for the MVD substrate: semantics, basis, mixed implication."""

import random
from itertools import combinations

from repro.inference import FD, fd_implies
from repro.inference.mvds import (
    MVD,
    dependency_basis,
    implies_fd_mixed,
    implies_mvd,
    satisfies_mvd,
)

ATTRS = ["A", "B", "C", "D"]


def _random_rows(rng, count=4, domain=2):
    return [
        {a: rng.randrange(domain) for a in ATTRS}
        for _ in range(count)
    ]


class TestSatisfiesMVD:
    def test_textbook_example(self):
        # course ->> teacher with independent books
        rows = [
            {"A": 1, "B": 10, "C": 100, "D": 0},
            {"A": 1, "B": 10, "C": 200, "D": 0},
            {"A": 1, "B": 20, "C": 100, "D": 0},
            {"A": 1, "B": 20, "C": 200, "D": 0},
        ]
        assert satisfies_mvd(rows, ATTRS, MVD({"A"}, {"B"}))

    def test_violation(self):
        rows = [
            {"A": 1, "B": 10, "C": 100, "D": 0},
            {"A": 1, "B": 20, "C": 200, "D": 0},
        ]
        assert not satisfies_mvd(rows, ATTRS, MVD({"A"}, {"B"}))

    def test_fd_implies_its_mvd(self):
        # an instance satisfying the FD A -> B satisfies A ->> B
        rng = random.Random(1)
        for _ in range(30):
            rows = _random_rows(rng)
            groups = {}
            fd_holds = True
            for row in rows:
                if groups.setdefault(row["A"], row["B"]) != row["B"]:
                    fd_holds = False
            if fd_holds:
                assert satisfies_mvd(rows, ATTRS, MVD({"A"}, {"B"}))

    def test_equivalence_with_binary_lossless_join(self):
        """X ->> Y holds in r iff r = pi_{XY}(r) join pi_{X,rest}(r) -
        the classical characterization, checked by reconstruction."""
        rng = random.Random(2)
        for _ in range(60):
            rows = _random_rows(rng, count=rng.randint(1, 5))
            mvd = MVD({"A"}, {"B"})
            left = {(r["A"], r["B"]) for r in rows}
            right = {(r["A"], r["C"], r["D"]) for r in rows}
            joined = {
                (a1, b, c, d)
                for (a1, b) in left
                for (a2, c, d) in right
                if a1 == a2
            }
            original = {(r["A"], r["B"], r["C"], r["D"]) for r in rows}
            assert satisfies_mvd(rows, ATTRS, mvd) == \
                (joined == original), rows


class TestDependencyBasis:
    def test_no_dependencies(self):
        basis = dependency_basis(ATTRS, {"A"}, [], [])
        assert basis == [frozenset({"B", "C", "D"})]

    def test_mvd_splits(self):
        basis = dependency_basis(ATTRS, {"A"}, [], [MVD({"A"}, {"B"})])
        assert frozenset({"B"}) in basis
        assert frozenset({"C", "D"}) in basis

    def test_fd_splits_to_singleton(self):
        basis = dependency_basis(ATTRS, {"A"}, [FD({"A"}, "B")], [])
        assert frozenset({"B"}) in basis

    def test_basis_partitions_complement(self):
        rng = random.Random(3)
        for _ in range(20):
            fds = [FD(set(rng.sample(ATTRS, rng.randint(1, 2))),
                      rng.choice(ATTRS)) for _ in range(2)]
            mvds = [MVD(set(rng.sample(ATTRS, 1)),
                        set(rng.sample(ATTRS, 2)))]
            x = set(rng.sample(ATTRS, rng.randint(1, 2)))
            basis = dependency_basis(ATTRS, x, fds, mvds)
            union: set[str] = set()
            for block in basis:
                assert not union & block  # disjoint
                union |= block
            assert union == set(ATTRS) - x


class TestMixedImplication:
    def test_fd_only_agrees_with_armstrong(self):
        rng = random.Random(4)
        for _ in range(30):
            fds = [FD(set(rng.sample(ATTRS, rng.randint(1, 2))),
                      rng.choice(ATTRS))
                   for _ in range(rng.randint(1, 4))]
            for size in range(1, 3):
                for combo in combinations(ATTRS, size):
                    for rhs in ATTRS:
                        candidate = FD(set(combo), rhs)
                        assert implies_fd_mixed(ATTRS, fds, [],
                                                candidate) == \
                            fd_implies(fds, candidate), (fds, candidate)

    def test_complementation(self):
        # X ->> Y implies X ->> (R - X - Y)
        mvds = [MVD({"A"}, {"B"})]
        assert implies_mvd(ATTRS, [], mvds, MVD({"A"}, {"C", "D"}))

    def test_fd_promotes_to_mvd(self):
        fds = [FD({"A"}, "B")]
        assert implies_mvd(ATTRS, fds, [], MVD({"A"}, {"B"}))

    def test_mvd_does_not_give_fd(self):
        mvds = [MVD({"A"}, {"B"})]
        assert not implies_fd_mixed(ATTRS, [], mvds, FD({"A"}, "B"))

    def test_interaction(self):
        # C ->> A together with B -> A forces C -> A (see the module's
        # development notes): the exchange tuples would break B -> A
        # unless A is already determined.
        fds = [FD({"B"}, "A")]
        mvds = [MVD({"C"}, {"A"})]
        assert implies_fd_mixed(ATTRS, fds, mvds, FD({"C"}, "A"))

    def test_soundness_against_random_models(self):
        """No relation satisfying the given set may violate an
        implication verdict."""
        rng = random.Random(5)
        checked = 0
        for _ in range(40):
            fds = [FD(set(rng.sample(ATTRS, 1)), rng.choice(ATTRS))]
            mvds = [MVD(set(rng.sample(ATTRS, 1)),
                        set(rng.sample(ATTRS, rng.randint(1, 2))))]
            candidate_fd = FD(set(rng.sample(ATTRS, rng.randint(1, 2))),
                              rng.choice(ATTRS))
            candidate_mvd = MVD(set(rng.sample(ATTRS, 1)),
                                set(rng.sample(ATTRS, 2)))
            fd_implied = implies_fd_mixed(ATTRS, fds, mvds, candidate_fd)
            mvd_implied = implies_mvd(ATTRS, fds, mvds, candidate_mvd)
            for _ in range(60):
                rows = _random_rows(rng, count=rng.randint(1, 4))
                if not all(satisfies_mvd(rows, ATTRS, m) for m in mvds):
                    continue
                groups = {}
                fd_ok = True
                for fd in fds:
                    for row in rows:
                        key = tuple(row[a] for a in sorted(fd.lhs))
                        if groups.setdefault((fd, key),
                                             row[fd.rhs]) != row[fd.rhs]:
                            fd_ok = False
                if not fd_ok:
                    continue
                checked += 1
                if fd_implied:
                    seen = {}
                    for row in rows:
                        key = tuple(row[a]
                                    for a in sorted(candidate_fd.lhs))
                        assert seen.setdefault(
                            key, row[candidate_fd.rhs]) == \
                            row[candidate_fd.rhs], (fds, mvds,
                                                    candidate_fd, rows)
                if mvd_implied:
                    assert satisfies_mvd(rows, ATTRS, candidate_mvd), \
                        (fds, mvds, candidate_mvd, rows)
        assert checked > 100
