"""CLI observability flags: ``--trace FILE`` and ``--metrics-json FILE``.

The contract under test: the flags never change stdout or the exit
code; the trace file is valid JSON Lines; the metrics file is one
:class:`repro.obs.RunReport` whose sections carry the same numbers the
``--stats`` / ``--cache-stats`` stderr blocks print (they render from
the same frozen snapshots).
"""

import json
import re

import pytest

from repro.cli import main
from repro.generators import workloads
from repro.io import dump_bundle


@pytest.fixture
def course_bundle(tmp_path):
    path = tmp_path / "course.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma(),
                                workloads.course_instance()))
    return str(path)


@pytest.fixture
def broken_bundle(tmp_path):
    instance = workloads.course_instance().with_relation("Course", [
        {"cnum": "a", "time": 1,
         "students": [{"sid": 1, "age": 20, "grade": "A"}],
         "books": [{"isbn": 1, "title": "X"}]},
        {"cnum": "b", "time": 2,
         "students": [{"sid": 1, "age": 99, "grade": "A"}],
         "books": [{"isbn": 1, "title": "X"}]},
    ])
    path = tmp_path / "broken.json"
    path.write_text(dump_bundle(workloads.course_schema(),
                                workloads.course_sigma(), instance))
    return str(path)


def _read_jsonl(path):
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


class TestTraceFlag:
    def test_check_writes_parseable_trace(self, course_bundle, tmp_path,
                                          capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["check", course_bundle, "--trace",
                     str(trace)]) == 0
        records = _read_jsonl(trace)
        assert records, "trace file is empty"
        names = {r["name"] for r in records if r["kind"] == "span"}
        assert "validate.run" in names
        assert "validate.relation" in names

    def test_implies_trace_has_saturation_counters(self, course_bundle,
                                                   tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["implies", course_bundle, "Course:[cnum -> time]",
                     "--trace", str(trace)]) == 0
        misses = [r for r in _read_jsonl(trace)
                  if r["kind"] == "span" and r["name"] == "session.miss"]
        assert misses
        # saturation deltas are charged to the enclosing miss span
        assert any(r["counters"].get("saturations") for r in misses)
        assert any(r["counters"].get("attempts") is not None
                   for r in misses)

    def test_trace_does_not_change_stdout_or_exit(self, broken_bundle,
                                                  tmp_path, capsys):
        assert main(["check", broken_bundle]) == 1
        bare = capsys.readouterr().out
        trace = tmp_path / "trace.jsonl"
        assert main(["check", broken_bundle, "--trace",
                     str(trace)]) == 1
        assert capsys.readouterr().out == bare

    def test_keys_and_closure_and_analyze_trace(self, course_bundle,
                                                tmp_path, capsys):
        for command, expect in [
            (["keys", course_bundle, "Course"], "analysis.keys"),
            (["closure", course_bundle, "Course", "cnum"],
             "session.miss"),
            (["analyze", course_bundle], "analysis.non_redundant"),
        ]:
            trace = tmp_path / "t.jsonl"
            assert main(command + ["--trace", str(trace)]) == 0
            names = {r["name"] for r in _read_jsonl(trace)
                     if r["kind"] == "span"}
            assert expect in names, (command, names)


class TestMetricsJsonFlag:
    def test_check_metrics_sections(self, course_bundle, tmp_path,
                                    capsys):
        target = tmp_path / "metrics.json"
        assert main(["check", course_bundle, "--metrics-json",
                     str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["command"] == "check"
        assert "validator" in payload["sections"]
        assert payload["sections"]["validator"]["validations"] == 1

    def test_analyze_consolidates_all_three_engines(self, course_bundle,
                                                    tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(["analyze", course_bundle, "--metrics-json",
                     str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["command"] == "analyze"
        assert set(payload["sections"]) >= \
            {"closure", "session", "validator"}
        assert payload["sections"]["closure"]["saturations"] > 0
        assert payload["sections"]["session"]["queries"] > 0
        assert payload["sections"]["validator"]["validations"] == 1

    def test_metrics_do_not_change_stdout_or_exit(self, broken_bundle,
                                                  tmp_path, capsys):
        assert main(["check", broken_bundle]) == 1
        bare = capsys.readouterr().out
        target = tmp_path / "metrics.json"
        assert main(["check", broken_bundle, "--metrics-json",
                     str(target)]) == 1
        assert capsys.readouterr().out == bare

    def test_metrics_reconcile_with_stats_stderr(self, course_bundle,
                                                 tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(["analyze", course_bundle, "--stats",
                     "--cache-stats", "--metrics-json",
                     str(target)]) == 0
        err = capsys.readouterr().err
        payload = json.loads(target.read_text())
        sections = payload["sections"]
        # the stderr blocks and the JSON render the same snapshots
        attempts = re.search(r"apply attempts: (\d+)", err).group(1)
        assert sections["closure"]["attempts"] == int(attempts)
        queries = re.search(r"closure queries: (\d+)", err).group(1)
        assert sections["session"]["queries"] == int(queries)
        walked = re.search(r"elements walked: (\d+)", err).group(1)
        assert sections["validator"]["elements_walked"] == int(walked)

    def test_stats_stderr_formats_unchanged(self, course_bundle,
                                            capsys):
        assert main(["analyze", course_bundle, "--stats",
                     "--cache-stats"]) == 0
        err = capsys.readouterr().err
        assert "engine stats (worklist strategy)" in err
        assert "session stats (fingerprint " in err
        assert "validator stats (single-pass batch engine)" in err

    def test_implies_metrics_sections(self, course_bundle, tmp_path,
                                      capsys):
        target = tmp_path / "metrics.json"
        assert main(["implies", course_bundle,
                     "Course:[cnum -> nosuch]", "--metrics-json",
                     str(target)]) == 2  # parse error: unknown path
        # usage errors abort before the report is written
        assert not target.exists()
        assert main(["implies", course_bundle, "Course:[cnum -> time]",
                     "--metrics-json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert set(payload["sections"]) == {"closure", "session"}

    def test_keys_metrics_and_exit_codes(self, course_bundle, tmp_path,
                                         capsys):
        target = tmp_path / "metrics.json"
        assert main(["keys", course_bundle, "Course", "--metrics-json",
                     str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["command"] == "keys"
        assert "session" in payload["sections"]
