"""Unit tests for FD carryover under nest/unnest."""

import pytest

from repro.analysis import (
    fd_after_unnest,
    nfd_after_nest,
    nfds_after_unnest,
)
from repro.errors import InferenceError
from repro.inference import FD
from repro.nfd import parse_nfd, satisfies_fast
from repro.types import parse_schema, Schema
from repro.values import Instance, nest, nest_type, unnest


class TestTranslationSyntax:
    def test_grouping_attribute_fd(self):
        nfd = nfd_after_nest("R", FD({"A"}, "D"), ["B", "C"], "N")
        assert nfd == parse_nfd("R:[A -> D]")

    def test_nested_attribute_fd(self):
        nfd = nfd_after_nest("R", FD({"A"}, "B"), ["B", "C"], "N")
        assert nfd == parse_nfd("R:[A -> N:B]")

    def test_mixed_fd(self):
        nfd = nfd_after_nest("R", FD({"A", "B"}, "C"), ["B", "C"], "N")
        assert nfd == parse_nfd("R:[A, N:B -> N:C]")

    def test_unnest_direction(self):
        assert fd_after_unnest(parse_nfd("R:[A -> N:B]"), "N") == \
            FD({"A"}, "B")
        with pytest.raises(InferenceError):
            fd_after_unnest(parse_nfd("R:[A -> N]"), "N")
        with pytest.raises(InferenceError):
            fd_after_unnest(parse_nfd("R:[A -> N:B:C]"), "N")
        with pytest.raises(InferenceError):
            fd_after_unnest(parse_nfd("R:N:[B -> C]"), "N")

    def test_unnest_batch_drops_untranslatable(self):
        nfds = [parse_nfd("R:[A -> N:B]"), parse_nfd("R:[A -> N]")]
        assert nfds_after_unnest(nfds, "N") == [FD({"A"}, "B")]


class TestSemanticPreservation:
    """nest(I) satisfies the translated NFD iff I satisfied the FD."""

    def _flat(self, rows):
        schema = parse_schema("R = {<A, B, C>}")
        return schema, Instance(schema, {"R": rows})

    def _nested(self, flat_schema, flat_instance):
        nested_type = nest_type(flat_schema.relation_type("R"), "N",
                                ["B", "C"])
        nested_schema = Schema({"R": nested_type})
        nested_value = nest(flat_instance.relation("R"), "N", ["B", "C"])
        return Instance(nested_schema, {"R": nested_value})

    def test_preserved_fd(self):
        schema, flat = self._flat([
            {"A": 1, "B": 10, "C": 100},
            {"A": 1, "B": 11, "C": 110},
            {"A": 2, "B": 10, "C": 100},
        ])
        nested = self._nested(schema, flat)
        # B -> C holds flat; translated it must hold nested.
        nfd = nfd_after_nest("R", FD({"B"}, "C"), ["B", "C"], "N")
        assert satisfies_fast(nested, nfd)

    def test_violated_fd_stays_violated(self):
        schema, flat = self._flat([
            {"A": 1, "B": 10, "C": 100},
            {"A": 2, "B": 10, "C": 999},
        ])
        nested = self._nested(schema, flat)
        nfd = nfd_after_nest("R", FD({"B"}, "C"), ["B", "C"], "N")
        assert not satisfies_fast(nested, nfd)

    def test_roundtrip_on_random_data(self, rng):
        schema = parse_schema("R = {<A, B, C>}")
        for _ in range(30):
            rows = [
                {"A": rng.randrange(2), "B": rng.randrange(2),
                 "C": rng.randrange(2)}
                for _ in range(4)
            ]
            flat = Instance(schema, {"R": rows})
            nested = self._nested(schema, flat)
            for lhs in (["A"], ["B"], ["A", "B"]):
                fd = FD(set(lhs), "C")
                flat_holds = satisfies_fast(
                    flat, parse_nfd(f"R:[{', '.join(lhs)} -> C]"))
                nested_holds = satisfies_fast(
                    nested, nfd_after_nest("R", fd, ["B", "C"], "N"))
                assert flat_holds == nested_holds, (rows, fd)
