"""Structural folds over types.

:class:`TypeVisitor` implements the classic visitor pattern for the three
type constructors; :func:`fold_type` is a lighter functional fold.  Both
are used by analyses (key discovery, generators) that need to recurse over
schema structure without repeating dispatch boilerplate.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from .base import BaseType, RecordType, SetType, Type

__all__ = ["TypeVisitor", "fold_type", "count_nodes", "set_paths_of_type"]

T = TypeVar("T")


class TypeVisitor(Generic[T]):
    """Dispatch on the three type constructors.

    Subclasses override ``visit_base``, ``visit_set`` and ``visit_record``.
    The default implementations recurse and return ``None``.
    """

    def visit(self, t: Type) -> T:
        if isinstance(t, BaseType):
            return self.visit_base(t)
        if isinstance(t, SetType):
            return self.visit_set(t)
        if isinstance(t, RecordType):
            return self.visit_record(t)
        raise TypeError(f"not a Type: {t!r}")

    def visit_base(self, t: BaseType) -> T:
        return None  # type: ignore[return-value]

    def visit_set(self, t: SetType) -> T:
        return self.visit(t.element)

    def visit_record(self, t: RecordType) -> T:
        result: T = None  # type: ignore[assignment]
        for _, field in t.fields:
            result = self.visit(field)
        return result


def fold_type(
    t: Type,
    on_base: Callable[[BaseType], T],
    on_set: Callable[[SetType, T], T],
    on_record: Callable[[RecordType, dict[str, T]], T],
) -> T:
    """Bottom-up fold: combine results from the leaves upward."""
    if isinstance(t, BaseType):
        return on_base(t)
    if isinstance(t, SetType):
        return on_set(t, fold_type(t.element, on_base, on_set, on_record))
    if isinstance(t, RecordType):
        children = {
            label: fold_type(field, on_base, on_set, on_record)
            for label, field in t.fields
        }
        return on_record(t, children)
    raise TypeError(f"not a Type: {t!r}")


def count_nodes(t: Type) -> int:
    """Total number of type constructors in *t* (size of the type tree)."""
    return sum(1 for _ in t.walk())


def set_paths_of_type(t: Type) -> list[tuple[str, ...]]:
    """Label sequences leading to every set-valued position inside *t*.

    The outermost type itself is reported as the empty sequence when it is
    a set.  Used by generators and the empty-set machinery to enumerate
    positions where an empty set could occur.
    """
    found: list[tuple[str, ...]] = []

    def recurse(current: Type, prefix: tuple[str, ...]) -> None:
        if isinstance(current, SetType):
            found.append(prefix)
            recurse(current.element, prefix)
        elif isinstance(current, RecordType):
            for label, field in current.fields:
                recurse(field, prefix + (label,))

    recurse(t, ())
    return found
