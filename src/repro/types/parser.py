"""Parser for the paper's concrete type syntax.

Grammar (whitespace-insensitive)::

    type    ::= base | set | record
    base    ::= "int" | "string" | "bool"
    set     ::= "{" record "}"
    record  ::= "<" field ("," field)* ">"
    field   ::= LABEL (":" type)?

A field without a type annotation defaults to ``int``, which lets the
paper's abbreviated examples such as ``{<A, B: {<C>}, D>}`` be written
verbatim.

Entry points: :func:`parse_type` for a single type and
:func:`parse_schema` for a multi-relation declaration of the form
``R1 = {<...>}; R2 = {<...>}``.
"""

from __future__ import annotations

from ..errors import ParseError
from .base import BOOL, INT, STRING, RecordType, SetType, Type
from .schema import Schema

__all__ = ["parse_type", "parse_schema"]

_BASE_TYPES = {"int": INT, "string": STRING, "str": STRING, "bool": BOOL}

_PUNCTUATION = "{}<>:,=;"


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind          # "label" or one of the punctuation chars
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind!r}, {self.text!r}, {self.position})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(_Token(ch, ch, i))
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(_Token("label", text[start:i], start))
            continue
        raise ParseError(f"unexpected character {ch!r}", text, i)
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token stream helpers -------------------------------------------

    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text,
                             len(self.text))
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text!r}",
                self.text, token.position,
            )
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # -- grammar productions --------------------------------------------

    def parse_type(self) -> Type:
        token = self._peek()
        if token is None:
            raise ParseError("expected a type", self.text, len(self.text))
        if token.kind == "{":
            return self.parse_set()
        if token.kind == "<":
            return self.parse_record()
        if token.kind == "label":
            self._next()
            base = _BASE_TYPES.get(token.text)
            if base is None:
                raise ParseError(
                    f"unknown base type {token.text!r}; expected int, "
                    "string, or bool",
                    self.text, token.position,
                )
            return base
        raise ParseError(f"expected a type but found {token.text!r}",
                         self.text, token.position)

    def parse_set(self) -> SetType:
        self._expect("{")
        element = self.parse_record()
        self._expect("}")
        return SetType(element)

    def parse_record(self) -> RecordType:
        self._expect("<")
        fields: list[tuple[str, Type]] = []
        while True:
            label = self._expect("label")
            token = self._peek()
            if token is not None and token.kind == ":":
                self._next()
                field_type = self.parse_type()
            else:
                field_type = INT
            fields.append((label.text, field_type))
            token = self._next()
            if token.kind == ">":
                break
            if token.kind != ",":
                raise ParseError(
                    f"expected ',' or '>' but found {token.text!r}",
                    self.text, token.position,
                )
        return RecordType(fields)

    def parse_schema(self) -> Schema:
        relations: dict[str, Type] = {}
        while not self.at_end():
            name = self._expect("label")
            self._expect("=")
            relations[name.text] = self.parse_type()
            token = self._peek()
            if token is not None and token.kind == ";":
                self._next()
        return Schema(relations)


def parse_type(text: str) -> Type:
    """Parse a single type expression.

    >>> parse_type("{<sid: int, grade: string>}").is_set()
    True
    >>> parse_type("{<A, B: {<C>}>}")  # unannotated fields default to int
    SetType(RecordType(A=BaseType('int'), B=SetType(RecordType(C=BaseType('int')))))
    """
    parser = _Parser(text)
    result = parser.parse_type()
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input {token.text!r}", text,
                         token.position)
    return result


def parse_schema(text: str) -> Schema:
    """Parse a schema declaration.

    Relations are separated by optional semicolons::

        parse_schema("R = {<A, B: {<C>}>}; S = {<D: string>}")
    """
    parser = _Parser(text)
    return parser.parse_schema()
