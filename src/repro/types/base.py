"""Nested relational types.

The paper's type grammar (Section 2)::

    tau ::= b | {tau} | <A1: tau1, ..., An: taun>

with the *strict* nested relational discipline: set and record constructors
alternate.  Concretely,

* the element type of a set must be a record type,
* every field of a record must be a base type or a set type (never a
  record directly), and
* labels within a record are unique; the paper additionally assumes that a
  label is not repeated anywhere in a type, which
  :func:`check_no_repeated_labels` enforces for schema types.

Types are immutable and hashable, so they can be used as dictionary keys
and compared structurally.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import TypeConstructionError

__all__ = [
    "Type",
    "BaseType",
    "SetType",
    "RecordType",
    "INT",
    "STRING",
    "BOOL",
    "check_no_repeated_labels",
    "is_valid_label",
]

#: Names accepted as base types by the parser and constructors.
BASE_TYPE_NAMES = ("int", "string", "bool")


def is_valid_label(label: str) -> bool:
    """Return True if *label* is usable as an attribute or relation name.

    Labels are non-empty identifiers: a letter or underscore followed by
    letters, digits, or underscores.  The path separator ``:`` and the
    bracket characters used by the concrete syntax are thereby excluded.
    """
    if not label:
        return False
    return label.isidentifier()


class Type:
    """Abstract base class of all nested relational types."""

    __slots__ = ()

    def is_base(self) -> bool:
        return isinstance(self, BaseType)

    def is_set(self) -> bool:
        return isinstance(self, SetType)

    def is_record(self) -> bool:
        return isinstance(self, RecordType)

    # Subclasses implement structural equality/hash and __repr__.

    def walk(self) -> Iterator["Type"]:
        """Yield this type and every type nested inside it, pre-order."""
        yield self

    def depth(self) -> int:
        """Return the set-nesting depth of the type.

        A base type has depth 0; a set adds one level; a record's depth is
        the maximum depth of its fields.
        """
        return 0


class BaseType(Type):
    """An atomic type: ``int``, ``string``, or ``bool``.

    The paper keeps the set of base types abstract; three concrete ones
    suffice for every example and for the completeness construction (which
    only needs one infinite domain).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if name not in BASE_TYPE_NAMES:
            raise TypeConstructionError(
                f"unknown base type {name!r}; expected one of "
                f"{', '.join(BASE_TYPE_NAMES)}"
            )
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("BaseType is immutable")

    def __reduce__(self):
        # the immutability guard defeats pickle's default slot-state
        # restore, so rebuild through the constructor
        return (BaseType, (self.name,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BaseType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("BaseType", self.name))

    def __repr__(self) -> str:
        return f"BaseType({self.name!r})"

    def __str__(self) -> str:
        return self.name


#: Shared singletons for the three base types.
INT = BaseType("int")
STRING = BaseType("string")
BOOL = BaseType("bool")


class SetType(Type):
    """A set type ``{tau}`` whose element type must be a record type.

    The strict alternation discipline of the paper forbids sets of sets and
    sets of base types at schema level; however the paper's own examples
    use ``{b}`` *values* in the completeness construction, and relations
    themselves are sets of records.  We therefore allow a set of records
    only, matching the formal grammar ("the notation {w} represents a set
    with elements of type w, where w must be a record type").
    """

    __slots__ = ("element",)

    def __init__(self, element: Type):
        if not isinstance(element, RecordType):
            raise TypeConstructionError(
                "the element type of a set must be a record type "
                f"(got {element!r}); set and record constructors alternate "
                "in the strict nested relational model"
            )
        object.__setattr__(self, "element", element)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("SetType is immutable")

    def __reduce__(self):
        return (SetType, (self.element,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetType) and self.element == other.element

    def __hash__(self) -> int:
        return hash(("SetType", self.element))

    def __repr__(self) -> str:
        return f"SetType({self.element!r})"

    def __str__(self) -> str:
        return "{" + str(self.element) + "}"

    def walk(self) -> Iterator[Type]:
        yield self
        yield from self.element.walk()

    def depth(self) -> int:
        return 1 + self.element.depth()


class RecordType(Type):
    """A record type ``<A1: tau1, ..., An: taun>``.

    Field order is preserved for display but ignored for equality and
    hashing, mirroring the usual treatment of records as label-indexed
    products.  Every field type must be a base type or a set type.
    """

    __slots__ = ("fields", "_by_label")

    def __init__(self, fields):
        """Create a record type.

        :param fields: an iterable of ``(label, type)`` pairs, or a mapping
            from label to type.
        """
        if hasattr(fields, "items"):
            pairs = tuple(fields.items())
        else:
            pairs = tuple(fields)
        seen: set[str] = set()
        for label, field_type in pairs:
            if not is_valid_label(label):
                raise TypeConstructionError(
                    f"invalid record label {label!r}: labels must be "
                    "identifiers"
                )
            if label in seen:
                raise TypeConstructionError(
                    f"repeated label {label!r} in record type"
                )
            seen.add(label)
            if not isinstance(field_type, (BaseType, SetType)):
                raise TypeConstructionError(
                    f"field {label!r} must have a base or set type, not "
                    f"{field_type!r}; records directly inside records are "
                    "not allowed in the strict nested relational model"
                )
        if not pairs:
            raise TypeConstructionError("record types must have at least "
                                        "one field")
        object.__setattr__(self, "fields", pairs)
        object.__setattr__(self, "_by_label", dict(pairs))

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("RecordType is immutable")

    def __reduce__(self):
        return (RecordType, (self.fields,))

    @property
    def labels(self) -> tuple[str, ...]:
        """The record's labels, in declaration order."""
        return tuple(label for label, _ in self.fields)

    def field(self, label: str) -> Type:
        """Return the type of *label*.

        :raises TypeConstructionError: if the label is absent.
        """
        try:
            return self._by_label[label]
        except KeyError:
            raise TypeConstructionError(
                f"record type has no field {label!r}; fields are "
                f"{', '.join(self.labels)}"
            ) from None

    def has_field(self, label: str) -> bool:
        return label in self._by_label

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordType):
            return False
        return self._by_label == other._by_label

    def __hash__(self) -> int:
        return hash(("RecordType", frozenset(self._by_label.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{label}={t!r}" for label, t in self.fields)
        return f"RecordType({inner})"

    def __str__(self) -> str:
        inner = ", ".join(f"{label}: {t}" for label, t in self.fields)
        return f"<{inner}>"

    def walk(self) -> Iterator[Type]:
        yield self
        for _, field_type in self.fields:
            yield from field_type.walk()

    def depth(self) -> int:
        return max(t.depth() for _, t in self.fields)


def check_no_repeated_labels(t: Type) -> None:
    """Enforce the paper's global no-repeated-labels assumption.

    Section 2 assumes "there are no repeated labels in a type"; e.g.
    ``<A: int, B: {<A: int>}>`` is not allowed.  This lets the logic
    translation key its variables by label alone.  The check walks the
    whole type and raises :class:`TypeConstructionError` on a duplicate.
    """
    seen: set[str] = set()
    for sub in t.walk():
        if isinstance(sub, RecordType):
            for label in sub.labels:
                if label in seen:
                    raise TypeConstructionError(
                        f"label {label!r} is repeated in the type; the "
                        "paper's model requires globally unique labels "
                        "within a relation type"
                    )
                seen.add(label)
