"""Database schemas: finite maps from relation names to types.

A schema pairs a finite set of relation names ``R`` with a mapping ``S``
such that ``S(R)`` is a set-of-records type for every relation (Section 2
of the paper).  Schemas are immutable.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..errors import SchemaError, TypeConstructionError
from .base import RecordType, SetType, Type, check_no_repeated_labels, \
    is_valid_label

__all__ = ["Schema"]


class Schema:
    """A nested relational database schema.

    Maps relation names to their (set-of-records) types and offers lookup
    and enumeration helpers used throughout the library.

    Example::

        schema = Schema({"Course": parse_type("{<cnum: string, time: int>}")})
        schema.relation_type("Course")     # the SetType
        schema.element_type("Course")      # its RecordType
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, Type]):
        checked: dict[str, SetType] = {}
        for name, rel_type in relations.items():
            if not is_valid_label(name):
                raise SchemaError(
                    f"invalid relation name {name!r}: must be an identifier"
                )
            if not isinstance(rel_type, SetType):
                raise SchemaError(
                    f"relation {name!r} must be a set of records at its "
                    f"outermost level, got {rel_type!r}"
                )
            try:
                check_no_repeated_labels(rel_type)
            except TypeConstructionError as exc:
                raise SchemaError(
                    f"relation {name!r}: {exc}"
                ) from exc
            if name in checked:  # pragma: no cover - dict keys are unique
                raise SchemaError(f"duplicate relation name {name!r}")
            checked[name] = rel_type
        if not checked:
            raise SchemaError("a schema must declare at least one relation")
        object.__setattr__(self, "_relations", checked)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("Schema is immutable")

    def __reduce__(self):
        # the immutability guard defeats pickle's default slot-state
        # restore, so rebuild through the constructor
        return (Schema, (dict(self._relations),))

    @property
    def relation_names(self) -> tuple[str, ...]:
        """All relation names, in declaration order."""
        return tuple(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def relation_type(self, name: str) -> SetType:
        """Return the set type of relation *name*.

        :raises SchemaError: if the relation does not exist.
        """
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; schema declares "
                f"{', '.join(self._relations)}"
            ) from None

    def element_type(self, name: str) -> RecordType:
        """Return the record type of the elements of relation *name*."""
        return self.relation_type(name).element

    def items(self) -> Iterator[tuple[str, SetType]]:
        return iter(self._relations.items())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and \
            self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {t}" for name, t in self.items())
        return f"Schema({inner})"
