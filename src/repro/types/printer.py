"""Pretty-printing of types and schemas.

Two renderings are provided:

* :func:`format_type` — the compact single-line concrete syntax accepted by
  :func:`repro.types.parser.parse_type`;
* :func:`format_type_tree` — an indented multi-line rendering that mirrors
  the layout the paper uses when displaying nested schemas.
"""

from __future__ import annotations

from .base import BaseType, RecordType, SetType, Type
from .schema import Schema

__all__ = ["format_type", "format_type_tree", "format_schema"]


def format_type(t: Type) -> str:
    """Render *t* in the concrete syntax (round-trips with the parser)."""
    if isinstance(t, BaseType):
        return t.name
    if isinstance(t, SetType):
        return "{" + format_type(t.element) + "}"
    if isinstance(t, RecordType):
        inner = ", ".join(
            f"{label}: {format_type(field)}" for label, field in t.fields
        )
        return f"<{inner}>"
    raise TypeError(f"not a Type: {t!r}")


def format_type_tree(t: Type, indent: int = 0) -> str:
    """Render *t* over multiple lines with two-space indentation.

    Sets open on the current line and records list one field per line,
    giving a readable view of deeply nested schemas::

        {<
          cnum: string,
          students: {<
            sid: int,
            grade: string
          >}
        >}
    """
    pad = "  " * indent
    if isinstance(t, BaseType):
        return t.name
    if isinstance(t, SetType):
        return "{" + format_type_tree(t.element, indent) + "}"
    if isinstance(t, RecordType):
        inner_pad = "  " * (indent + 1)
        lines = [
            f"{inner_pad}{label}: {format_type_tree(field, indent + 1)}"
            for label, field in t.fields
        ]
        return "<\n" + ",\n".join(lines) + f"\n{pad}>"
    raise TypeError(f"not a Type: {t!r}")


def format_schema(schema: Schema, multiline: bool = False) -> str:
    """Render a schema as relation declarations, one per line."""
    renderer = format_type_tree if multiline else format_type
    return "\n".join(
        f"{name} = {renderer(rel_type)}" for name, rel_type in schema.items()
    )
