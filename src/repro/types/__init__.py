"""Nested relational type system.

Public surface:

* :class:`~repro.types.base.BaseType`, :class:`~repro.types.base.SetType`,
  :class:`~repro.types.base.RecordType` — the type constructors, with
  ``INT``, ``STRING``, ``BOOL`` singletons;
* :class:`~repro.types.schema.Schema` — relation name → type mapping;
* :func:`~repro.types.parser.parse_type`,
  :func:`~repro.types.parser.parse_schema` — the concrete syntax;
* :func:`~repro.types.printer.format_type` and friends — rendering;
* :mod:`~repro.types.visitor` — structural folds.
"""

from .base import (
    BOOL,
    INT,
    STRING,
    BaseType,
    RecordType,
    SetType,
    Type,
    check_no_repeated_labels,
    is_valid_label,
)
from .parser import parse_schema, parse_type
from .printer import format_schema, format_type, format_type_tree
from .schema import Schema
from .visitor import TypeVisitor, count_nodes, fold_type, set_paths_of_type

__all__ = [
    "BaseType",
    "SetType",
    "RecordType",
    "Type",
    "INT",
    "STRING",
    "BOOL",
    "Schema",
    "parse_type",
    "parse_schema",
    "format_type",
    "format_type_tree",
    "format_schema",
    "TypeVisitor",
    "fold_type",
    "count_nodes",
    "set_paths_of_type",
    "check_no_repeated_labels",
    "is_valid_label",
]
