"""repro — Nested Functional Dependencies.

A from-scratch implementation of *"Reasoning about Nested Functional
Dependencies"* (Hara & Davidson, PODS 1999): the nested relational model,
NFD syntax and satisfaction semantics, the translation to first-order
logic, and a sound & complete inference engine with the paper's eight
rules, the six-rule simple system, empty-set-aware variants, and the
Appendix-A completeness construction.

Quickstart::

    from repro import parse_schema, parse_nfds, NFD, ClosureEngine

    schema = parse_schema("Course = {<cnum: string, time: int, "
                          "students: {<sid: int, grade: string>}>}")
    sigma = parse_nfds('''
        Course:[cnum -> time]
        Course:students:[sid -> grade]
    ''')
    engine = ClosureEngine(schema, sigma)
    engine.implies(NFD.parse("Course:students:[sid -> grade]"))

See README.md for the full tour and DESIGN.md for the paper mapping.
"""

from .errors import (
    InferenceError,
    InstanceError,
    NFDError,
    ParseError,
    PathError,
    ReproError,
    RuleApplicationError,
    SchemaError,
    TypeConstructionError,
    ValueError_,
)
from .inference import (
    BruteForceProver,
    ClosureEngine,
    CountermodelBuilder,
    Derivation,
    ImplicationSession,
    NonEmptySpec,
    SessionStats,
    build_countermodel,
    find_countermodel,
    implies,
    search_countermodel,
    sigma_fingerprint,
)
from .nfd import (
    NFD,
    ValidationResult,
    ValidatorEngine,
    ValidatorStats,
    find_violation,
    find_violations,
    holds_fol,
    parse_nfd,
    parse_nfds,
    satisfies,
    satisfies_all,
    satisfies_all_fast,
    satisfies_fast,
    to_simple,
    translate,
)
from .paths import EPSILON, Path, parse_path
from .types import (
    BOOL,
    INT,
    STRING,
    BaseType,
    RecordType,
    Schema,
    SetType,
    format_schema,
    format_type,
    parse_schema,
    parse_type,
)
from .values import (
    Atom,
    Instance,
    Record,
    SetValue,
    check_instance,
    from_python,
    to_python,
)

__version__ = "1.0.0"

__all__ = [
    # types
    "BaseType", "SetType", "RecordType", "Schema",
    "INT", "STRING", "BOOL",
    "parse_type", "parse_schema", "format_type", "format_schema",
    # paths
    "Path", "EPSILON", "parse_path",
    # values
    "Atom", "Record", "SetValue", "Instance",
    "from_python", "to_python", "check_instance",
    # nfds
    "NFD", "parse_nfd", "parse_nfds",
    "satisfies", "satisfies_all", "satisfies_fast", "satisfies_all_fast",
    "holds_fol", "translate", "to_simple",
    "find_violation", "find_violations",
    "ValidatorEngine", "ValidatorStats", "ValidationResult",
    # inference
    "ClosureEngine", "Derivation", "BruteForceProver",
    "ImplicationSession", "SessionStats", "sigma_fingerprint",
    "NonEmptySpec", "implies",
    "CountermodelBuilder", "build_countermodel", "find_countermodel",
    "search_countermodel",
    # errors
    "ReproError", "TypeConstructionError", "SchemaError", "ParseError",
    "PathError", "ValueError_", "InstanceError", "NFDError",
    "InferenceError", "RuleApplicationError",
    "__version__",
]
