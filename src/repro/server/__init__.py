"""Client/server split: the constraint-checking daemon and its client.

The per-process engines of the inference and validation layers —
memoized :class:`~repro.inference.ImplicationSession` closures,
compiled :class:`~repro.nfd.ValidatorEngine` plans, dense kernel
tables — are fast once warm, but every fresh process pays the warm-up
again.  This package turns them into *fleet-shared* infrastructure:

* :mod:`repro.server.protocol` — the line-delimited JSON wire format
  (versioned ``hello`` handshake, explicit ``id`` correlation, typed
  error responses);
* :mod:`repro.server.pool` — the bounded LRU of warm engines keyed by
  Σ fingerprint, with coalesced compilation and closure batching;
* :mod:`repro.server.daemon` — the asyncio server: admission control
  with load-shed responses, cooperative deadlines riding the stream
  engine's :class:`~repro.nfd.stream_validate.ResourceBudget`, and
  full observability through :mod:`repro.obs`;
* :mod:`repro.server.client` — the thin synchronous client the CLI's
  ``repro client`` verbs and ``--server`` passthrough use.

CLI entry points: ``repro serve`` runs the daemon; ``repro client
ping|stats|shutdown`` administer it; ``check`` / ``implies`` /
``closure`` / ``keys`` accept ``--server HOST:PORT`` to answer through
a daemon instead of in-process, with identical stdout and exit codes.
"""

from .client import ClientError, ReproClient, ServerError, parse_endpoint
from .daemon import (BackgroundServer, ReproServer, ServerConfig,
                     ServerStats, run_server)
from .pool import EnginePool, PoolEntry, PoolStats
from .protocol import (DEFAULT_PORT, MAX_FRAME_BYTES, PROTOCOL_VERSION,
                       ProtocolError)

__all__ = [
    "ReproServer", "ServerConfig", "ServerStats", "BackgroundServer",
    "run_server",
    "EnginePool", "PoolEntry", "PoolStats",
    "ReproClient", "ClientError", "ServerError", "parse_endpoint",
    "ProtocolError", "PROTOCOL_VERSION", "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
]
