"""A thin synchronous client for the constraint-checking daemon.

:class:`ReproClient` speaks the line-delimited JSON protocol of
:mod:`repro.server.protocol` over one TCP connection: the constructor
performs the versioned ``hello`` handshake, every call sends one
request line and reads one response line, and ids are correlated
explicitly so a mismatched reply is an error rather than a silent
misattribution.  Every socket operation runs under a timeout — a dead
or wedged server surfaces as :class:`ClientError`, never a hang.

Typed server errors raise :class:`ServerError` carrying the protocol
error ``code`` (``overloaded`` replies also carry ``retry_after_ms``);
transport-level failures — refused connections, timeouts, mid-reply
disconnects — raise :class:`ClientError`.  Both derive from
:class:`~repro.errors.ReproError`, so CLI call sites handle them like
any other library failure.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from ..errors import ReproError
from .protocol import PROTOCOL_VERSION, encode

__all__ = ["ReproClient", "ServerError", "ClientError",
           "parse_endpoint"]

#: Default per-operation socket timeout (seconds).
DEFAULT_TIMEOUT = 30.0


class ClientError(ReproError):
    """The transport failed: connect, send, or receive."""


class ServerError(ReproError):
    """The daemon answered with a typed error response."""

    def __init__(self, code: str, message: str,
                 response: dict | None = None):
        self.code = code
        self.response = response if response is not None else {}
        super().__init__(f"{code}: {message}")

    @property
    def retry_after_ms(self) -> int | None:
        """Advisory backoff from an ``overloaded`` response."""
        value = self.response.get("retry_after_ms")
        return value if isinstance(value, int) else None


def parse_endpoint(text: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)`` with a typed error on junk."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ClientError(
            f"server endpoint must be HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ClientError(
            f"server endpoint port must be an integer, got "
            f"{port_text!r}") from exc
    if not 0 < port < 65536:
        raise ClientError(f"server endpoint port out of range: {port}")
    return host, port


class ReproClient:
    """One connection to a running daemon.

    ::

        with ReproClient(host, port) as client:
            client.implies(bundle, "Course:[cnum -> time]")
            client.closure(bundle, "Course", ["cnum"])

    *bundle* arguments are plain bundle dicts — exactly the parsed
    form of a CLI bundle file (``schema`` / ``nfds`` / optional
    ``nonempty`` / ``instance``); the helpers here do no model-object
    parsing of their own, keeping the client dependency-light.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = DEFAULT_TIMEOUT,
                 handshake: bool = True):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._next_id = 0
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as exc:
            raise ClientError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        self._sock.settimeout(timeout)
        self._recv_file = self._sock.makefile("rb")
        self.server_info: dict = {}
        if handshake:
            try:
                self.server_info = self.hello()
            except ReproError:
                self.close()
                raise

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._recv_file.close()
        except OSError:  # pragma: no cover - best effort
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- transport ---------------------------------------------------------

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (fault-injection tests speak junk through
        the same socket the typed API uses)."""
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise ClientError(f"send failed: {exc}") from exc

    def read_response(self) -> dict:
        """One response line, decoded (no id checking)."""
        try:
            line = self._recv_file.readline()
        except (OSError, ValueError) as exc:
            raise ClientError(f"receive failed: {exc}") from exc
        if not line:
            raise ClientError("server closed the connection")
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClientError(
                f"server sent an undecodable response: {exc}") from exc
        if not isinstance(response, dict):
            raise ClientError("server response is not an object")
        return response

    def request(self, request_type: str, **params: Any) -> dict:
        """Send one request, await its correlated response, unwrap.

        Returns the ``result`` object of an ``ok`` response; raises
        :class:`ServerError` for a typed error response.
        """
        request_id = self._next_id
        self._next_id += 1
        payload = {"id": request_id, "type": request_type}
        for name, value in params.items():
            if value is not None:
                payload[name] = value
        self.send_raw(encode(payload))
        response = self.read_response()
        if response.get("id") != request_id:
            raise ClientError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}")
        if not response.get("ok"):
            raise ServerError(response.get("error", "internal"),
                              response.get("message", ""),
                              response)
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    # -- the protocol's verbs ----------------------------------------------

    def hello(self) -> dict:
        return self.request("hello", version=PROTOCOL_VERSION)

    def ping(self, sleep_ms: int | None = None) -> dict:
        return self.request("ping", sleep_ms=sleep_ms)

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def implies(self, bundle: dict, nfd: str, *,
                strategy: str | None = None) -> bool:
        result = self.request("implies", bundle=bundle, nfd=nfd,
                              strategy=strategy)
        return bool(result.get("implied"))

    def closure(self, bundle: dict, base: str, paths: list[str], *,
                strategy: str | None = None) -> list[str]:
        result = self.request("closure", bundle=bundle, base=base,
                              paths=list(paths), strategy=strategy)
        return list(result.get("closure", []))

    def closure_many(self, bundle: dict,
                     queries: list[tuple[str, list[str]]], *,
                     strategy: str | None = None) -> list[list[str]]:
        result = self.request(
            "closure", bundle=bundle,
            queries=[[base, list(paths)] for base, paths in queries],
            strategy=strategy)
        return [list(item) for item in result.get("closures", [])]

    def keys(self, bundle: dict, relation: str | None = None, *,
             strategy: str | None = None) -> dict:
        return self.request("keys", bundle=bundle, relation=relation,
                            strategy=strategy)

    def check(self, bundle: dict, *,
              deadline: float | None = None) -> dict:
        return self.request("check", bundle=bundle, deadline=deadline)
