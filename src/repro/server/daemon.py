"""The constraint-checking daemon: asyncio, line-delimited JSON.

:class:`ReproServer` is a long-lived TCP server answering ``implies``,
``closure``, ``keys``, and ``check`` queries over the protocol of
:mod:`repro.server.protocol`.  It exists so a fleet of clients shares
one set of warm engines (:class:`~repro.server.pool.EnginePool`)
instead of each process paying saturation and plan compilation on
startup — the per-process caches of the inference and validation
layers, turned into shared infrastructure.

Operational behaviour, all of it bounded and typed:

* **Admission control** — at most ``max_inflight`` requests execute at
  once and at most ``max_pending`` wait; a request beyond both is shed
  immediately with ``{"error": "overloaded", "retry_after_ms": ...}``
  instead of queueing unboundedly or hanging.
* **Deadlines** — with ``connection_deadline`` set, every connection
  gets a wall-clock budget; ``check`` requests thread the remaining
  time into the stream engine's cooperative
  :class:`~repro.nfd.stream_validate.ResourceBudget` (the same
  machinery ``check --stream --deadline`` uses), so even a validation
  that is mid-walk stops at the deadline and answers
  ``deadline_exceeded`` with its progress.
* **Frame bounds** — a request line beyond ``max_frame_bytes`` is
  answered with ``frame_too_large`` and the connection is closed.
* **Observability** — per-request spans when a tracer is attached,
  request/latency/shed/eviction counters in :class:`ServerStats`, and
  a ``stats`` request (or ``repro serve --metrics-json``) rendering
  the same numbers through a :class:`~repro.obs.RunReport`.

No stack trace ever crosses the wire or lands on stderr: unexpected
handler failures become ``{"error": "internal"}`` responses and a
counter tick, and the warm pool survives them.

:class:`BackgroundServer` runs the same server on a daemon thread for
tests and embedding; the CLI's ``repro serve`` runs :func:`run_server`
in the foreground with signal-driven shutdown.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from ..errors import NFDError, ReproError
from ..nfd.stream_validate import ResourceBudget, stream_validate
from ..io.stream import iter_set_elements
from ..nfd.parser import parse_nfd
from ..obs import RunReport, Tracer
from ..paths.path import parse_path
from .pool import EnginePool
from .protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION, STRATEGIES,
                       ProtocolError, decode_line, encode,
                       error_response, ok_response,
                       parse_bundle_payload)

__all__ = ["ServerConfig", "ServerStats", "ReproServer",
           "BackgroundServer", "run_server"]


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can tune, in one picklable record."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral, report after bind
    max_sessions: int = 32            # engine-pool LRU bound
    max_inflight: int = 8             # concurrently executing requests
    max_pending: int = 32             # admission queue bound
    connection_deadline: float | None = None  # seconds per connection
    max_frame_bytes: int = MAX_FRAME_BYTES
    cache_dir: str | None = None      # persistent store write-through
    allow_debug: bool = False         # honour ping {"sleep_ms": ...}
    allow_shutdown: bool = False      # honour the shutdown request
    retry_after_ms: int = 50          # advisory backoff in shed replies

    def validate(self) -> None:
        if self.max_sessions < 1:
            raise ReproError("max-sessions must be at least 1")
        if self.max_inflight < 1:
            raise ReproError("max-inflight must be at least 1")
        if self.max_pending < 0:
            raise ReproError("max-pending must be >= 0")
        if self.connection_deadline is not None \
                and self.connection_deadline < 0:
            raise ReproError("deadline must be >= 0")
        if not (0 < self.port < 65536 or self.port == 0):
            raise ReproError(f"port must be 0..65535, got {self.port}")


class ServerStats:
    """Cumulative counters of the daemon's lifetime activity."""

    __slots__ = ("started_at", "connections", "connections_active",
                 "requests", "by_type", "ok", "errors", "by_error",
                 "sheds", "deadline_hits", "protocol_errors",
                 "bytes_in", "bytes_out", "latency_count",
                 "latency_total_ms", "latency_max_ms")

    def __init__(self):
        self.started_at = time.monotonic()
        self.connections = 0
        self.connections_active = 0
        self.requests = 0
        self.by_type: dict[str, int] = {}
        self.ok = 0
        self.errors = 0
        self.by_error: dict[str, int] = {}
        self.sheds = 0
        self.deadline_hits = 0
        self.protocol_errors = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.latency_count = 0
        self.latency_total_ms = 0.0
        self.latency_max_ms = 0.0

    def observe(self, request_type: str, ok: bool, elapsed_ms: float,
                error_code: str | None = None) -> None:
        self.requests += 1
        self.by_type[request_type] = \
            self.by_type.get(request_type, 0) + 1
        if ok:
            self.ok += 1
        else:
            self.errors += 1
            if error_code is not None:
                self.by_error[error_code] = \
                    self.by_error.get(error_code, 0) + 1
        self.latency_count += 1
        self.latency_total_ms += elapsed_ms
        if elapsed_ms > self.latency_max_ms:
            self.latency_max_ms = elapsed_ms

    def as_dict(self) -> dict:
        mean = (self.latency_total_ms / self.latency_count
                if self.latency_count else 0.0)
        return {
            "uptime_s": time.monotonic() - self.started_at,
            "connections": self.connections,
            "connections_active": self.connections_active,
            "requests": self.requests,
            "by_type": dict(self.by_type),
            "ok": self.ok,
            "errors": self.errors,
            "by_error": dict(self.by_error),
            "sheds": self.sheds,
            "deadline_hits": self.deadline_hits,
            "protocol_errors": self.protocol_errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "latency_mean_ms": mean,
            "latency_max_ms": self.latency_max_ms,
        }

    def as_metrics(self) -> dict:
        """The :class:`~repro.obs.RunReport` section protocol."""
        return self.as_dict()


class ReproServer:
    """The asyncio daemon.  See the module docstring for semantics."""

    def __init__(self, config: ServerConfig | None = None, *,
                 tracer: Tracer | None = None):
        self.config = config if config is not None else ServerConfig()
        self.config.validate()
        self.tracer = tracer
        self.stats = ServerStats()
        self.store = None
        if self.config.cache_dir is not None:
            from ..store import open_store
            self.store = open_store(self.config.cache_dir)
        self.pool = EnginePool(max_entries=self.config.max_sessions,
                               store=self.store, tracer=tracer)
        self.host: str | None = None
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._inflight = 0
        self._waiting = 0
        self._slots: asyncio.Semaphore | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and record the actual host/port."""
        self._stop_event = asyncio.Event()
        self._slots = asyncio.Semaphore(self.config.max_inflight)
        self._server = await asyncio.start_server(
            self._on_connect, self.config.host, self.config.port,
            limit=self.config.max_frame_bytes)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    def request_stop(self) -> None:
        """Ask the serve loop to finish (safe from the loop thread)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def wait_stopped(self) -> None:
        await self._stop_event.wait()

    async def close(self) -> None:
        """Stop accepting, drop live connections, release the store."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        if self.store is not None:
            self.store.close()
            self.store = None

    async def run(self) -> None:
        """``start`` + serve until :meth:`request_stop` + ``close``."""
        await self.start()
        try:
            await self.wait_stopped()
        finally:
            await self.close()

    def report(self) -> RunReport:
        """The daemon's consolidated metrics report."""
        report = (RunReport(command="serve")
                  .add("server", self.stats)
                  .add("pool", self.pool))
        if self.store is not None:
            report.add("cache", self.store.stats)
        return report

    # -- connection handling -----------------------------------------------

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.stats.connections += 1
        self.stats.connections_active += 1
        deadline_at = None
        if self.config.connection_deadline is not None:
            deadline_at = time.monotonic() \
                + self.config.connection_deadline
        greeted = False
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # the frame outgrew the stream limit; the buffer
                    # was discarded, so the stream position is gone —
                    # answer and close
                    self.stats.protocol_errors += 1
                    await self._send(writer, error_response(
                        None, "frame_too_large",
                        f"request line exceeds "
                        f"{self.config.max_frame_bytes} bytes"))
                    break
                if not line:
                    break  # client closed cleanly
                self.stats.bytes_in += len(line)
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except ProtocolError as exc:
                    self.stats.protocol_errors += 1
                    await self._send(writer, error_response(
                        None, exc.code, str(exc)))
                    if exc.close:
                        break
                    continue
                response, close, greeted = await self._dispatch(
                    request, greeted, deadline_at)
                await self._send(writer, response)
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass  # client vanished mid-stream, or the daemon is closing
        finally:
            self.stats.connections_active -= 1
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    response: dict) -> None:
        data = encode(response)
        self.stats.bytes_out += len(data)
        writer.write(data)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    QUERY_TYPES = ("implies", "closure", "keys", "check")

    async def _dispatch(self, request: dict, greeted: bool,
                        deadline_at: float | None) \
            -> tuple[dict, bool, bool]:
        """One request → ``(response, close_connection, greeted)``."""
        request_id = request.get("id")
        request_type = request["type"]
        started = time.monotonic()

        def done(response: dict, close: bool = False):
            elapsed_ms = (time.monotonic() - started) * 1000.0
            code = response.get("error")
            self.stats.observe(request_type, response.get("ok", False),
                               elapsed_ms, code)
            return response, close, greeted or request_type == "hello" \
                and response.get("ok", False)

        if not greeted and request_type != "hello":
            return done(error_response(
                request_id, "handshake_required",
                'the first request must be {"type": "hello", '
                f'"version": {PROTOCOL_VERSION}}}'), close=True)
        if request_type == "hello":
            version = request.get("version")
            if version != PROTOCOL_VERSION:
                return done(error_response(
                    request_id, "version_mismatch",
                    f"server speaks protocol {PROTOCOL_VERSION}, "
                    f"client offered {version!r}",
                    server_version=PROTOCOL_VERSION), close=True)
            return done(ok_response(request_id, "hello", {
                "server": "repro",
                "protocol": PROTOCOL_VERSION,
                "strategies": list(STRATEGIES),
                "types": ["hello", "ping", "stats", "shutdown",
                          *self.QUERY_TYPES],
            }))
        if request_type == "ping":
            sleep_ms = request.get("sleep_ms", 0)
            if sleep_ms and self.config.allow_debug:
                admitted = await self._admit()
                if not admitted:
                    return done(self._shed_response(request_id))
                try:
                    await asyncio.sleep(sleep_ms / 1000.0)
                finally:
                    self._slots.release()
            return done(ok_response(request_id, "ping",
                                    {"pong": True}))
        if request_type == "stats":
            return done(ok_response(request_id, "stats", {
                "server": self.stats.as_dict(),
                "pool": self.pool.as_metrics(),
            }))
        if request_type == "shutdown":
            if not self.config.allow_shutdown:
                return done(error_response(
                    request_id, "shutdown_disabled",
                    "the daemon was started without "
                    "--allow-shutdown"))
            response, close, greeted = done(ok_response(
                request_id, "shutdown", {"stopping": True}),
                close=True)
            self.request_stop()
            return response, close, greeted
        if request_type not in self.QUERY_TYPES:
            return done(error_response(
                request_id, "unknown_type",
                f"unknown request type {request_type!r}; this server "
                f"speaks {', '.join(('hello', 'ping', 'stats', 'shutdown') + self.QUERY_TYPES)}"))

        # -- query types: admission control, then the handler ------------
        admitted = await self._admit()
        if not admitted:
            return done(self._shed_response(request_id))
        try:
            remaining = None
            if deadline_at is not None:
                remaining = max(0.0, deadline_at - time.monotonic())
            tracer = self.tracer
            if tracer is None:
                response = await self._handle_query(
                    request_id, request_type, request, remaining)
            else:
                with tracer.span("server.request", type=request_type) \
                        as span:
                    response = await self._handle_query(
                        request_id, request_type, request, remaining)
                    span.add("ok", bool(response.get("ok")))
            if response.get("error") == "deadline_exceeded":
                self.stats.deadline_hits += 1
            return done(response)
        except ProtocolError as exc:
            if exc.code == "deadline_exceeded":
                self.stats.deadline_hits += 1
            return done(error_response(request_id, exc.code, str(exc)))
        except ReproError as exc:
            return done(error_response(request_id, "invalid_query",
                                       str(exc)))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # no traceback across the wire or onto stderr — the typed
            # response plus a counter is the whole fault surface
            return done(error_response(
                request_id, "internal",
                f"{type(exc).__name__}: {exc}"))
        finally:
            self._slots.release()

    async def _admit(self) -> bool:
        """Admission control: a bounded wait for an execution slot."""
        if self._slots.locked():
            if self._waiting >= self.config.max_pending:
                return False
            self._waiting += 1
            try:
                await self._slots.acquire()
            finally:
                self._waiting -= 1
            return True
        await self._slots.acquire()
        return True

    def _shed_response(self, request_id) -> dict:
        self.stats.sheds += 1
        return error_response(
            request_id, "overloaded",
            f"server is at capacity ({self.config.max_inflight} "
            f"in flight, {self.config.max_pending} queued)",
            retry_after_ms=self.config.retry_after_ms)

    # -- query handlers ----------------------------------------------------

    @staticmethod
    def _strategy_of(request: dict) -> str:
        strategy = request.get("strategy", "worklist")
        if strategy not in STRATEGIES:
            raise ProtocolError(
                "invalid_query",
                f"unknown strategy {strategy!r}; expected one of "
                f"{', '.join(STRATEGIES)}")
        return strategy

    @staticmethod
    def _effective_deadline(request: dict,
                            remaining: float | None) -> float | None:
        """The request's cooperative budget: the smaller of the
        connection's remaining time and the request's own ``deadline``
        parameter (``None`` = unbounded)."""
        requested = request.get("deadline")
        if requested is not None:
            if not isinstance(requested, (int, float)) \
                    or isinstance(requested, bool) or requested < 0:
                raise ProtocolError(
                    "invalid_query",
                    f'"deadline" must be a non-negative number, got '
                    f"{requested!r}")
            remaining = requested if remaining is None \
                else min(remaining, float(requested))
        return remaining

    def _check_deadline(self, deadline: float | None) -> None:
        if deadline is not None and deadline <= 0:
            raise ProtocolError("deadline_exceeded",
                                "the connection deadline has expired")

    async def _handle_query(self, request_id, request_type: str,
                            request: dict,
                            remaining: float | None) -> dict:
        deadline = self._effective_deadline(request, remaining)
        if "bundle" not in request:
            raise ProtocolError(
                "invalid_query",
                f'"{request_type}" requires a "bundle" object')
        schema, sigma, instance, spec = \
            parse_bundle_payload(request["bundle"])
        entry = self.pool.entry_for(schema, sigma, spec)
        if request_type == "check":
            return await self._query_check(request_id, entry, instance,
                                           deadline)
        strategy = self._strategy_of(request)
        self._check_deadline(deadline)
        if request_type == "implies":
            return await self._query_implies(request_id, entry,
                                             strategy, request)
        if request_type == "closure":
            return await self._query_closure(request_id, entry,
                                             strategy, request)
        return await self._query_keys(request_id, entry, strategy,
                                      request)

    async def _query_implies(self, request_id, entry, strategy,
                             request) -> dict:
        text = request.get("nfd")
        if not isinstance(text, str):
            raise ProtocolError("invalid_query",
                                '"implies" requires an "nfd" string')
        candidate = parse_nfd(text)
        session = await self.pool.session_for(entry, strategy)
        try:
            candidate.check_well_formed(session.schema)
        except NFDError as exc:
            raise ProtocolError("invalid_query", str(exc)) from exc
        batcher = await self.pool.batcher_for(entry, strategy)
        closed = await batcher.closure(candidate.base, candidate.lhs)
        implied = candidate.rhs in closed
        return ok_response(request_id, "implies", {
            "implied": implied,
            "nfd": str(candidate),
        })

    async def _query_closure(self, request_id, entry, strategy,
                             request) -> dict:
        """Single ``base``/``paths`` query, or a pipelined ``queries``
        list — either way served through the entry's batcher, so
        concurrent and pipelined queries share kernel sweeps."""
        if "queries" in request:
            specs = request["queries"]
            if not isinstance(specs, list) or not all(
                    isinstance(q, (list, tuple)) and len(q) == 2
                    for q in specs):
                raise ProtocolError(
                    "invalid_query",
                    '"queries" must be a list of [base, [paths]] '
                    "pairs")
            single = False
        else:
            if not isinstance(request.get("base"), str):
                raise ProtocolError(
                    "invalid_query",
                    '"closure" requires a "base" path string')
            specs = [[request["base"], request.get("paths", [])]]
            single = True
        parsed = []
        for base_text, path_texts in specs:
            if not isinstance(path_texts, (list, tuple)) or not all(
                    isinstance(p, str) for p in path_texts):
                raise ProtocolError(
                    "invalid_query", '"paths" must be a list of path '
                                     "strings")
            parsed.append((parse_path(base_text),
                           {parse_path(p) for p in path_texts}))
        batcher = await self.pool.batcher_for(entry, strategy)
        closures = await asyncio.gather(*[
            batcher.closure(base, lhs) for base, lhs in parsed])
        # Path-tuple sort order (what the CLI prints), not string sort
        # — the two differ once labels mix digits and separators
        rendered = [[str(p) for p in sorted(closed)]
                    for closed in closures]
        result = {"closures": rendered}
        if single:
            result["closure"] = rendered[0]
        return ok_response(request_id, "closure", result)

    async def _query_keys(self, request_id, entry, strategy,
                          request) -> dict:
        from ..analysis import minimal_keys
        relation = request.get("relation")
        if relation is None:
            relation = entry.schema.relation_names[0]
        if not isinstance(relation, str):
            raise ProtocolError("invalid_query",
                                '"relation" must be a string')
        session = await self.pool.session_for(entry, strategy)
        keys = minimal_keys(entry.schema, entry.sigma, relation,
                            engine=session, nonempty=entry.nonempty,
                            strategy=strategy)
        return ok_response(request_id, "keys", {
            "relation": relation,
            "keys": [sorted(str(p) for p in key) for key in keys],
        })

    async def _query_check(self, request_id, entry, instance,
                           deadline: float | None) -> dict:
        if instance is None:
            raise ProtocolError(
                "invalid_query",
                'bundle has no "instance" to check')
        from ..values import check_instance
        check_instance(instance)
        if deadline is None:
            # the warm path: the pool's compiled validator, one walk
            validator = await self.pool.validator_for(entry)
            result = validator.validate(instance, all_violations=True)
            return ok_response(request_id, "check", {
                "satisfied": not result.violations,
                "violations": [v.describe()
                               for v in result.violations],
                "partial": None,
            })
        # a bounded check rides the stream engine's cooperative
        # cancellation: elements feed through iter_set_elements and
        # the ResourceBudget deadline stops the walk mid-stream
        budget = ResourceBudget(deadline=deadline)
        sources = {
            name: iter_set_elements(instance.relation(name))
            for name in dict.fromkeys(nfd.relation
                                      for nfd in entry.sigma)
        }
        result = stream_validate(entry.schema, entry.sigma, sources,
                                 budget=budget, store=self.store,
                                 tracer=self.tracer)
        if result.budget_exhausted is not None \
                and not result.violations:
            raise ProtocolError(
                "deadline_exceeded",
                f"deadline expired after {result.elements_seen} "
                f"element(s); verdict unknown")
        return ok_response(request_id, "check", {
            "satisfied": result.ok,
            "violations": [v.describe() for v in result.violations],
            "partial": result.budget_exhausted,
            "elements_seen": result.elements_seen,
        })


# ---------------------------------------------------------------- embedding


class BackgroundServer:
    """A daemon on a background thread, for tests and embedding.

    ::

        with BackgroundServer(ServerConfig(allow_debug=True)) as bg:
            client = ReproClient(bg.host, bg.port)

    ``start`` blocks until the listener is bound (so ``host``/``port``
    are real), and ``stop`` blocks until the loop thread has exited —
    no sleeps, no races.
    """

    def __init__(self, config: ServerConfig | None = None, *,
                 tracer: Tracer | None = None):
        self.server = ReproServer(config, tracer=tracer)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._main,
                                        name="repro-server",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("server thread did not start in time")
        if self._startup_error is not None:
            raise ReproError(
                f"server failed to start: {self._startup_error}")
        return self

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self.server.wait_stopped()
        finally:
            await self.server.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.server.request_stop)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog
            raise ReproError("server thread did not stop in time")
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def run_server(config: ServerConfig, *, tracer: Tracer | None = None,
               ready=None) -> RunReport:
    """Run a daemon in the foreground until SIGINT/SIGTERM.

    *ready* (a callable receiving the server) fires after the listener
    is bound — the CLI uses it to print the readiness line holding the
    actual ephemeral port.  Returns the final metrics report.
    """
    import signal

    server = ReproServer(config, tracer=tracer)

    async def main() -> RunReport:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):
                # platforms without signal handler support fall back
                # to KeyboardInterrupt propagation
                pass
        if ready is not None:
            ready(server)
        try:
            await server.wait_stopped()
        finally:
            report = server.report()
            await server.close()
        return report

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - fallback path
        return (RunReport(command="serve")
                .add("server", server.stats)
                .add("pool", server.pool))
