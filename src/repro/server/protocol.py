"""The daemon's wire protocol: line-delimited JSON with typed errors.

One request object per line, one response object per line, in order,
over a plain TCP stream.  Every request carries a client-chosen ``id``
that the matching response echoes, so a client can pipeline requests
and correlate answers; a connection starts with a versioned ``hello``
handshake and every later line is a query::

    -> {"id": 0, "type": "hello", "version": 1}
    <- {"id": 0, "ok": true, "result": {"server": "repro", ...}}
    -> {"id": 1, "type": "implies", "bundle": {...}, "nfd": "R:[a -> b]"}
    <- {"id": 1, "ok": true, "result": {"implied": true, ...}}

Responses are either ``{"id", "ok": true, "result": {...}}`` or a
*typed error* ``{"id", "ok": false, "error": CODE, "message": ...}`` —
the daemon never answers a malformed or failing request with silence,
a hang, or a stack trace.  The error codes are enumerated in
:data:`ERROR_CODES`; two deserve special mention:

* ``overloaded`` — admission control shed the request; the response
  carries ``retry_after_ms`` and the connection stays usable;
* ``deadline_exceeded`` — the request's cooperative deadline expired
  mid-computation (``check`` reuses the stream engine's
  :class:`~repro.nfd.stream_validate.ResourceBudget` cancellation);
  the response carries ``elements_seen`` so clients can reason about
  partial progress.

Queries name their constraint universe by shipping a *bundle* — the
same JSON object the CLI's bundle files hold (``schema`` / ``nfds`` /
optional ``nonempty`` and ``instance``; see :mod:`repro.io.json_io`) —
and the daemon keys its warm state on the bundle's canonical
:func:`~repro.inference.session.sigma_fingerprint`, so any client
spelling the same logical Σ shares the compiled pool.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ReproError
from ..inference.empty_sets import NonEmptySpec
from ..io.json_io import (instance_from_dict, nfds_from_list,
                          schema_from_dict)
from ..paths.path import parse_path

__all__ = [
    "PROTOCOL_VERSION", "DEFAULT_PORT", "MAX_FRAME_BYTES",
    "ERROR_CODES", "STRATEGIES", "ProtocolError",
    "encode", "decode_line", "ok_response", "error_response",
    "parse_bundle_payload",
]

#: The handshake version this build speaks.  Bump on any change that
#: an old client could misread; the server refuses mismatched hellos
#: with a ``version_mismatch`` error naming both versions.
PROTOCOL_VERSION = 1

#: The port ``repro serve`` binds when none is given (0 = ephemeral).
DEFAULT_PORT = 7399

#: Default per-line frame bound.  A line longer than this is answered
#: with ``frame_too_large`` and the connection is closed (the stream
#: position past an oversized frame is unrecoverable).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Closure strategies a query may select.
STRATEGIES = ("worklist", "naive", "dense")

#: Every error code a response may carry.
ERROR_CODES = (
    "bad_json",          # the line was not valid JSON
    "bad_request",       # valid JSON, but not a usable request object
    "frame_too_large",   # the line exceeded the frame bound
    "handshake_required",  # a query arrived before hello
    "version_mismatch",  # hello named an unsupported protocol version
    "unknown_type",      # an unrecognized request type
    "invalid_bundle",    # the bundle payload failed to parse
    "invalid_query",     # query parameters failed validation / parsing
    "overloaded",        # admission control shed the request
    "deadline_exceeded",  # the cooperative deadline expired
    "shutdown_disabled",  # remote shutdown without --allow-shutdown
    "internal",          # unexpected server-side failure (no traceback
                         # crosses the wire or the daemon's stderr)
)


class ProtocolError(ReproError):
    """A request violated the wire protocol.

    Raised server-side while decoding a frame and rendered as a typed
    error response; ``code`` is one of :data:`ERROR_CODES` and
    ``close`` says whether the connection can keep serving (a JSON
    syntax error is recoverable — the stream resyncs at the next
    newline — but an oversized frame or a failed handshake is not).
    """

    def __init__(self, code: str, message: str, *, close: bool = False):
        assert code in ERROR_CODES, code
        self.code = code
        self.close = close
        super().__init__(message)


def encode(obj: dict) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Decode one request frame, raising :class:`ProtocolError` with
    the matching error code instead of leaking decoder exceptions."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("bad_json",
                            f"frame is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "bad_json",
            f"frame is not valid JSON at column {exc.colno}: "
            f"{exc.msg}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_request",
            f"request must be a JSON object, found "
            f"{type(payload).__name__}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError(
            "bad_request",
            f'"id" must be a string or integer, found '
            f"{type(request_id).__name__}")
    request_type = payload.get("type")
    if not isinstance(request_type, str):
        raise ProtocolError(
            "bad_request",
            'request is missing the required "type" string')
    return payload


def ok_response(request_id: Any, request_type: str,
                result: dict) -> dict:
    return {"id": request_id, "ok": True, "type": request_type,
            "result": result}


def error_response(request_id: Any, code: str, message: str,
                   **extra: Any) -> dict:
    assert code in ERROR_CODES, code
    response = {"id": request_id, "ok": False, "error": code,
                "message": message}
    response.update(extra)
    return response


def parse_bundle_payload(payload: Any):
    """Parse a request's ``bundle`` object into model objects.

    The payload is the parsed form of a CLI bundle file — ``schema``
    and ``nfds`` required on the wire, ``instance`` and ``nonempty``
    optional — and any shape or syntax problem surfaces as a
    :class:`ProtocolError` with code ``invalid_bundle``.  Returns
    ``(schema, sigma, instance, nonempty_spec)``.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            "invalid_bundle",
            f'"bundle" must be a JSON object, found '
            f"{type(payload).__name__}")
    if "schema" not in payload:
        raise ProtocolError(
            "invalid_bundle", 'bundle is missing the required "schema"')
    try:
        schema = schema_from_dict(payload["schema"])
        sigma = nfds_from_list(payload.get("nfds", []))
        instance = None
        if payload.get("instance") is not None:
            instance = instance_from_dict(schema, payload["instance"])
        declared = payload.get("nonempty")
        if declared is None:
            spec = None
        elif declared == "*":
            spec = NonEmptySpec.all_nonempty()
        elif isinstance(declared, list):
            spec = NonEmptySpec({parse_path(item) for item in declared})
        else:
            raise ProtocolError(
                "invalid_bundle",
                '"nonempty" must be "*" or a list of paths')
    except ProtocolError:
        raise
    except (ReproError, TypeError, AttributeError, KeyError) as exc:
        raise ProtocolError("invalid_bundle",
                            f"bundle does not parse: {exc}") from exc
    return schema, sigma, instance, spec
