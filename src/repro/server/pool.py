"""The daemon's warm state: a bounded pool of compiled engines.

Every query request names its constraint universe by shipping a bundle;
the pool maps the bundle's canonical
:func:`~repro.inference.session.sigma_fingerprint` to a
:class:`PoolEntry` holding the parsed model objects plus, built lazily
and kept warm:

* one :class:`~repro.inference.session.ImplicationSession` per
  requested closure strategy (memoized closures, optional write-through
  to the persistent :class:`~repro.store.CacheStore`), and
* one :class:`~repro.nfd.batch_validate.ValidatorEngine` (compiled
  path-trie plans, restored from the store when a payload for this Σ
  exists).

The pool is a **bounded LRU** (:attr:`EnginePool.max_entries`): the
least-recently-used fingerprint is evicted when a new one would exceed
the bound, and its cumulative engine counters are folded into retired
totals first, so the aggregate counters the ``stats`` request reports
never go backwards.

Concurrent requests for a fingerprint whose engines are still being
built **coalesce**: the first request runs the build in the event
loop's default executor and every later request awaits the same
future, so one Σ arriving on a hundred connections compiles exactly
once (``coalesced_builds`` counts the riders).

Queued closure queries against one entry **batch**: each
:class:`_ClosureBatcher` parks callers for one event-loop tick, drains
everything that accumulated, and serves the whole batch through
:meth:`ImplicationSession.closure_batch` — subset-ordered, seed-shared,
and (under ``strategy="dense"``) one sweep of the dense kernel per
batch instead of one per query.
"""

from __future__ import annotations

import asyncio
import hashlib
from collections import OrderedDict
from typing import Iterable

from ..inference.session import ImplicationSession, sigma_fingerprint
from ..nfd.batch_validate import ValidatorEngine
from ..store.warm import cached_validator

__all__ = ["EnginePool", "PoolEntry", "PoolStats"]


class PoolStats:
    """Counters of the pool's lifetime activity (cumulative)."""

    __slots__ = ("hits", "misses", "evictions", "coalesced_builds",
                 "session_builds", "validator_builds", "batches",
                 "batched_queries")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced_builds = 0
        self.session_builds = 0
        self.validator_builds = 0
        self.batches = 0
        self.batched_queries = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class _ClosureBatcher:
    """Coalesce concurrent closure queries into ``closure_batch`` calls.

    Callers enqueue ``(base, lhs)`` and await a future; the first
    caller becomes the *drainer*: it yields once to the event loop (so
    every request already parked on other connections can enqueue),
    then serves the entire backlog in one
    :meth:`ImplicationSession.closure_batch` call and resolves the
    futures in order.  Batching changes only how many kernel sweeps
    run — answers are identical to per-query :meth:`closure` calls.
    """

    __slots__ = ("session", "stats", "_pending", "_draining")

    def __init__(self, session: ImplicationSession, stats: PoolStats):
        self.session = session
        self.stats = stats
        self._pending: list[tuple[object, object, asyncio.Future]] = []
        self._draining = False

    async def closure(self, base, lhs) -> frozenset:
        future = asyncio.get_running_loop().create_future()
        self._pending.append((base, lhs, future))
        if not self._draining:
            self._draining = True
            try:
                # one tick for concurrently-parked requests to enqueue
                await asyncio.sleep(0)
                while self._pending:
                    batch = self._pending
                    self._pending = []
                    self._drain(batch)
            finally:
                self._draining = False
        return await future

    def _drain(self, batch) -> None:
        self.stats.batches += 1
        self.stats.batched_queries += len(batch)
        try:
            results = self.session.closure_batch(
                [(base, lhs) for base, lhs, _ in batch])
        except BaseException as exc:
            for _, _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, _, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)


class PoolEntry:
    """One fingerprint's warm state: model objects plus lazy engines."""

    __slots__ = ("key", "fingerprint", "schema", "sigma", "nonempty",
                 "sessions", "batchers", "validator")

    def __init__(self, key: str, fingerprint: str, schema, sigma,
                 nonempty):
        self.key = key
        self.fingerprint = fingerprint
        self.schema = schema
        self.sigma = tuple(sigma)
        self.nonempty = nonempty
        self.sessions: dict[str, ImplicationSession] = {}
        self.batchers: dict[str, _ClosureBatcher] = {}
        self.validator: ValidatorEngine | None = None


class EnginePool:
    """Bounded, coalescing LRU of warm engines keyed by fingerprint.

    The entry key is the Σ fingerprint extended with a hash of the
    member texts *in order*: closure answers are order-independent but
    compiled validator plans (and with them witness ordering) are not,
    so two spellings of one logical Σ in different member order get
    separate entries while still sharing the persistent store's
    fingerprint-keyed closure memo.
    """

    def __init__(self, *, max_entries: int = 32, store=None,
                 tracer=None):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.store = store
        self.tracer = tracer
        self.stats = PoolStats()
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self._building: dict[tuple[str, str], asyncio.Future] = {}
        # Engine counters folded out of evicted entries, so aggregates
        # are monotone across evictions.
        self._retired = {"rule_attempts": 0, "saturations": 0,
                         "plan_compilations": 0, "closure_queries": 0,
                         "memo_hits": 0, "store_hits": 0,
                         "store_misses": 0}

    def __len__(self) -> int:
        return len(self._entries)

    # -- entry lookup ------------------------------------------------------

    def entry_for(self, schema, sigma, nonempty) -> PoolEntry:
        """The (possibly fresh) entry for one parsed bundle."""
        sigma = tuple(sigma)
        fingerprint = sigma_fingerprint(schema, sigma, nonempty)
        order = hashlib.sha256(
            "\n".join(str(nfd) for nfd in sigma).encode()).hexdigest()
        key = f"{fingerprint}:{order[:16]}"
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        entry = PoolEntry(key, fingerprint, schema, sigma, nonempty)
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self._retire(evicted)
            self.stats.evictions += 1
        return entry

    def _retire(self, entry: PoolEntry) -> None:
        """Fold an evicted entry's counters into the retired totals."""
        for session in entry.sessions.values():
            stats = session.stats
            self._retired["rule_attempts"] += stats.engine.attempts
            self._retired["saturations"] += stats.engine.saturations
            self._retired["closure_queries"] += stats.queries
            self._retired["memo_hits"] += stats.hits
            self._retired["store_hits"] += stats.store_hits
            self._retired["store_misses"] += stats.store_misses
        if entry.validator is not None:
            self._retired["plan_compilations"] += \
                entry.validator.stats.plan_compilations

    # -- coalesced engine builds -------------------------------------------

    async def _build(self, slot: tuple[str, str], factory):
        """Run *factory* in the default executor, coalescing callers.

        The first caller for *slot* owns the build; every concurrent
        caller awaits the same future and counts as a coalesced rider.
        The slot is cleared afterwards so a failed build can retry.
        """
        pending = self._building.get(slot)
        if pending is not None:
            self.stats.coalesced_builds += 1
            return await pending
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._building[slot] = future
        try:
            result = await loop.run_in_executor(None, factory)
        except BaseException as exc:
            future.set_exception(exc)
            # mark the exception retrieved (riders re-raise on await
            # regardless; without this a rider-less failure would log
            # an "exception was never retrieved" warning at GC time)
            future.exception()
            raise
        else:
            future.set_result(result)
            return result
        finally:
            del self._building[slot]

    async def session_for(self, entry: PoolEntry,
                          strategy: str) -> ImplicationSession:
        """The entry's warm session for *strategy*, built on first use."""
        session = entry.sessions.get(strategy)
        if session is not None:
            return session
        def factory():
            return ImplicationSession(
                entry.schema, entry.sigma, entry.nonempty,
                strategy=strategy, tracer=self.tracer,
                store=self.store)
        session = await self._build((entry.key, strategy), factory)
        if strategy not in entry.sessions:
            entry.sessions[strategy] = session
            self.stats.session_builds += 1
        return entry.sessions[strategy]

    async def validator_for(self, entry: PoolEntry) -> ValidatorEngine:
        """The entry's warm validator, restored from the store when a
        payload compiled for this Σ order exists."""
        if entry.validator is not None:
            return entry.validator
        def factory():
            return cached_validator(entry.schema, entry.sigma,
                                    store=self.store,
                                    tracer=self.tracer)
        validator = await self._build((entry.key, "validator"), factory)
        if entry.validator is None:
            entry.validator = validator
            self.stats.validator_builds += 1
        return entry.validator

    async def batcher_for(self, entry: PoolEntry,
                          strategy: str) -> _ClosureBatcher:
        """The entry's closure batcher for *strategy*."""
        batcher = entry.batchers.get(strategy)
        if batcher is None:
            session = await self.session_for(entry, strategy)
            batcher = entry.batchers.get(strategy)
            if batcher is None:
                batcher = _ClosureBatcher(session, self.stats)
                entry.batchers[strategy] = batcher
        return batcher

    # -- aggregate counters ------------------------------------------------

    def engine_totals(self) -> dict:
        """Monotone aggregates over live and retired entries — the
        numbers the warm-start acceptance gate asserts on (a fully warm
        request window must move none of the cold-work counters)."""
        totals = dict(self._retired)
        for entry in self._entries.values():
            for session in entry.sessions.values():
                stats = session.stats
                totals["rule_attempts"] += stats.engine.attempts
                totals["saturations"] += stats.engine.saturations
                totals["closure_queries"] += stats.queries
                totals["memo_hits"] += stats.hits
                totals["store_hits"] += stats.store_hits
                totals["store_misses"] += stats.store_misses
            if entry.validator is not None:
                totals["plan_compilations"] += \
                    entry.validator.stats.plan_compilations
        return totals

    def as_metrics(self) -> dict:
        """The :class:`~repro.obs.RunReport` section protocol."""
        data = self.stats.as_dict()
        data["entries"] = len(self._entries)
        data["max_entries"] = self.max_entries
        data["engines"] = self.engine_totals()
        return data
