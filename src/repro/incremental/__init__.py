"""Incremental constraint maintenance."""

from .checker import Conflict, IncrementalChecker

__all__ = ["IncrementalChecker", "Conflict"]
