"""Incremental NFD checking under tuple inserts and removals.

The data-warehouse motivation of the paper's introduction: when a
materialized nested view is refreshed tuple by tuple, re-validating the
whole constraint set from scratch is wasteful.  This module maintains,
for every *global* NFD (relation-name base), the same antecedent-key
index the hash-grouped checker builds — keyed by the NFD's LHS values,
holding a multiset of RHS values — and updates it with the bindings of
just the inserted or removed tuple.  *Local* NFDs (nested base paths)
never relate two different tuples, so they are checked once per
inserted tuple and need no cross-tuple state.

Per-row binding extraction rides the compiled plans of
:class:`repro.nfd.batch_validate.ValidatorEngine`: one engine is built
for Σ at construction, ``engine.bindings_of`` materializes a tuple's
shared binding trie once for *all* global NFDs of its relation, and
``engine.row_violates`` answers the per-tuple question for local NFDs.
Bulk initialization (constructing with an ``instance=``) applies every
tuple's bindings first and collects conflicts once at the end, instead
of re-scanning conflict state after each row.

The checker tracks the exact conflict set, so consistency can be asked
at any time in O(1); the invariant

    checker.is_consistent()  ==  satisfies_all_fast(checker.to_instance(), sigma)

is enforced by randomized tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable

from ..errors import InferenceError, InstanceError
from ..nfd.batch_validate import ValidatorEngine
from ..nfd.nfd import NFD
from ..types.schema import Schema
from ..values.build import Instance, from_python
from ..values.value import Record, SetValue, Value

__all__ = ["Conflict", "IncrementalChecker"]


class Conflict:
    """A live inconsistency: one antecedent key with clashing RHS values."""

    __slots__ = ("nfd", "key", "rhs_values")

    def __init__(self, nfd: NFD, key: tuple, rhs_values: frozenset):
        self.nfd = nfd
        self.key = key
        self.rhs_values = rhs_values

    def describe(self) -> str:
        lhs = self.nfd.sorted_lhs()
        agreed = ", ".join(f"{p} = {v}" for p, v in zip(lhs, self.key)) \
            or "(empty antecedent)"
        values = ", ".join(str(v) for v in sorted(self.rhs_values,
                                                  key=repr))
        return (f"conflict on {self.nfd}: {agreed} maps {self.nfd.rhs} "
                f"to {{{values}}}")

    def __repr__(self) -> str:
        return f"Conflict({self.nfd}, key={self.key})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Conflict) and self.nfd == other.nfd and \
            self.key == other.key and self.rhs_values == other.rhs_values

    def __hash__(self) -> int:
        return hash((self.nfd, self.key, self.rhs_values))


class _GlobalState:
    """Cross-tuple index for one relation-based NFD.

    The bindings themselves come from the shared validation engine
    (:meth:`ValidatorEngine.bindings_of`); this class only owns the
    antecedent-key index they are applied to.
    """

    __slots__ = ("nfd", "index")

    def __init__(self, nfd: NFD):
        self.nfd = nfd
        # antecedent key -> Counter of rhs values
        self.index: dict[tuple, Counter] = {}

    def apply(self, entries: list[tuple[tuple, Value]], delta: int) -> None:
        for key, rhs_value in entries:
            counter = self.index.setdefault(key, Counter())
            counter[rhs_value] += delta
            if counter[rhs_value] <= 0:
                del counter[rhs_value]
            if not counter:
                del self.index[key]

    def conflicted_keys(self, keys: Iterable[tuple]) -> set[tuple]:
        result = set()
        for key in keys:
            counter = self.index.get(key)
            if counter is not None and len(counter) > 1:
                result.add(key)
        return result

    def conflict_for(self, key: tuple) -> Conflict:
        return Conflict(self.nfd, key,
                        frozenset(self.index[key].keys()))


class _LocalState:
    """Per-tuple state for one nested-base NFD.

    The per-tuple violation question itself is answered by
    :meth:`ValidatorEngine.row_violates` on the shared compiled plan;
    this class only remembers which live tuples are offenders.
    """

    __slots__ = ("nfd", "offenders")

    def __init__(self, nfd: NFD):
        self.nfd = nfd
        self.offenders: set[Record] = set()


class IncrementalChecker:
    """Maintains NFD consistency across tuple-level updates.

    Example::

        checker = IncrementalChecker(schema, sigma)
        checker.insert("Course", {...})        # [] — no conflicts
        checker.insert("Course", {...})        # [Conflict(...)] if bad
        checker.remove("Course", {...})        # conflicts may clear
        checker.is_consistent()

    ``insert``/``remove`` apply the change and return the *newly
    created* conflicts (a removal can only clear conflicts, so it
    returns the list of conflicts it resolved).  ``check_insert`` is the
    non-mutating dry run used for admission control.
    """

    def __init__(self, schema: Schema, sigma: Iterable[NFD],
                 instance: Instance | None = None):
        self.schema = schema
        self.sigma = tuple(sigma)
        # Compiles the shared path-trie plans and checks Σ's
        # well-formedness against the schema.
        self._engine = ValidatorEngine(schema, self.sigma)
        self._tuples: dict[str, set[Record]] = {
            name: set() for name in schema.relation_names
        }
        self._global: dict[str, list[_GlobalState]] = {
            name: [] for name in schema.relation_names
        }
        self._local: dict[str, list[_LocalState]] = {
            name: [] for name in schema.relation_names
        }
        self._global_by_nfd: dict[NFD, _GlobalState] = {}
        self._conflicts: dict[tuple, Conflict] = {}
        for nfd in self.sigma:
            if nfd.is_simple:
                state = _GlobalState(nfd)
                self._global[nfd.relation].append(state)
                self._global_by_nfd[nfd] = state
            else:
                self._local[nfd.relation].append(_LocalState(nfd))
        if instance is not None:
            if instance.schema != schema:
                raise InferenceError(
                    "the initial instance uses a different schema"
                )
            self._bulk_load(instance)

    def _bulk_load(self, instance: Instance) -> None:
        """Load an initial instance via :meth:`load_rows`."""
        for name, relation in instance.relations():
            self.load_rows(name, relation)

    def load_rows(self, relation: str, rows: Iterable[Any]) -> int:
        """Bulk-load rows of one relation from any iterable source.

        Equivalent to inserting every row, but the per-insert conflict
        bookkeeping (probing the touched keys after every row) is
        deferred to a single sweep over the relation's indexes at the
        end.  *rows* is consumed one element at a time and never
        materialized, so a chunked reader —
        :func:`repro.io.stream.iter_jsonl_elements` over a JSONL dump —
        loads a warehouse refresh without holding the batch in memory.
        Returns the number of (previously absent) rows loaded.
        """
        loaded = 0
        for row in rows:
            record = self._coerce(relation, row)
            if record in self._tuples[relation]:
                continue
            self._tuples[relation].add(record)
            loaded += 1
            for state in self._local[relation]:
                if self._engine.row_violates(state.nfd, record):
                    state.offenders.add(record)
                    self._conflicts[(id(state), record)] = \
                        Conflict(state.nfd, (record,), frozenset())
            for nfd, entries in self._engine.bindings_of(relation,
                                                         record):
                self._global_by_nfd[nfd].apply(entries, +1)
        for state in self._global[relation]:
            for key, counter in state.index.items():
                if len(counter) > 1:
                    conflict = state.conflict_for(key)
                    slot = (id(state), key)
                    if self._conflicts.get(slot) != conflict:
                        self._conflicts[slot] = conflict
        return loaded

    # -- updates -----------------------------------------------------------

    def _coerce(self, relation: str, row: Any) -> Record:
        if not isinstance(row, Value):
            row = from_python(row, self.schema.element_type(relation))
        if not isinstance(row, Record):
            raise InstanceError(
                f"a tuple of {relation!r} must be a record, got "
                f"{type(row).__name__}"
            )
        return row

    def insert(self, relation: str, row: Any) -> list[Conflict]:
        """Insert a tuple; returns the conflicts the insert created."""
        record = self._coerce(relation, row)
        if record in self._tuples[relation]:
            return []
        self._tuples[relation].add(record)
        created: list[Conflict] = []
        for state in self._local[relation]:
            if self._engine.row_violates(state.nfd, record):
                state.offenders.add(record)
                conflict = Conflict(state.nfd, (record,), frozenset())
                self._conflicts[(id(state), record)] = conflict
                created.append(conflict)
        for nfd, entries in self._engine.bindings_of(relation, record):
            state = self._global_by_nfd[nfd]
            state.apply(entries, +1)
            for key in state.conflicted_keys(key for key, _ in entries):
                conflict = state.conflict_for(key)
                slot = (id(state), key)
                if self._conflicts.get(slot) != conflict:
                    self._conflicts[slot] = conflict
                    created.append(conflict)
        return created

    def remove(self, relation: str, row: Any) -> list[Conflict]:
        """Remove a tuple; returns the conflicts the removal resolved."""
        record = self._coerce(relation, row)
        if record not in self._tuples[relation]:
            raise InstanceError(
                f"tuple is not present in {relation!r}; cannot remove"
            )
        self._tuples[relation].discard(record)
        resolved: list[Conflict] = []
        for state in self._local[relation]:
            if record in state.offenders:
                state.offenders.discard(record)
                resolved.append(
                    self._conflicts.pop((id(state), record)))
        for nfd, entries in self._engine.bindings_of(relation, record):
            state = self._global_by_nfd[nfd]
            state.apply(entries, -1)
            for key in {key for key, _ in entries}:
                slot = (id(state), key)
                if slot not in self._conflicts:
                    continue
                counter = state.index.get(key)
                if counter is None or len(counter) <= 1:
                    resolved.append(self._conflicts.pop(slot))
                else:
                    # still conflicted; refresh the recorded value set
                    self._conflicts[slot] = state.conflict_for(key)
        return resolved

    def check_insert(self, relation: str, row: Any) -> list[Conflict]:
        """Dry run: the conflicts an insert would create, without
        mutating any state."""
        record = self._coerce(relation, row)
        if record in self._tuples[relation]:
            return []
        found: list[Conflict] = []
        for state in self._local[relation]:
            if self._engine.row_violates(state.nfd, record):
                found.append(Conflict(state.nfd, (record,), frozenset()))
        for nfd, entries in self._engine.bindings_of(relation, record):
            state = self._global_by_nfd[nfd]
            staged: dict[tuple, set] = {}
            for key, rhs_value in entries:
                staged.setdefault(key, set()).add(rhs_value)
            for key, new_values in staged.items():
                existing = set(state.index.get(key, ()))
                combined = existing | new_values
                if len(combined) > 1:
                    found.append(Conflict(state.nfd, key,
                                          frozenset(combined)))
        return found

    # -- queries -----------------------------------------------------------

    def conflicts(self) -> list[Conflict]:
        """All live conflicts, deterministic order."""
        return sorted(self._conflicts.values(),
                      key=lambda c: (str(c.nfd), repr(c.key)))

    def is_consistent(self) -> bool:
        return not self._conflicts

    def to_instance(self) -> Instance:
        """Materialize the current state as an immutable Instance."""
        return Instance(self.schema, {
            name: SetValue(rows) for name, rows in self._tuples.items()
        })

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._tuples.values())
