"""Nestable tracing spans with a bounded ring-buffer log.

A :class:`Tracer` records *spans* — named, attributed intervals measured
with the monotonic clock — plus point *events*, both into one bounded
ring buffer.  Spans nest: opening a span inside another records the
parent's id and depth, and :meth:`Tracer.count` charges a counter to
whichever span is innermost at call time, so hot loops can attribute
work ("attempts", "memo hits") to the operation that caused it without
threading a span handle through every call.

Design constraints, shared with the rest of :mod:`repro.obs`:

* **zero dependencies** — standard library only;
* **no silent drops** — the ring buffer keeps the *newest*
  ``max_records`` completed records and counts what it evicted
  (:attr:`Tracer.dropped`); the JSONL export ends with an explicit
  truncation marker whenever anything was dropped, so a consumer can
  never mistake a truncated trace for a complete one;
* **no overhead when absent** — the instrumented code paths all take a
  ``tracer`` that defaults to ``None`` and guard every obs call with a
  single ``is None`` test; no tracer, span, or buffer object is ever
  constructed on the disabled path (``benchmarks/bench_obs_overhead.py``
  gates this via :attr:`Tracer.created`).

Spans are identified by a per-tracer sequential id in *opening* order;
the ring buffer lists records in *completion* order (a parent span
completes after its children).  Both orders are deterministic for a
deterministic program, which the instrumentation-invariance suite
relies on.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Iterator

__all__ = ["Span", "Tracer"]

#: Default bound on retained completed records (spans + events).
DEFAULT_MAX_RECORDS = 4096


class Span:
    """One named interval: monotonic start/end, attributes, counters.

    Spans are created by :meth:`Tracer.span` and closed by leaving the
    ``with`` block; ``duration`` and the counter map are stable after
    close.  ``parent_id`` is ``None`` for root spans; ``depth`` is the
    nesting level (0 for roots).
    """

    __slots__ = ("span_id", "name", "attrs", "parent_id", "depth",
                 "start", "end", "counters", "_tracer")

    def __init__(self, span_id: int, name: str, attrs: dict[str, Any],
                 parent_id: int | None, depth: int, start: float,
                 tracer: "Tracer | None" = None):
        self.span_id = span_id
        self.name = name
        self.attrs = attrs
        self.parent_id = parent_id
        self.depth = depth
        self.start = start
        self.end: float | None = None
        self.counters: dict[str, int | float] = {}
        self._tracer = tracer

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self, failed=exc_type is not None)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds between open and close (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def add(self, name: str, amount: int | float = 1) -> None:
        """Add *amount* to the span-local counter *name*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def as_dict(self, origin: float = 0.0) -> dict:
        """A JSON-friendly record; times are relative to *origin*."""
        return {
            "kind": "span",
            "id": self.span_id,
            "name": self.name,
            "parent": self.parent_id,
            "depth": self.depth,
            "start": self.start - origin,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return f"Span(#{self.span_id} {self.name!r}, {state})"


class Tracer:
    """A span/event recorder with a bounded completion log.

    Example::

        tracer = Tracer()
        with tracer.span("analysis.keys", relation="Course") as span:
            ...
            tracer.count("candidates")          # charged to the span
        tracer.write_jsonl("trace.jsonl")

    ``max_records`` bounds the retained *completed* records; the open
    span stack is unbounded (it is as deep as the program's nesting).
    Evictions are counted in :attr:`dropped` and flagged on export.
    """

    #: Process-wide count of Tracer constructions.  The no-op gate in
    #: ``benchmarks/bench_obs_overhead.py`` asserts this stays flat
    #: across an untraced workload: the disabled path builds nothing.
    created = 0

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS,
                 clock=time.perf_counter):
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        Tracer.created += 1
        self.max_records = max_records
        self._clock = clock
        self._origin = clock()
        # maxlen-deque evicts oldest records at C speed; dropped count
        # is recovered from the total-appended counter
        self._records: deque = deque(maxlen=max_records)
        self._stack: list[Span] = []
        self._next_id = 0
        self._appended = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span; use as ``with tracer.span(name, k=v) as span:``."""
        stack = self._stack
        opened = Span(self._next_id, name, attrs,
                      stack[-1].span_id if stack else None,
                      len(stack), self._clock(), self)
        self._next_id += 1
        stack.append(opened)
        return opened

    def _close(self, span: Span, failed: bool) -> None:
        span.end = self._clock()
        stack = self._stack
        if not failed and stack and stack[-1] is span:
            # common case: innermost span closes in order
            stack.pop()
            self._appended += 1
            self._records.append(span)
            return
        if failed:
            span.attrs["failed"] = True
        # Exceptions can unwind through several open spans; close every
        # frame above *span* too, innermost first.
        while stack:
            top = stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end
                self._append(top)
        self._append(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event (no duration) at the current depth."""
        current = self._stack[-1] if self._stack else None
        self._append({
            "kind": "event",
            "name": name,
            "parent": current.span_id if current else None,
            "at": self._clock() - self._origin,
            "attrs": attrs,
        })

    def count(self, name: str, amount: int | float = 1) -> None:
        """Add to the innermost open span's counter (no-op at depth 0)."""
        if self._stack:
            self._stack[-1].add(name, amount)

    def _append(self, record) -> None:
        self._appended += 1
        self._records.append(record)   # maxlen evicts the oldest

    @property
    def dropped(self) -> int:
        """How many completed records the ring buffer has evicted."""
        return max(0, self._appended - self.max_records)

    # -- introspection -----------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def truncated(self) -> bool:
        """Has the ring buffer evicted anything?"""
        return self.dropped > 0

    def spans(self, name: str | None = None) -> list[Span]:
        """Completed spans in completion order, optionally by name."""
        result = [r for r in self._records if isinstance(r, Span)]
        if name is not None:
            result = [s for s in result if s.name == name]
        return result

    def records(self) -> Iterator[dict]:
        """Every retained record as a JSON-friendly dict, in completion
        order, followed by a truncation marker when records were
        dropped (never silently)."""
        for record in self._records:
            if isinstance(record, Span):
                yield record.as_dict(self._origin)
            else:
                yield record
        if self.dropped:
            yield {"kind": "truncated", "dropped": self.dropped,
                   "max_records": self.max_records}

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The trace as JSON Lines (one record per line)."""
        return "\n".join(
            json.dumps(record, sort_keys=True, default=str)
            for record in self.records()
        )

    def write_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` (plus a trailing newline) to *path*."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            handle.write(text)
            if text:
                handle.write("\n")

    def __repr__(self) -> str:
        return (f"Tracer({len(self._records)} record(s), "
                f"{len(self._stack)} open, dropped={self.dropped})")
