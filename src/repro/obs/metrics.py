"""A registry of named counters, gauges, and histograms.

:class:`MetricsRegistry` is the numeric half of :mod:`repro.obs`: where
the tracer answers "where did the time go", the registry answers "how
much work happened", in a form that serializes to JSON and **merges
deterministically** — the property the process-parallel fan-outs need
to fold worker-process deltas back into the parent's totals with a
result independent of worker scheduling (merge in task order; every
merge operation is commutative over the counters that matter).

Merge semantics, per instrument:

* **counter** — values add;
* **gauge** — the merged-in value wins (last-write; callers merge in a
  deterministic order, so the result is deterministic);
* **histogram** — bucket counts, totals, and counts add; the bucket
  edges must agree exactly (merging histograms of different shapes is
  an error, not a silent re-bucketing).

Histogram buckets: ``edges = (e1, .., en)`` define ``n + 1`` buckets —
bucket ``i < n`` counts observations ``v <= e(i+1)`` (with ``v > e(i)``
for ``i > 0``), and the last bucket is the overflow ``v > en``.  Edges
are closed on the right, so an observation exactly on an edge lands in
that edge's bucket (tested in ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "compare_snapshots"]

#: Default histogram bucket edges (generic work-count scale).
DEFAULT_EDGES = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}={self.value})"


class Histogram:
    """Bucketed observations with fixed, right-closed edges."""

    __slots__ = ("name", "edges", "counts", "total", "count")

    def __init__(self, name: str, edges: Iterable[int | float]
                 = DEFAULT_EDGES):
        self.name = name
        self.edges = tuple(edges)
        if not self.edges:
            raise ValueError(f"histogram {self.name!r} needs >= 1 edge")
        if any(a >= b for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError(
                f"histogram {self.name!r} edges must strictly increase")
        self.counts = [0] * (len(self.edges) + 1)
        self.total: int | float = 0
        self.count = 0

    def observe(self, value: int | float) -> None:
        """Record one observation; ``v == edge`` lands in edge's bucket."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean:.3f})")


class MetricsRegistry:
    """Named instruments, created on first use, exported as JSON.

    Example::

        registry = MetricsRegistry()
        registry.counter("closure.attempts").inc(17)
        registry.gauge("memo.size").set(42)
        registry.histogram("delta.size").observe(3)
        registry.to_json()

    Names are unique across instrument kinds: asking for a counter
    under a name already used by a gauge is an error (one name, one
    meaning).
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other, table in owners.items():
            if other != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already a {other}, "
                    f"cannot reuse it as a {kind}")

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, edges: Iterable[int | float]
                  = DEFAULT_EDGES) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, "histogram")
            instrument = self._histograms[name] = Histogram(name, edges)
        return instrument

    # -- bulk recording ----------------------------------------------------

    def count_all(self, values: dict[str, int | float],
                  prefix: str = "") -> None:
        """Add a flat ``{name: amount}`` map of counter increments."""
        for name in sorted(values):
            self.counter(prefix + name).inc(values[name])

    # -- merge -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its :meth:`as_dict`) into this one.

        Deterministic by construction: counters/histograms add
        (commutative), gauges take the merged-in value, and callers
        merge worker results in task order.
        """
        data = other.as_dict() if isinstance(other, MetricsRegistry) \
            else other
        for name in sorted(data.get("counters", {})):
            self.counter(name).inc(data["counters"][name])
        for name in sorted(data.get("gauges", {})):
            self.gauge(name).set(data["gauges"][name])
        for name in sorted(data.get("histograms", {})):
            payload = data["histograms"][name]
            histogram = self.histogram(name, tuple(payload["edges"]))
            if list(histogram.edges) != list(payload["edges"]):
                raise ValueError(
                    f"histogram {name!r} edge mismatch: "
                    f"{list(histogram.edges)} vs {payload['edges']}")
            for index, bucket in enumerate(payload["counts"]):
                histogram.counts[index] += bucket
            histogram.total += payload["total"]
            histogram.count += payload["count"]

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-friendly snapshot, all maps sorted by name."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return (f"MetricsRegistry({len(self._counters)} counter(s), "
                f"{len(self._gauges)} gauge(s), "
                f"{len(self._histograms)} histogram(s))")


# ------------------------------------------------------ snapshot compare

def compare_snapshots(current, baseline, tolerance: float = 0.2,
                      suffix: str = "_per_sec") -> list[str]:
    """Compare two registry snapshots' throughput gauges.

    Both arguments may be a :class:`MetricsRegistry` or its
    :meth:`~MetricsRegistry.as_dict` form (e.g. a parsed
    ``--metrics-json`` file).  Every gauge in *baseline* whose name
    ends with *suffix* is treated as a higher-is-better rate; the
    current run regresses on it when its value falls more than
    *tolerance* (a fraction, default 20%) below the baseline, or when
    the gauge vanished from the current run entirely (a gate that
    stopped reporting is a regression, not a pass).

    Returns one human-readable message per regression; an empty list
    means the current run held the line.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    current_data = current.as_dict() \
        if isinstance(current, MetricsRegistry) else current
    baseline_data = baseline.as_dict() \
        if isinstance(baseline, MetricsRegistry) else baseline
    current_gauges = current_data.get("gauges", {})
    regressions = []
    for name in sorted(baseline_data.get("gauges", {})):
        if not name.endswith(suffix):
            continue
        base = baseline_data["gauges"][name]
        if base <= 0:
            continue
        now = current_gauges.get(name)
        if now is None:
            regressions.append(f"{name}: missing from current run "
                               f"(baseline {base:g})")
            continue
        floor = base * (1.0 - tolerance)
        if now < floor:
            drop = 100.0 * (1.0 - now / base)
            regressions.append(
                f"{name}: {now:g} is {drop:.1f}% below baseline "
                f"{base:g} (tolerance {100.0 * tolerance:.0f}%)")
    return regressions
