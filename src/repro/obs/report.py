"""Run reports: one consolidated view of a run's statistics.

PRs 1–3 each grew an engine-local counters class —
:class:`~repro.inference.closure.EngineStats`,
:class:`~repro.inference.session.SessionStats`,
:class:`~repro.nfd.batch_validate.ValidatorStats` — and each grew its
own rendering and JSON spelling.  :class:`RunReport` is the single
consolidation point: every stats class implements the small
``as_metrics()`` protocol (a JSON-friendly flat-ish dict of its
numbers; for the existing classes it coincides with ``as_dict()``), and
a report collects named *sections* of such snapshots.

The CLI builds exactly one report per command: the ``--stats`` /
``--cache-stats`` stderr text, the ``--metrics-json`` file, and any
programmatic consumer all read the *same frozen snapshots*, so the
numbers reconcile by construction — there is no second moment at which
counters could have moved on.

Sections are frozen at :meth:`RunReport.add` time (the stats classes
are immutable snapshots; a mapping is copied), keep insertion order,
and render either through the snapshot's own ``to_text()`` (preserving
the established stderr formats byte for byte) or as indented JSON.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = ["RunReport", "supports_metrics"]


def supports_metrics(source: Any) -> bool:
    """Does *source* implement the ``as_metrics()`` protocol?"""
    return callable(getattr(source, "as_metrics", None))


class RunReport:
    """Named sections of metric snapshots for one logical run.

    Example::

        report = RunReport(command="analyze")
        report.add("closure", engine.stats)
        report.add("session", session.stats)
        report.add("validator", validator.stats)
        report.to_json()
        report.section_text("session")   # the --cache-stats stderr text
    """

    def __init__(self, command: str | None = None):
        self.command = command
        # name -> (source snapshot or None, metrics dict)
        self._sections: dict[str, tuple[Any, dict]] = {}

    def add(self, name: str, source: Any) -> "RunReport":
        """Freeze *source* into section *name* (returns self to chain).

        *source* is a stats snapshot implementing ``as_metrics()``, or a
        plain mapping of JSON-friendly values.  Re-adding a name
        replaces the section (the latest snapshot wins).
        """
        if supports_metrics(source):
            self._sections[name] = (source, dict(source.as_metrics()))
        elif isinstance(source, Mapping):
            self._sections[name] = (None, dict(source))
        else:
            raise TypeError(
                f"section {name!r}: expected an as_metrics() snapshot "
                f"or a mapping, got {type(source).__name__}")
        return self

    # -- access ------------------------------------------------------------

    @property
    def sections(self) -> tuple[str, ...]:
        return tuple(self._sections)

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def section(self, name: str) -> dict:
        """The frozen metrics dict of one section."""
        return dict(self._sections[name][1])

    def section_text(self, name: str) -> str:
        """The section rendered for humans.

        Snapshots that know how to print themselves (``to_text()``) are
        rendered exactly as their engines always did — the CLI's
        ``--stats`` output is this method — otherwise indented JSON.
        """
        source, metrics = self._sections[name]
        if source is not None and callable(getattr(source, "to_text",
                                                   None)):
            return source.to_text()
        return json.dumps(metrics, indent=2, sort_keys=True, default=str)

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        payload: dict[str, Any] = {}
        if self.command is not None:
            payload["command"] = self.command
        payload["sections"] = {
            name: dict(metrics)
            for name, (_, metrics) in self._sections.items()
        }
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True,
                          default=str)

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def to_text(self) -> str:
        """Every section's human rendering, in insertion order."""
        blocks = []
        for name in self._sections:
            blocks.append(f"[{name}]")
            blocks.append(self.section_text(name))
        return "\n".join(blocks)

    def __repr__(self) -> str:
        inner = ", ".join(self._sections) or "empty"
        return f"RunReport({inner})"
