"""Unified observability: tracing, metrics, and run reports.

Three zero-dependency pieces, designed to be wired through the hot
paths of the inference, validation, and analysis layers without
perturbing any result and without costing anything when disabled:

* :class:`Tracer` — nestable spans (monotonic timings, per-span
  counters) and point events in a bounded ring buffer that flags
  truncation instead of dropping silently; exports JSON Lines
  (CLI ``--trace FILE``);
* :class:`MetricsRegistry` — named counters / gauges / histograms with
  JSON export and deterministic merge (the process-parallel fan-outs
  fold worker deltas through it);
* :class:`RunReport` — named sections of frozen stats snapshots behind
  one ``as_metrics()`` protocol, consolidating
  :class:`~repro.inference.closure.EngineStats`,
  :class:`~repro.inference.session.SessionStats`, and
  :class:`~repro.nfd.batch_validate.ValidatorStats`; the CLI's
  ``--stats`` / ``--cache-stats`` stderr text and its
  ``--metrics-json FILE`` output both render from the same report, so
  their numbers reconcile by construction.

The contract every instrumented call site honours (and
``tests/properties/test_obs_invariance.py`` enforces): passing a tracer
may add spans and counters but can never change a public result, and
passing ``tracer=None`` (the default) executes the exact pre-obs code
path behind a single ``is None`` check.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      compare_snapshots)
from .report import RunReport, supports_metrics
from .tracer import Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RunReport",
    "supports_metrics",
    "compare_snapshots",
]
