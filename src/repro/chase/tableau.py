"""Tableaux: the symbolic instances of the classical chase.

The paper repeatedly points at the tableau chase (Maier, Mendelzon &
Sagiv) as the *other* route to the implication problem, and names the
chase's classical applications — lossless-join tests, view
dependencies — as motivation for the axiomatization.  This module
provides the flat substrate: tableaux over an attribute universe with
distinguished (``a_X``) and nondistinguished (``b_i``) symbols, plus the
symbol-equating machinery the FD chase uses.

Symbols are immutable; a :class:`Tableau` is a mutable working object
holding rows (attribute → symbol mappings) and supporting global symbol
substitution.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import InferenceError

__all__ = ["Symbol", "distinguished", "nondistinguished", "Tableau"]


class Symbol:
    """A tableau symbol: distinguished, nondistinguished, or constant.

    Ordering for merge priority: distinguished < nondistinguished, so
    when two symbols are equated the distinguished one survives (the
    classical convention); two constants that differ are a hard
    contradiction.
    """

    __slots__ = ("kind", "name")

    DISTINGUISHED = "a"
    NONDISTINGUISHED = "b"
    CONSTANT = "c"

    def __init__(self, kind: str, name: str):
        self.kind = kind
        self.name = name

    @property
    def is_distinguished(self) -> bool:
        return self.kind == Symbol.DISTINGUISHED

    @property
    def is_constant(self) -> bool:
        return self.kind == Symbol.CONSTANT

    def merge_priority(self) -> tuple:
        rank = {Symbol.CONSTANT: 0, Symbol.DISTINGUISHED: 1,
                Symbol.NONDISTINGUISHED: 2}[self.kind]
        return (rank, self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Symbol) and self.kind == other.kind \
            and self.name == other.name

    def __hash__(self) -> int:
        return hash((self.kind, self.name))

    def __repr__(self) -> str:
        return f"{self.kind}_{self.name}"

    def __str__(self) -> str:
        return f"{self.kind}{self.name}"


def distinguished(attribute: str) -> Symbol:
    """The distinguished symbol for *attribute* (``a_A``)."""
    return Symbol(Symbol.DISTINGUISHED, attribute)


def nondistinguished(index: int | str) -> Symbol:
    """A fresh-by-name nondistinguished symbol (``b_i``)."""
    return Symbol(Symbol.NONDISTINGUISHED, str(index))


class Tableau:
    """Rows of symbols over a fixed attribute tuple."""

    def __init__(self, attributes: Iterable[str]):
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise InferenceError("tableau attributes must be unique")
        self.rows: list[dict[str, Symbol]] = []
        self._fresh = 0
        self.contradictory = False

    def fresh(self) -> Symbol:
        """A nondistinguished symbol unused in this tableau."""
        self._fresh += 1
        return nondistinguished(self._fresh)

    def add_row(self, row: dict[str, Symbol]) -> None:
        missing = set(self.attributes) - set(row)
        if missing:
            raise InferenceError(
                f"row is missing attributes {sorted(missing)}"
            )
        self.rows.append(dict(row))

    def add_component_row(self, component: Iterable[str]) -> None:
        """The lossless-join convention: distinguished on *component*,
        fresh nondistinguished elsewhere."""
        component_set = set(component)
        unknown = component_set - set(self.attributes)
        if unknown:
            raise InferenceError(
                f"component mentions unknown attributes {sorted(unknown)}"
            )
        self.add_row({
            attribute: distinguished(attribute)
            if attribute in component_set else self.fresh()
            for attribute in self.attributes
        })

    def equate(self, first: Symbol, second: Symbol) -> None:
        """Identify two symbols throughout the tableau.

        The survivor is chosen by merge priority (constants beat
        distinguished beat nondistinguished); equating two distinct
        constants marks the tableau contradictory.
        """
        if first == second:
            return
        if first.is_constant and second.is_constant:
            self.contradictory = True
            return
        keep, drop = sorted((first, second),
                            key=lambda s: s.merge_priority())
        for row in self.rows:
            for attribute, symbol in row.items():
                if symbol == drop:
                    row[attribute] = keep

    def symbols(self) -> Iterator[Symbol]:
        for row in self.rows:
            yield from row.values()

    def has_all_distinguished_row(self) -> bool:
        """The lossless-join success condition."""
        return any(
            all(row[attribute] == distinguished(attribute)
                for attribute in self.attributes)
            for row in self.rows
        )

    def to_text(self) -> str:
        """Render as an aligned grid (for the chase example scripts)."""
        header = list(self.attributes)
        body = [[str(row[attribute]) for attribute in header]
                for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body))
            if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [" | ".join(header[i].ljust(widths[i])
                            for i in range(len(header)))]
        lines.append("-+-".join("-" * w for w in widths))
        for line in body:
            lines.append(" | ".join(line[i].ljust(widths[i])
                                    for i in range(len(header))))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Tableau({len(self.rows)} rows over " \
            f"{', '.join(self.attributes)})"
