"""Chase-style repair of nested instances.

Given an instance violating some NFDs, the chase's value-identification
idea yields a repair procedure: each violation witness equates two RHS
values; applying the equation *globally* (every occurrence of one value
becomes the other) strictly reduces the number of distinct values, so
iterating terminates in an instance satisfying the constraint set.

This is the update-side counterpart of the paper's warehouse
motivation: rather than rejecting an inconsistent refresh, merge the
clashing values the way the chase would merge symbols.  The repair is a
heuristic canonical merge (it may identify more than strictly
necessary); the guarantee, enforced by tests, is that the result
satisfies Sigma, conforms to the schema, and is a fixpoint.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import InferenceError
from ..nfd.nfd import NFD
from ..nfd.violations import find_violation
from ..values.build import Instance
from ..values.value import Atom, Record, SetValue, Value

__all__ = ["repair", "replace_value"]


def replace_value(value: Value, old: Value, new: Value) -> Value:
    """Replace every occurrence of *old* inside *value* by *new*.

    Replacement is bottom-up, so containers rebuilt after their
    children are compared against *old* too (merging two atoms can make
    two records equal, which can make two sets equal, ...).
    """
    if value == old:
        return new
    if isinstance(value, Atom):
        return value
    if isinstance(value, Record):
        rebuilt = Record([
            (label, replace_value(sub, old, new))
            for label, sub in value.fields
        ])
        return new if rebuilt == old else rebuilt
    if isinstance(value, SetValue):
        rebuilt = SetValue(
            replace_value(element, old, new) for element in value
        )
        return new if rebuilt == old else rebuilt
    raise InferenceError(f"not a Value: {value!r}")


def _count_distinct_values(instance: Instance) -> int:
    seen: set[Value] = set()

    def walk(value: Value) -> None:
        seen.add(value)
        if isinstance(value, Record):
            for _, sub in value.fields:
                walk(sub)
        elif isinstance(value, SetValue):
            for element in value:
                walk(element)

    for _, relation in instance.relations():
        walk(relation)
    return len(seen)


def repair(instance: Instance, sigma: Iterable[NFD],
           max_rounds: int = 10_000, *, tracer=None) -> Instance:
    """Chase the instance into satisfaction of *sigma*.

    Each round finds one violation witness and equates its two RHS
    values globally (the lexicographically smaller representation
    survives, for determinism).  Rounds strictly decrease the number of
    distinct values in the instance, so the procedure terminates; the
    *max_rounds* guard exists for safety only.

    *tracer* (a :class:`repro.obs.Tracer`) records one ``chase.repair``
    span with round/merge counters; it never changes the result.

    :returns: a new instance satisfying every NFD of *sigma*.
    """
    sigma_list = list(sigma)
    if tracer is not None:
        with tracer.span("chase.repair",
                         nfds=len(sigma_list)) as span:
            return _repair(instance, sigma_list, max_rounds, span)
    return _repair(instance, sigma_list, max_rounds, None)


def _repair(instance: Instance, sigma_list: list[NFD],
            max_rounds: int, span) -> Instance:
    current = instance
    for _ in range(max_rounds):
        witness = None
        for nfd in sigma_list:
            witness = find_violation(current, nfd)
            if witness is not None:
                break
        if witness is None:
            return current
        first, second = sorted(
            (witness.rhs_value1, witness.rhs_value2), key=repr)
        before = _count_distinct_values(current)
        updated = {
            name: replace_value(relation, second, first)
            for name, relation in current.relations()
        }
        current = Instance(current.schema, updated)
        after = _count_distinct_values(current)
        if span is not None:
            span.add("rounds")
            span.add("values_merged", before - after)
        if after >= before:  # pragma: no cover - termination guard
            raise InferenceError(
                "repair failed to make progress; this indicates a bug "
                "in the violation witness or the replacement"
            )
    raise InferenceError(  # pragma: no cover - unreachable in practice
        f"repair did not converge within {max_rounds} rounds"
    )
