"""The classical FD chase over tableaux (Maier–Mendelzon–Sagiv).

Three entry points, all cited by the paper as the decision-procedure
tradition its axiomatization complements:

* :func:`chase` — saturate a tableau with FD rules (terminating: every
  step strictly reduces the number of distinct symbols);
* :func:`fd_implies_chase` — decide ``F |= X -> A`` by chasing the
  standard two-row tableau; cross-checked against Armstrong closure in
  the tests;
* :func:`lossless_join` — the textbook tableau test for lossless-join
  decompositions, the application the paper's introduction names first.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..inference.armstrong import FD
from .tableau import Tableau, distinguished

__all__ = ["chase", "fd_implies_chase", "lossless_join",
           "implication_tableau"]


def chase(tableau: Tableau, fds: Iterable[FD],
          max_steps: int = 100_000, *, tracer=None) -> Tableau:
    """Apply FD rules to a fixpoint (in place; also returned).

    One step: two rows agree on an FD's LHS but differ on its RHS —
    equate the RHS symbols.  Terminates because each step reduces the
    count of distinct symbols; *max_steps* is a safety net, not a
    tuning knob.

    *tracer* (a :class:`repro.obs.Tracer`) records one ``chase.flat``
    span with a ``steps`` counter; it never changes the result.
    """
    fd_list = list(fds)
    if tracer is not None:
        with tracer.span("chase.flat", rows=len(tableau.rows),
                         fds=len(fd_list)) as span:
            _chase(tableau, fd_list, max_steps, span)
        return tableau
    return _chase(tableau, fd_list, max_steps, None)


def _chase(tableau: Tableau, fd_list: list[FD],
           max_steps: int, span) -> Tableau:
    steps = 0
    changed = True
    while changed and not tableau.contradictory:
        changed = False
        for fd in fd_list:
            lhs = sorted(fd.lhs)
            groups: dict[tuple, int] = {}
            for index, row in enumerate(tableau.rows):
                key = tuple(row[attribute] for attribute in lhs)
                anchor = groups.get(key)
                if anchor is None:
                    groups[key] = index
                    continue
                first = tableau.rows[anchor][fd.rhs]
                second = row[fd.rhs]
                if first != second:
                    tableau.equate(first, second)
                    changed = True
                    steps += 1
                    if steps >= max_steps:  # pragma: no cover - guard
                        raise RuntimeError("chase exceeded max_steps")
    if span is not None:
        span.add("steps", steps)
        if tableau.contradictory:
            span.attrs["contradictory"] = True
    return tableau


def implication_tableau(attributes: Sequence[str], candidate: FD) \
        -> Tableau:
    """The two-row tableau for testing ``F |= candidate``.

    Rows share a symbol exactly on the candidate's LHS and are fresh
    elsewhere; the candidate follows iff the chase equates the two RHS
    symbols.
    """
    tableau = Tableau(attributes)
    shared = {attribute: distinguished(attribute)
              for attribute in candidate.lhs}
    for _ in range(2):
        row = {}
        for attribute in attributes:
            if attribute in candidate.lhs:
                row[attribute] = shared[attribute]
            else:
                row[attribute] = tableau.fresh()
        tableau.add_row(row)
    return tableau


def fd_implies_chase(attributes: Sequence[str], fds: Iterable[FD],
                     candidate: FD) -> bool:
    """Decide ``F |= X -> A`` with the chase."""
    tableau = implication_tableau(attributes, candidate)
    chase(tableau, fds)
    first, second = tableau.rows[0], tableau.rows[1]
    return first[candidate.rhs] == second[candidate.rhs]


def lossless_join(attributes: Sequence[str],
                  decomposition: Sequence[Iterable[str]],
                  fds: Iterable[FD]) -> bool:
    """Is the decomposition lossless under *fds*?

    Builds one row per component (distinguished on the component's
    attributes) and chases; the join is lossless iff some row becomes
    all-distinguished.
    """
    tableau = Tableau(attributes)
    for component in decomposition:
        tableau.add_component_row(component)
    chase(tableau, fds)
    return tableau.has_all_distinguished_row()
