"""An experimental chase-based implication test for NFDs.

The paper's future work proposes chasing *nested tableaux* with NFDs;
this module implements the natural first cut: build the most general
two-element instance for the query (the Appendix-A construction with an
empty Sigma, so only the LHS paths are shared), chase it into
Sigma-satisfaction with the repair procedure, and read the candidate off
the result.

The procedure is **one-sided**:

* a *"not implied"* answer is certified — the chased instance is a
  concrete Sigma-satisfying countermodel (returned for inspection);
* an *"implied"* answer is heuristic — the repair equates values
  *globally*, which can merge more than the dependencies force (e.g.
  two ``A`` sets whose members became equal even though a genuine model
  could give one set an extra member), so the chased instance may
  satisfy candidates that are not actually implied.

Empirically the heuristic agrees with the sound-and-complete closure
engine on the overwhelming majority of random queries (see
``tests/test_chase_implication.py``, which also pins down a concrete
over-approximation case).  Treat :class:`ChaseVerdict` accordingly: use
``certified`` before trusting ``implied``.
"""

from __future__ import annotations

from typing import Iterable

from ..inference.closure import ClosureEngine
from ..inference.countermodel import build_countermodel
from ..nfd.fast_satisfy import satisfies_fast
from ..nfd.nfd import NFD
from ..types.schema import Schema
from ..values.build import Instance
from .nested_repair import repair

__all__ = ["ChaseVerdict", "chase_implies"]


class ChaseVerdict:
    """The outcome of a chase-based implication test."""

    __slots__ = ("candidate", "implied", "certified", "instance")

    def __init__(self, candidate: NFD, implied: bool, certified: bool,
                 instance: Instance):
        self.candidate = candidate
        #: The chase's answer to "is the candidate implied?".
        self.implied = implied
        #: True when the answer is proof-backed: a "not implied" with
        #: its countermodel.  An ``implied`` verdict is never certified
        #: by the chase alone — confirm with the closure engine.
        self.certified = certified
        #: The chased instance: a Sigma-satisfying countermodel when
        #: not implied; the (possibly over-merged) generic model
        #: otherwise.
        self.instance = instance

    def __repr__(self) -> str:
        kind = "certified" if self.certified else "heuristic"
        return (f"ChaseVerdict({self.candidate}: implied={self.implied} "
                f"[{kind}])")


def chase_implies(schema: Schema, sigma: Iterable[NFD],
                  candidate: NFD) -> ChaseVerdict:
    """Chase the generic instance of the candidate's query with Sigma.

    The generic instance shares values exactly on the candidate's LHS
    (two elements at the base, fresh values elsewhere); the repair chase
    then equates whatever Sigma forces.  If the result still violates
    the candidate, no amount of merging was able to force the RHS — the
    violation witnesses a genuine countermodel.
    """
    sigma_list = list(sigma)
    candidate.check_well_formed(schema)
    generic_engine = ClosureEngine(schema, [])
    generic = build_countermodel(generic_engine, candidate.base,
                                 candidate.lhs)
    chased = repair(generic, sigma_list)
    holds = satisfies_fast(chased, candidate)
    return ChaseVerdict(candidate, implied=holds, certified=not holds,
                        instance=chased)
