"""The chase: tableaux, FD chase, lossless joins, nested repair."""

from .flat_chase import (
    chase,
    fd_implies_chase,
    implication_tableau,
    lossless_join,
)
from .nested_implication import ChaseVerdict, chase_implies
from .nested_repair import repair, replace_value
from .tableau import Symbol, Tableau, distinguished, nondistinguished

__all__ = [
    "Tableau",
    "Symbol",
    "distinguished",
    "nondistinguished",
    "chase",
    "fd_implies_chase",
    "implication_tableau",
    "lossless_join",
    "repair",
    "chase_implies",
    "ChaseVerdict",
    "replace_value",
]
