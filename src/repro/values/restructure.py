"""Nest and unnest restructuring operators.

These are the classical operators of the nested relational algebra
(Fischer, Saxton, Thomas and Van Gucht's setting, discussed in Section 4
of the paper): ``unnest`` flattens a set-valued attribute into its parent
tuples, and ``nest`` groups tuples on the remaining attributes, collecting
the nested ones into a set.  The FD-carryover analysis in
:mod:`repro.analysis.carryover` studies which NFDs survive these
transformations.

Both value-level and type-level variants are provided so instances and
schemas can be transformed in lockstep.
"""

from __future__ import annotations

from ..errors import TypeConstructionError, ValueError_
from ..types.base import RecordType, SetType, Type
from .value import Record, SetValue

__all__ = ["unnest", "nest", "unnest_type", "nest_type",
           "flatten_type", "flatten_value"]


def unnest(relation: SetValue, label: str) -> SetValue:
    """Unnest the set-valued attribute *label*.

    Every tuple ``r`` with ``r.label = {b1, ..., bk}`` contributes ``k``
    output tuples, each combining ``r``'s other fields with one ``bi``'s
    fields.  Tuples whose *label* set is empty vanish — the classical
    (non-outer) semantics, and precisely the information loss that makes
    empty sets troublesome in Section 3.2.

    :raises ValueError_: if *label* is missing, not set-valued, or its
        element labels collide with the parent's remaining labels.
    """
    output: list[Record] = []
    for element in relation:
        if not isinstance(element, Record):
            raise ValueError_("unnest expects a set of records")
        inner = element.get(label)
        if not isinstance(inner, SetValue):
            raise ValueError_(
                f"attribute {label!r} is not set-valued; cannot unnest"
            )
        outer_fields = [(lab, v) for lab, v in element.fields
                        if lab != label]
        outer_labels = {lab for lab, _ in outer_fields}
        for inner_element in inner:
            if not isinstance(inner_element, Record):
                raise ValueError_(
                    f"attribute {label!r} must contain records to unnest"
                )
            collision = outer_labels & set(inner_element.labels)
            if collision:
                raise ValueError_(
                    f"cannot unnest {label!r}: inner labels "
                    f"{', '.join(sorted(collision))} collide with outer "
                    "labels"
                )
            output.append(Record(outer_fields +
                                 list(inner_element.fields)))
    return SetValue(output)


def nest(relation: SetValue, label: str,
         nested_labels: tuple[str, ...] | list[str]) -> SetValue:
    """Nest attributes *nested_labels* into a new set attribute *label*.

    Tuples agreeing on all the *other* attributes are merged; their
    *nested_labels* projections are collected into a set stored under
    *label*.  Field order: the grouping attributes keep their order, and
    the new set attribute is appended last.

    :raises ValueError_: on unknown attributes, an empty nested list, or a
        *label* that collides with a grouping attribute.
    """
    nested = tuple(nested_labels)
    if not nested:
        raise ValueError_("nest requires at least one attribute to nest")
    groups: dict[Record, set[Record]] = {}
    group_order: list[Record] = []
    for element in relation:
        if not isinstance(element, Record):
            raise ValueError_("nest expects a set of records")
        for attr in nested:
            if not element.has(attr):
                raise ValueError_(f"record has no attribute {attr!r}")
        group_fields = [(lab, v) for lab, v in element.fields
                        if lab not in nested]
        if not group_fields:
            raise ValueError_(
                "nest would leave no grouping attributes; records must "
                "keep at least one field"
            )
        if label in {lab for lab, _ in group_fields}:
            raise ValueError_(
                f"new attribute {label!r} collides with a grouping "
                "attribute"
            )
        group_key = Record(group_fields)
        inner = Record([(attr, element.get(attr)) for attr in nested])
        if group_key not in groups:
            groups[group_key] = set()
            group_order.append(group_key)
        groups[group_key].add(inner)
    output = [
        Record(list(key.fields) + [(label, SetValue(groups[key]))])
        for key in group_order
    ]
    return SetValue(output)


def unnest_type(relation_type: SetType, label: str) -> SetType:
    """The type-level counterpart of :func:`unnest`."""
    element = relation_type.element
    inner_type = element.field(label)
    if not isinstance(inner_type, SetType):
        raise TypeConstructionError(
            f"attribute {label!r} is not set-valued; cannot unnest"
        )
    outer_fields = [(lab, t) for lab, t in element.fields if lab != label]
    combined: list[tuple[str, Type]] = outer_fields + \
        list(inner_type.element.fields)
    return SetType(RecordType(combined))


def flatten_type(relation_type: SetType) -> tuple[SetType, list[str]]:
    """Fully flatten a relation type by iterated :func:`unnest_type`.

    Repeatedly unnests the first set-valued attribute (inner sets
    surface as the outer ones dissolve) until the element type is 1NF.
    Returns the flat type together with the unnest order — the label
    sequence :func:`flatten_value` must replay to keep an instance in
    lockstep.  Globally unique labels (the strict model) guarantee the
    merges are collision-free.
    """
    current = relation_type
    order: list[str] = []
    while True:
        set_label = next(
            (label for label, field_type in current.element.fields
             if isinstance(field_type, SetType)), None)
        if set_label is None:
            return current, order
        order.append(set_label)
        current = unnest_type(current, set_label)


def flatten_value(relation: SetValue, order: list[str]) -> SetValue:
    """Replay a :func:`flatten_type` unnest order on a value.

    Inherits :func:`unnest`'s classical semantics: tuples whose set at
    any step is empty vanish from the flat output.
    """
    current = relation
    for label in order:
        current = unnest(current, label)
    return current


def nest_type(relation_type: SetType, label: str,
              nested_labels: tuple[str, ...] | list[str]) -> SetType:
    """The type-level counterpart of :func:`nest`."""
    nested = tuple(nested_labels)
    element = relation_type.element
    for attr in nested:
        element.field(attr)  # raises on unknown attribute
    group_fields = [(lab, t) for lab, t in element.fields
                    if lab not in nested]
    if not group_fields:
        raise TypeConstructionError(
            "nest would leave no grouping attributes"
        )
    inner = RecordType([(attr, element.field(attr)) for attr in nested])
    return SetType(RecordType(group_fields + [(label, SetType(inner))]))
