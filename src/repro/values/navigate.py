"""Path evaluation over values (Section 2.1 semantics).

A path ``A1:...:Ak`` evaluated on a record nondeterministically yields a
value: each label projects a record field and each ``:`` picks an element
of a set.  :func:`iter_values` enumerates every value a path can yield;
:func:`path_defined` implements the paper's *well defined* notion — the
path always yields a value, i.e. no choice sequence runs into an empty set.

:func:`iter_base_sets` enumerates the sets reached by an NFD base path
``x0``: the logic translation of Section 2.2 introduces a *single* variable
chain for ``x0`` and then picks the two compared values ``v1, v2`` from the
same final set, which is exactly what this generator supports.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import PathError, ValueError_
from ..paths.path import Path
from .build import Instance
from .value import Record, SetValue, Value

__all__ = [
    "iter_values",
    "values_at",
    "path_defined",
    "iter_base_sets",
    "first_value",
]


def iter_values(value: Value, path: Path) -> Iterator[Value]:
    """Yield every value *path* can evaluate to on *value*.

    *value* is typically a record (an element of some set); the empty path
    yields *value* itself.  Traversal into an empty set yields nothing for
    that branch, matching the undefined-value semantics.
    """
    if path.is_empty:
        yield value
        return
    label = path.first
    rest = path.tail
    if isinstance(value, SetValue):
        # Implicit ':' traversal: pick an element, then continue.
        for element in value:
            yield from iter_values(element, path)
        return
    if isinstance(value, Record):
        if not value.has(label):
            raise PathError(
                f"record {value} has no field {label!r} while evaluating "
                f"path {path}"
            )
        projected = value.get(label)
        if rest.is_empty:
            yield projected
        else:
            yield from iter_values(projected, rest)
        return
    raise PathError(
        f"cannot follow path {path} into the atom {value}"
    )


def values_at(value: Value, path: Path) -> list[Value]:
    """All values *path* yields on *value*, as a list (choice order)."""
    return list(iter_values(value, path))


def path_defined(value: Value, path: Path) -> bool:
    """The paper's *well defined*: every choice sequence yields a value.

    Returns False exactly when some sequence of element choices runs into
    an empty set before the path is exhausted.  A path ending *at* a set
    (without traversing into it) is defined even if that set is empty.
    """
    if path.is_empty:
        return True
    if isinstance(value, SetValue):
        if value.is_empty:
            return False
        return all(path_defined(element, path) for element in value)
    if isinstance(value, Record):
        projected = value.get(path.first)
        rest = path.tail
        if rest.is_empty:
            return True
        return path_defined(projected, rest)
    raise PathError(f"cannot follow path {path} into the atom {value}")


def iter_base_sets(instance: Instance, base: Path) -> Iterator[SetValue]:
    """Enumerate the sets an NFD base path reaches in *instance*.

    For ``base = R`` this yields the relation itself (once).  For
    ``base = R:A:B`` it yields ``a.B`` for every ``r in R`` and every
    ``a in r.A`` — one set per binding of the base-path variable chain.
    """
    relation = instance.relation(base.first)
    rest = base.tail
    if rest.is_empty:
        yield relation
        return
    yield from _iter_sets_from(relation, rest)


def _iter_sets_from(current: SetValue, rest: Path) -> Iterator[SetValue]:
    label = rest.first
    remainder = rest.tail
    for element in current:
        if not isinstance(element, Record):
            raise PathError(
                f"expected a record while following base path, got "
                f"{element}"
            )
        projected = element.get(label)
        if not isinstance(projected, SetValue):
            raise PathError(
                f"base path label {label!r} must be set-valued, got "
                f"{projected}"
            )
        if remainder.is_empty:
            yield projected
        else:
            yield from _iter_sets_from(projected, remainder)


def first_value(value: Value, path: Path) -> Value:
    """Return the first value *path* yields, or raise if it yields none.

    Convenience for contexts (examples, tables) where the caller knows the
    path is single-valued.

    :raises ValueError_: if the path yields no value on *value*.
    """
    for result in iter_values(value, path):
        return result
    raise ValueError_(f"path {path} yields no value on {value}")
