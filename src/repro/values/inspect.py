"""Inspection utilities: empty sets, cardinalities, and atom domains.

Section 3 of the paper restricts the implication problem to instances with
no empty sets; :func:`has_empty_sets` and :func:`empty_set_positions`
decide and localize that property.  :func:`set_cardinalities` feeds the
singleton analyses, and :func:`atom_domain` supports the generators and
the completeness construction (fresh-value allocation).
"""

from __future__ import annotations

from ..errors import ValueError_
from ..paths.path import Path
from .build import Instance
from .value import Atom, Record, SetValue, Value

__all__ = [
    "has_empty_sets",
    "empty_set_positions",
    "set_cardinalities",
    "atom_domain",
    "max_int_atom",
]


def _walk_sets(value: Value, prefix: Path):
    """Yield ``(path, set_value)`` for every set nested inside *value*.

    *prefix* is the path that leads to *value*; sets found inside records
    extend it by the record label.
    """
    if isinstance(value, SetValue):
        yield prefix, value
        for element in value:
            yield from _walk_sets(element, prefix)
    elif isinstance(value, Record):
        for label, sub in value.fields:
            yield from _walk_sets(sub, prefix.child(label))


def has_empty_sets(instance: Instance,
                   include_relations: bool = True) -> bool:
    """True iff some set in the instance is empty.

    When *include_relations* is False, empty top-level relations are
    ignored; the paper's no-empty-sets assumption covers the relations
    themselves too, so the default is True.
    """
    for name, relation in instance.relations():
        for path, set_value in _walk_sets(relation, Path((name,))):
            if set_value.is_empty:
                if not include_relations and len(path) == 1:
                    continue
                return True
    return False


def empty_set_positions(instance: Instance) -> list[Path]:
    """The distinct paths at which an empty set occurs, sorted.

    Paths start with the relation name, e.g. ``R:B`` for an empty ``B``
    set inside some tuple of ``R``.  Each offending path is reported once
    even if many tuples have an empty set there.
    """
    found: set[Path] = set()
    for name, relation in instance.relations():
        for path, set_value in _walk_sets(relation, Path((name,))):
            if set_value.is_empty:
                found.add(path)
    return sorted(found)


def set_cardinalities(instance: Instance) -> dict[Path, list[int]]:
    """Map each set-valued path to the cardinalities observed there.

    Useful for checking singleton claims: a path whose observed
    cardinalities are all <= 1 is behaving as an optional/singleton
    attribute in the AceDB sense.
    """
    result: dict[Path, list[int]] = {}
    for name, relation in instance.relations():
        for path, set_value in _walk_sets(relation, Path((name,))):
            result.setdefault(path, []).append(len(set_value))
    return result


def atom_domain(instance: Instance) -> set:
    """All atom payloads occurring anywhere in the instance."""
    found: set = set()

    def recurse(value: Value) -> None:
        if isinstance(value, Atom):
            found.add(value.value)
        elif isinstance(value, Record):
            for _, sub in value.fields:
                recurse(sub)
        elif isinstance(value, SetValue):
            for element in value:
                recurse(element)
        else:
            raise ValueError_(f"not a Value: {value!r}")

    for _, relation in instance.relations():
        recurse(relation)
    return found


def max_int_atom(instance: Instance) -> int:
    """The largest int atom in the instance, or -1 if there are none.

    The fresh-value allocators of the completeness construction start
    above this bound when extending an existing instance.
    """
    ints = [v for v in atom_domain(instance)
            if isinstance(v, int) and not isinstance(v, bool)]
    return max(ints, default=-1)
