"""Values, instances, and operations on them."""

from .build import Instance, from_python, to_python
from .canonical import (InternPool, canonical_bytes,
                        canonical_key_bytes)
from .inspect import (
    atom_domain,
    empty_set_positions,
    has_empty_sets,
    max_int_atom,
    set_cardinalities,
)
from .navigate import (
    first_value,
    iter_base_sets,
    iter_values,
    path_defined,
    values_at,
)
from .restructure import nest, nest_type, unnest, unnest_type
from .typecheck import (
    check_instance,
    check_value,
    conforms,
    instance_conforms,
)
from .value import (EMPTY_SET, Atom, Record, SetValue, Value,
                    freeze_value, thaw_value)

__all__ = [
    "Value",
    "Atom",
    "Record",
    "SetValue",
    "EMPTY_SET",
    "Instance",
    "from_python",
    "to_python",
    "canonical_bytes",
    "canonical_key_bytes",
    "InternPool",
    "freeze_value",
    "thaw_value",
    "check_value",
    "conforms",
    "check_instance",
    "instance_conforms",
    "iter_values",
    "values_at",
    "path_defined",
    "iter_base_sets",
    "first_value",
    "has_empty_sets",
    "empty_set_positions",
    "set_cardinalities",
    "atom_domain",
    "max_int_atom",
    "nest",
    "unnest",
    "nest_type",
    "unnest_type",
]
