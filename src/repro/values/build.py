"""Lifting plain Python data into the value model and back.

:func:`from_python` converts nested dicts/lists/scalars into
:class:`~repro.values.value.Value` trees, optionally guided by a type so
that ambiguous cases (e.g. empty lists) are shaped correctly.
:func:`to_python` converts back, producing JSON-friendly structures
(sets become sorted lists).

:class:`Instance` wraps a full database instance: one set value per
relation of a schema.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..errors import InstanceError, ValueError_
from ..types.base import BaseType, RecordType, SetType, Type
from ..types.schema import Schema
from .value import Atom, Record, SetValue, Value

__all__ = ["from_python", "to_python", "Instance"]


def from_python(data: Any, value_type: Type | None = None) -> Value:
    """Lift plain Python data into a :class:`Value`.

    * scalars (int/str/bool/float) become :class:`Atom`;
    * dicts become :class:`Record`;
    * lists/tuples/sets/frozensets become :class:`SetValue`;
    * existing :class:`Value` objects pass through unchanged.

    When *value_type* is given, the shape is checked against it while
    converting, which produces much better error messages than a separate
    typechecking pass.
    """
    if isinstance(data, Value):
        return data
    if isinstance(data, (bool, int, str, float)):
        if value_type is not None and not isinstance(value_type, BaseType):
            raise ValueError_(
                f"expected a value of type {value_type}, got the scalar "
                f"{data!r}"
            )
        return Atom(data)
    if isinstance(data, Mapping):
        if value_type is not None and not isinstance(value_type, RecordType):
            raise ValueError_(
                f"expected a value of type {value_type}, got the record "
                f"{data!r}"
            )
        fields = []
        for label, sub in data.items():
            sub_type = None
            if isinstance(value_type, RecordType):
                sub_type = value_type.field(label)
            fields.append((label, from_python(sub, sub_type)))
        return Record(fields)
    if isinstance(data, (list, tuple, set, frozenset)):
        if value_type is not None and not isinstance(value_type, SetType):
            raise ValueError_(
                f"expected a value of type {value_type}, got the "
                f"collection {data!r}"
            )
        element_type = value_type.element if isinstance(value_type, SetType) \
            else None
        return SetValue(from_python(item, element_type) for item in data)
    raise ValueError_(
        f"cannot lift {type(data).__name__} into a database value"
    )


def to_python(value: Value) -> Any:
    """Convert a :class:`Value` back into plain Python data.

    Sets become lists sorted by the repr of their elements, so the output
    is deterministic and JSON-serializable.
    """
    if isinstance(value, Atom):
        return value.value
    if isinstance(value, Record):
        return {label: to_python(sub) for label, sub in value.fields}
    if isinstance(value, SetValue):
        return [to_python(element) for element in value]
    raise ValueError_(f"not a Value: {value!r}")


class Instance:
    """A database instance: one set value per relation of a schema.

    Instances are immutable; :meth:`with_relation` returns an updated
    copy.  Construction does *not* typecheck the values against the schema
    (use :func:`repro.values.typecheck.check_instance` for that) so that
    deliberately ill-typed instances can still be built in tests.
    """

    __slots__ = ("schema", "_relations")

    def __init__(self, schema: Schema, relations: Mapping[str, Any]):
        converted: dict[str, SetValue] = {}
        for name in schema.relation_names:
            if name not in relations:
                raise InstanceError(
                    f"instance is missing relation {name!r}"
                )
            value = relations[name]
            if not isinstance(value, Value):
                value = from_python(value, schema.relation_type(name))
            if not isinstance(value, SetValue):
                raise InstanceError(
                    f"relation {name!r} must be a set value, got "
                    f"{type(value).__name__}"
                )
            converted[name] = value
        extra = set(relations) - set(schema.relation_names)
        if extra:
            raise InstanceError(
                f"instance has relations not in the schema: "
                f"{', '.join(sorted(extra))}"
            )
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "_relations", converted)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("Instance is immutable")

    def __reduce__(self):
        # the immutability guard defeats pickle's default slot-state
        # restore, so rebuild through the constructor
        return (Instance, (self.schema, dict(self._relations)))

    def relation(self, name: str) -> SetValue:
        """The set value of relation *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise InstanceError(f"unknown relation {name!r}") from None

    def with_relation(self, name: str, value: Any) -> "Instance":
        """Return a copy with relation *name* replaced."""
        updated = dict(self._relations)
        updated[name] = value
        return Instance(self.schema, updated)

    def relations(self) -> Iterator[tuple[str, SetValue]]:
        return iter(self._relations.items())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and \
            self.schema == other.schema and \
            self._relations == other._relations

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self._relations.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{name} -> {value}"
                          for name, value in self.relations())
        return f"Instance({inner})"

    def total_atoms(self) -> int:
        """Total number of atoms in the instance (a size measure)."""

        def count(value: Value) -> int:
            if isinstance(value, Atom):
                return 1
            if isinstance(value, Record):
                return sum(count(sub) for _, sub in value.fields)
            if isinstance(value, SetValue):
                return sum(count(element) for element in value)
            raise ValueError_(f"not a Value: {value!r}")

        return sum(count(value) for _, value in self.relations())
