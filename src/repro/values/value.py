"""The value model: atoms, records, and finite sets.

Values denote elements of the natural type semantics from Section 2 of the
paper.  All values are immutable and hashable, so records can be elements
of sets and sets can be compared for equality with genuine set semantics
(order- and duplicate-insensitive).

The three constructors mirror the type constructors:

* :class:`Atom` wraps a Python ``int``, ``str``, ``bool``, or ``float``;
* :class:`Record` maps labels to values;
* :class:`SetValue` is a finite (possibly empty) set of values.

Equality is structural and set equality is extensional, which is exactly
what NFD satisfaction (Definition 2.4) compares.

Because values are immutable, the structural hash of every constructor is
computed *once at construction* and cached (``_hash``); ``__hash__`` then
just returns it.  Nested values hash in O(depth) amortized instead of
re-walking the whole subtree on every dictionary probe — the hash-group
tables of :mod:`repro.nfd.fast_satisfy` and
:mod:`repro.nfd.batch_validate` probe these hashes on every binding.
:class:`SetValue` additionally caches its deterministic (sorted-by-repr)
iteration order lazily, so repeated traversals of the same set do not
re-sort it.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterable, Iterator

from ..errors import ValueError_

__all__ = ["Value", "Atom", "Record", "SetValue", "EMPTY_SET",
           "freeze_value", "thaw_value"]

_ATOM_TYPES = (int, str, bool, float)


class Value:
    """Abstract base class of all database values."""

    __slots__ = ()

    def is_atom(self) -> bool:
        return isinstance(self, Atom)

    def is_record(self) -> bool:
        return isinstance(self, Record)

    def is_set(self) -> bool:
        return isinstance(self, SetValue)


class Atom(Value):
    """An atomic value of one of the base types."""

    __slots__ = ("value", "_hash")

    def __init__(self, value):
        if not isinstance(value, _ATOM_TYPES):
            raise ValueError_(
                f"atoms wrap int, str, bool, or float, not "
                f"{type(value).__name__}"
            )
        if isinstance(value, float) and value != value:
            # NaN breaks reflexivity of __eq__, and with it set
            # membership and the hash/equality contract.
            raise ValueError_("atoms cannot wrap NaN (NaN != NaN would "
                              "break value equality)")
        object.__setattr__(self, "value", value)
        object.__setattr__(
            self, "_hash",
            hash(("Atom", type(value).__name__, value)))

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("Atom is immutable")

    def __reduce__(self):
        # the immutability guard defeats pickle's default slot-state
        # restore, so rebuild through the constructor
        return (Atom, (self.value,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return False
        # bool is a subclass of int in Python, and int == float across
        # types; keep True != 1 != 1.0 to avoid surprising cross-type
        # equalities in instances (the cached hash already separates the
        # three, so equality must too).
        if isinstance(self.value, bool) != isinstance(other.value, bool):
            return False
        if isinstance(self.value, float) != isinstance(other.value, float):
            return False
        return self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


class Record(Value):
    """A record value ``<A1 -> v1, ..., An -> vn>``.

    Label order is preserved for display; equality and hashing ignore it.
    """

    __slots__ = ("fields", "_by_label", "_hash")

    def __init__(self, fields):
        """Create a record from ``(label, value)`` pairs or a mapping."""
        if isinstance(fields, Mapping):
            pairs = tuple(fields.items())
        else:
            pairs = tuple(fields)
        seen: set[str] = set()
        for label, value in pairs:
            if not isinstance(label, str) or not label:
                raise ValueError_(f"record labels must be non-empty "
                                  f"strings, got {label!r}")
            if label in seen:
                raise ValueError_(f"repeated label {label!r} in record")
            seen.add(label)
            if not isinstance(value, Value):
                raise ValueError_(
                    f"field {label!r} must hold a Value, got "
                    f"{type(value).__name__}; use repro.values.build to "
                    "lift plain Python data"
                )
        if not pairs:
            raise ValueError_("records must have at least one field")
        object.__setattr__(self, "fields", pairs)
        object.__setattr__(self, "_by_label", dict(pairs))
        # Label order is display-only: hash the label/value pairs as a
        # frozenset so reordered constructions collide, as equality does.
        object.__setattr__(
            self, "_hash", hash(("Record", frozenset(pairs))))

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("Record is immutable")

    def __reduce__(self):
        return (Record, (self.fields,))

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def get(self, label: str) -> Value:
        """Project field *label*.

        :raises ValueError_: if the label is absent.
        """
        try:
            return self._by_label[label]
        except KeyError:
            raise ValueError_(
                f"record has no field {label!r}; fields are "
                f"{', '.join(self.labels)}"
            ) from None

    def has(self, label: str) -> bool:
        return label in self._by_label

    def replace(self, label: str, value: Value) -> "Record":
        """Return a copy with field *label* replaced by *value*."""
        if label not in self._by_label:
            raise ValueError_(f"record has no field {label!r}")
        return Record(tuple(
            (lab, value if lab == label else old)
            for lab, old in self.fields
        ))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return False
        return self._by_label == other._by_label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{label}={value!r}"
                          for label, value in self.fields)
        return f"Record({inner})"

    def __str__(self) -> str:
        inner = ", ".join(f"{label} -> {value}"
                          for label, value in self.fields)
        return f"<{inner}>"


class SetValue(Value):
    """A finite set of values with extensional equality."""

    __slots__ = ("elements", "_hash", "_sorted")

    def __init__(self, elements: Iterable[Value] = ()):
        frozen = frozenset(elements)
        for element in frozen:
            if not isinstance(element, Value):
                raise ValueError_(
                    f"set elements must be Values, got "
                    f"{type(element).__name__}"
                )
        object.__setattr__(self, "elements", frozen)
        object.__setattr__(self, "_hash", hash(("SetValue", frozen)))
        # Deterministic iteration order, computed lazily on first use.
        object.__setattr__(self, "_sorted", None)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("SetValue is immutable")

    def __reduce__(self):
        return (SetValue, (self.elements,))

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Value]:
        # Deterministic iteration order: sort by repr.  Stable order
        # keeps printing and tests reproducible across hash
        # randomization; the sorted tuple is cached because validation
        # engines iterate the same sets many times.
        ordered = self._sorted
        if ordered is None:
            if len(self.elements) == 1:
                # Singleton sets need no repr (a full-subtree render) to
                # have a deterministic order; the streaming validator
                # walks one of these per nested-anchored element.
                ordered = tuple(self.elements)
            else:
                ordered = tuple(sorted(self.elements, key=repr))
            object.__setattr__(self, "_sorted", ordered)
        return iter(ordered)

    def __contains__(self, value: Value) -> bool:
        return value in self.elements

    @property
    def is_empty(self) -> bool:
        return not self.elements

    @property
    def is_singleton(self) -> bool:
        return len(self.elements) == 1

    def the_element(self) -> Value:
        """Return the sole element of a singleton set.

        :raises ValueError_: if the set is not a singleton.
        """
        if len(self.elements) != 1:
            raise ValueError_(
                f"expected a singleton set, found {len(self.elements)} "
                "elements"
            )
        return next(iter(self.elements))

    def union(self, other: "SetValue") -> "SetValue":
        return SetValue(self.elements | other.elements)

    def intersection(self, other: "SetValue") -> "SetValue":
        return SetValue(self.elements & other.elements)

    def add(self, value: Value) -> "SetValue":
        """Return a new set with *value* added."""
        return SetValue(self.elements | {value})

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetValue) and \
            self.elements == other.elements

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(element) for element in self)
        return f"SetValue({{{inner}}})"

    def __str__(self) -> str:
        inner = ", ".join(str(element) for element in self)
        return "{" + inner + "}"


#: The empty set value.
EMPTY_SET = SetValue(())


# ------------------------------------------------------- fast round-trip
#
# freeze_value/thaw_value are a lossless plain-data round-trip for value
# trees that were *already validated at construction*.  Pickling a Value
# goes through __reduce__ and hence back through the validating
# constructors — per-field label checks plus abstract-class isinstance
# probes on every node — which dominates reload time when the streaming
# validator re-reads millions of spilled aggregates.  The frozen form is
# built from scalars and tuples only (fast native pickling, no per-node
# __reduce__ dispatch) and thawing rebuilds each node with
# ``object.__new__`` plus direct slot stores, recomputing the structural
# hash in-process (hashes are salted per process and must never travel).
#
# Tags cannot collide with payloads: a frozen Atom is its bare scalar
# (never a tuple), records and sets are tagged tuples, and None — which
# aggregate slots use for "no clash yet" — passes through.


def freeze_value(value):
    """The plain-data form of *value* (or None), for fast pickling."""
    if value is None:
        return None
    kind = type(value)
    if kind is Atom:
        return value.value
    if kind is Record:
        return ("R", tuple((label, freeze_value(sub))
                           for label, sub in value.fields))
    if kind is SetValue:
        return ("S", tuple(freeze_value(element)
                           for element in value.elements))
    raise ValueError_(f"cannot freeze {type(value).__name__}")


def thaw_value(data):
    """Rebuild the value tree frozen by :func:`freeze_value`."""
    if data is None:
        return None
    if type(data) is not tuple:
        atom = object.__new__(Atom)
        object.__setattr__(atom, "value", data)
        object.__setattr__(
            atom, "_hash", hash(("Atom", type(data).__name__, data)))
        return atom
    tag, payload = data
    if tag == "R":
        pairs = tuple((label, thaw_value(sub)) for label, sub in payload)
        record = object.__new__(Record)
        object.__setattr__(record, "fields", pairs)
        object.__setattr__(record, "_by_label", dict(pairs))
        object.__setattr__(
            record, "_hash", hash(("Record", frozenset(pairs))))
        return record
    frozen = frozenset(thaw_value(element) for element in payload)
    set_value = object.__new__(SetValue)
    object.__setattr__(set_value, "elements", frozen)
    object.__setattr__(set_value, "_hash", hash(("SetValue", frozen)))
    object.__setattr__(set_value, "_sorted", None)
    return set_value
