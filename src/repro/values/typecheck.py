"""Checking that values conform to types and instances to schemas.

Implements the natural denotation of types from Section 2: an atom
inhabits the matching base type, a record inhabits a record type when its
labels and field values match, and a set inhabits a set type when every
element inhabits the element type (the empty set inhabits every set type).
"""

from __future__ import annotations

from ..errors import InstanceError, ValueError_
from ..types.base import BaseType, RecordType, SetType, Type
from .build import Instance
from .value import Atom, Record, SetValue, Value

__all__ = ["check_value", "conforms", "check_instance",
           "instance_conforms"]

_BASE_PYTHON = {"int": int, "string": str, "bool": bool}


def check_value(value: Value, value_type: Type, context: str = "value") \
        -> None:
    """Raise :class:`ValueError_` unless *value* inhabits *value_type*.

    *context* is a human-readable location used in error messages and
    extended as the check recurses.
    """
    if isinstance(value_type, BaseType):
        if not isinstance(value, Atom):
            raise ValueError_(
                f"{context}: expected an atom of type {value_type}, got "
                f"{value}"
            )
        expected = _BASE_PYTHON[value_type.name]
        actual = value.value
        if expected is int and isinstance(actual, bool):
            raise ValueError_(
                f"{context}: expected int, got the bool {actual!r}"
            )
        if not isinstance(actual, expected):
            raise ValueError_(
                f"{context}: expected {value_type}, got "
                f"{type(actual).__name__} {actual!r}"
            )
        return
    if isinstance(value_type, SetType):
        if not isinstance(value, SetValue):
            raise ValueError_(
                f"{context}: expected a set of type {value_type}, got "
                f"{value}"
            )
        for index, element in enumerate(value):
            check_value(element, value_type.element,
                        f"{context}[{index}]")
        return
    if isinstance(value_type, RecordType):
        if not isinstance(value, Record):
            raise ValueError_(
                f"{context}: expected a record of type {value_type}, got "
                f"{value}"
            )
        missing = set(value_type.labels) - set(value.labels)
        extra = set(value.labels) - set(value_type.labels)
        if missing or extra:
            parts = []
            if missing:
                parts.append(f"missing fields {', '.join(sorted(missing))}")
            if extra:
                parts.append(f"unexpected fields {', '.join(sorted(extra))}")
            raise ValueError_(f"{context}: {'; '.join(parts)}")
        for label in value_type.labels:
            check_value(value.get(label), value_type.field(label),
                        f"{context}.{label}")
        return
    raise ValueError_(f"not a Type: {value_type!r}")


def conforms(value: Value, value_type: Type) -> bool:
    """True iff *value* inhabits *value_type*."""
    try:
        check_value(value, value_type)
    except ValueError_:
        return False
    return True


def check_instance(instance: Instance) -> None:
    """Raise :class:`InstanceError` unless the instance fits its schema."""
    for name, value in instance.relations():
        rel_type = instance.schema.relation_type(name)
        try:
            check_value(value, rel_type, context=name)
        except ValueError_ as exc:
            raise InstanceError(str(exc)) from exc


def instance_conforms(instance: Instance) -> bool:
    """True iff the instance fits its schema."""
    try:
        check_instance(instance)
    except InstanceError:
        return False
    return True
