"""Canonical byte encodings of values, for external sorting.

The spill-to-disk group tables of :mod:`repro.nfd.stream_validate` sort
and merge antecedent keys on disk, so they need a *byte string* ordering
that agrees exactly with value equality:

* **injective** — ``canonical_bytes(u) == canonical_bytes(v)`` iff
  ``u == v``.  Plain ``repr`` does not qualify: record equality ignores
  field order while ``repr`` preserves it, so two equal records could
  sort apart in an external merge and a real violation would be missed;
* **deterministic** — independent of construction order, hash
  randomization, and the process that produced it, so runs written by
  different shard workers merge consistently.

The encoding is a self-delimiting prefix code: every node writes a tag,
a length/arity, and then its (already self-delimiting) payloads, so the
whole byte string decodes unambiguously — which is what makes it
injective.  Record fields are sorted by label and set elements by their
own encodings, mirroring the order-insensitivity of value equality.

The byte *order* itself carries no semantic meaning; only equality of
encodings and determinism of the order matter.
"""

from __future__ import annotations

from ..errors import ValueError_
from .value import Atom, Record, SetValue, Value

__all__ = ["canonical_bytes", "canonical_key_bytes"]


def canonical_bytes(value: Value) -> bytes:
    """The canonical encoding of one value (see the module docstring)."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def canonical_key_bytes(values: tuple) -> bytes:
    """The canonical encoding of a tuple of values (an antecedent key).

    Framed with the tuple's arity so keys of different widths can never
    collide even when their concatenated parts would.
    """
    out = bytearray()
    out += b"T%d;" % len(values)
    for value in values:
        _encode(value, out)
    return bytes(out)


def _encode(value: Value, out: bytearray) -> None:
    if isinstance(value, Atom):
        raw = value.value
        # bool before int: bool is an int subclass but True != Atom(1)
        if isinstance(raw, bool):
            out += b"b1;" if raw else b"b0;"
        elif isinstance(raw, int):
            text = str(raw).encode("ascii")
            out += b"i%d;" % len(text)
            out += text
        else:
            text = raw.encode("utf-8")
            out += b"s%d;" % len(text)
            out += text
    elif isinstance(value, Record):
        encoded = []
        for label, sub in value.fields:
            part = bytearray()
            raw_label = label.encode("utf-8")
            part += b"l%d;" % len(raw_label)
            part += raw_label
            _encode(sub, part)
            encoded.append(bytes(part))
        # labels are unique within a record, so sorting the encoded
        # (label, value) pairs is sorting by label: equal records with
        # different field order encode identically
        encoded.sort()
        out += b"r%d;" % len(encoded)
        for part in encoded:
            out += part
    elif isinstance(value, SetValue):
        encoded = sorted(canonical_bytes(element)
                         for element in value.elements)
        out += b"S%d;" % len(encoded)
        for part in encoded:
            out += part
    else:
        raise ValueError_(
            f"cannot canonically encode {type(value).__name__}"
        )
