"""Canonical byte encodings of values, for external sorting.

The spill-to-disk group tables of :mod:`repro.nfd.stream_validate` sort
and merge antecedent keys on disk, so they need a *byte string* ordering
that agrees exactly with value equality:

* **injective** — ``canonical_bytes(u) == canonical_bytes(v)`` iff
  ``u == v``.  Plain ``repr`` does not qualify: record equality ignores
  field order while ``repr`` preserves it, so two equal records could
  sort apart in an external merge and a real violation would be missed;
* **deterministic** — independent of construction order, hash
  randomization, and the process that produced it, so runs written by
  different shard workers merge consistently.

The encoding is a self-delimiting prefix code: every node writes a tag,
a length/arity, and then its (already self-delimiting) payloads, so the
whole byte string decodes unambiguously — which is what makes it
injective.  Record fields are sorted by label and set elements by their
own encodings, mirroring the order-insensitivity of value equality.

Numeric atoms follow :meth:`Atom.__eq__` exactly (injectivity in both
directions is property-tested in
``tests/properties/test_canonical_injectivity.py``):

* ``Atom(True)``, ``Atom(1)``, and ``Atom(1.0)`` are pairwise *unequal*
  (atom equality is type-strict across bool/int/float), so they carry
  distinct tags (``b``/``i``/``f``) and encode differently;
* ``Atom(0.0) == Atom(-0.0)`` (IEEE equality within the float type), so
  ``-0.0`` is normalized to ``0.0`` before encoding — ``repr`` alone
  would encode them apart and a real clash could be missed;
* large ints encode as their full decimal text, which two unequal ints
  can never share.

The byte *order* itself carries no semantic meaning; only equality of
encodings and determinism of the order matter.

Hot-path helpers
----------------

The streaming validator encodes millions of keys whose atoms repeat
heavily (wide antecedent keys over a small domain).  :class:`InternPool`
caches the encoding of every value it has seen — repeated atoms and
repeated nested values alike — and
:func:`canonical_key_bytes` accepts a caller-owned scratch
``bytearray`` so the per-key assembly reuses one buffer instead of
allocating a fresh one per key.
"""

from __future__ import annotations

from ..errors import ValueError_
from .value import Atom, Record, SetValue, Value

__all__ = ["canonical_bytes", "canonical_key_bytes", "InternPool",
           "CODEC_VERSION"]

#: Stable version tag of the canonical encoding.  Persisted caches
#: (:mod:`repro.store`) key group-table rows by these bytes, so any
#: change to :func:`_encode`'s output — new tags, different framing,
#: different normalization — MUST bump this string; a store opened
#: under a different codec version discards its contents rather than
#: compare keys across encodings.
CODEC_VERSION = "1"


def canonical_bytes(value: Value) -> bytes:
    """The canonical encoding of one value (see the module docstring)."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def canonical_key_bytes(values: tuple, *, pool: "InternPool | None" = None,
                        scratch: bytearray | None = None) -> bytes:
    """The canonical encoding of a tuple of values (an antecedent key).

    Framed with the tuple's arity so keys of different widths can never
    collide even when their concatenated parts would.

    *pool* substitutes cached per-value encodings for fresh ones, and
    *scratch* is a caller-owned ``bytearray`` reused as the assembly
    buffer (it is cleared on entry); both leave the returned bytes
    unchanged — they only remove allocations from the per-key path.
    """
    out = bytearray() if scratch is None else scratch
    if scratch is not None:
        del out[:]
    out += b"T%d;" % len(values)
    if pool is None:
        for value in values:
            _encode(value, out)
    else:
        for value in values:
            out += pool.value_bytes(value)
    return bytes(out)


class InternPool:
    """A bounded cache of canonical encodings, keyed by value equality.

    Values are immutable and hash their structure once at construction,
    so a dict keyed by the values themselves is an exact intern table:
    two keys collide iff the values are equal iff their encodings are
    identical.  The pool therefore *cannot* change any encoding — it is
    purely an allocation saver, and the differential suite
    (``tests/properties/test_stream_tuning_differential.py``) runs the
    streaming validator with and without one to prove it.

    ``max_entries`` bounds residency: when the table is full, inserting
    one more entry clears the whole table (cheap, and the hot working
    set re-warms in one pass).  ``hits``/``misses``/``evictions`` make
    the behavior observable in stats and tests.
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_cache")

    def __init__(self, max_entries: int = 1 << 16):
        if max_entries < 1:
            raise ValueError_(
                f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._cache: dict[Value, bytes] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def value_bytes(self, value: Value) -> bytes:
        """The canonical encoding of *value*, cached."""
        cached = self._cache.get(value)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        out = bytearray()
        _encode(value, out)
        encoded = bytes(out)
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
            self.evictions += 1
        self._cache[value] = encoded
        return encoded

    def key_bytes(self, values: tuple,
                  scratch: bytearray | None = None) -> bytes:
        """:func:`canonical_key_bytes` through this pool."""
        return canonical_key_bytes(values, pool=self, scratch=scratch)

    def stats(self) -> dict:
        """JSON-friendly counters (for stream stats and tests)."""
        return {
            "entries": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (f"InternPool(entries={len(self._cache)}, "
                f"hits={self.hits}, misses={self.misses})")


def _encode(value: Value, out: bytearray) -> None:
    if isinstance(value, Atom):
        raw = value.value
        # bool before int: bool is an int subclass but True != Atom(1)
        if isinstance(raw, bool):
            out += b"b1;" if raw else b"b0;"
        elif isinstance(raw, int):
            text = str(raw).encode("ascii")
            out += b"i%d;" % len(text)
            out += text
        elif isinstance(raw, float):
            # float is tagged apart from int (Atom(1) != Atom(1.0)).
            # repr is injective over non-NaN floats (Atom rejects NaN)
            # except for the signed zeros, which IEEE equality — and
            # hence Atom.__eq__ — identifies, so -0.0 normalizes first.
            if raw == 0.0:
                raw = 0.0
            text = repr(raw).encode("ascii")
            out += b"f%d;" % len(text)
            out += text
        else:
            text = raw.encode("utf-8")
            out += b"s%d;" % len(text)
            out += text
    elif isinstance(value, Record):
        encoded = []
        for label, sub in value.fields:
            part = bytearray()
            raw_label = label.encode("utf-8")
            part += b"l%d;" % len(raw_label)
            part += raw_label
            _encode(sub, part)
            encoded.append(bytes(part))
        # labels are unique within a record, so sorting the encoded
        # (label, value) pairs is sorting by label: equal records with
        # different field order encode identically
        encoded.sort()
        out += b"r%d;" % len(encoded)
        for part in encoded:
            out += part
    elif isinstance(value, SetValue):
        encoded = sorted(canonical_bytes(element)
                         for element in value.elements)
        out += b"S%d;" % len(encoded)
        for part in encoded:
            out += part
    else:
        raise ValueError_(
            f"cannot canonically encode {type(value).__name__}"
        )
