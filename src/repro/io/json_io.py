"""JSON (de)serialization of schemas, instances, and NFD sets.

The wire format is deliberately plain:

* types serialize to their concrete syntax strings (round-tripping
  through :func:`repro.types.parser.parse_type`);
* instances serialize to nested dict/list structures (sets as sorted
  lists), shaped by the schema on the way back in;
* NFDs serialize to their concrete syntax strings.

A whole (schema, sigma, instance) bundle round-trips through
:func:`dump_bundle` / :func:`load_bundle`, which is how example scripts
persist scenarios.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..inference.empty_sets import NonEmptySpec

from ..errors import ParseError
from ..nfd.nfd import NFD
from ..nfd.parser import parse_nfd
from ..types.parser import parse_type
from ..types.printer import format_type
from ..types.schema import Schema
from ..values.build import Instance, from_python, to_python

__all__ = [
    "load_spec",
    "schema_to_dict", "schema_from_dict",
    "instance_to_dict", "instance_from_dict",
    "nfds_to_list", "nfds_from_list",
    "dump_bundle", "load_bundle",
]


def schema_to_dict(schema: Schema) -> dict[str, str]:
    """``{relation: type-syntax}``."""
    return {name: format_type(rel_type)
            for name, rel_type in schema.items()}


def schema_from_dict(data: dict[str, str]) -> Schema:
    return Schema({name: parse_type(text) for name, text in data.items()})


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """Nested dict/list data, one key per relation."""
    return {name: to_python(value)
            for name, value in instance.relations()}


def instance_from_dict(schema: Schema, data: dict[str, Any]) -> Instance:
    return Instance(schema, {
        name: from_python(value, schema.relation_type(name))
        for name, value in data.items()
    })


def nfds_to_list(nfds: Iterable[NFD]) -> list[str]:
    return [str(nfd) for nfd in nfds]


def nfds_from_list(texts: Iterable[str]) -> list[NFD]:
    result = []
    for text in texts:
        try:
            result.append(parse_nfd(text))
        except ParseError as exc:
            raise ParseError(f"bad NFD in list: {exc}") from exc
    return result


def dump_bundle(schema: Schema, sigma: Iterable[NFD],
                instance: Instance | None = None, indent: int = 2,
                nonempty: "NonEmptySpec | None" = None) -> str:
    """Serialize a scenario to a JSON string.

    When *nonempty* is given, the Section 3.2 NON-NULL declarations are
    stored under ``"nonempty"`` (the string ``"*"`` for the all-nonempty
    spec) and recovered by :func:`load_spec`.
    """
    payload: dict[str, Any] = {
        "schema": schema_to_dict(schema),
        "nfds": nfds_to_list(sigma),
    }
    if instance is not None:
        payload["instance"] = instance_to_dict(instance)
    if nonempty is not None:
        if nonempty.declares_everything:
            payload["nonempty"] = "*"
        else:
            payload["nonempty"] = sorted(
                str(path) for path in nonempty.declared
            )
    return json.dumps(payload, indent=indent, sort_keys=True)


def _parse_payload(text: str) -> dict[str, Any]:
    """Decode a bundle, translating raw decoder failures into typed
    :class:`ParseError`\\ s that name the offending line/column."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(
            f"bundle is not valid JSON at line {exc.lineno}, column "
            f"{exc.colno}: {exc.msg}") from exc
    if not isinstance(payload, dict):
        raise ParseError(
            f"bundle must be a JSON object, found "
            f"{type(payload).__name__}")
    return payload


def load_bundle(text: str) \
        -> tuple[Schema, list[NFD], Instance | None]:
    """Inverse of :func:`dump_bundle` (spec excluded; see
    :func:`load_spec`)."""
    payload = _parse_payload(text)
    if "schema" not in payload:
        raise ParseError('bundle is missing the required "schema" key')
    schema = schema_from_dict(payload["schema"])
    nfds = payload.get("nfds", [])
    if not isinstance(nfds, list):
        raise ParseError(
            f'bundle "nfds" must be a list of NFD strings, found '
            f"{type(nfds).__name__}")
    sigma = nfds_from_list(nfds)
    instance = None
    if "instance" in payload:
        instance = instance_from_dict(schema, payload["instance"])
    return schema, sigma, instance


def load_spec(text: str) -> "NonEmptySpec | None":
    """The bundle's NON-NULL declarations, or None if absent."""
    from ..inference.empty_sets import NonEmptySpec
    from ..paths.path import parse_path

    payload = _parse_payload(text)
    declared = payload.get("nonempty")
    if declared is None:
        return None
    if declared == "*":
        return NonEmptySpec.all_nonempty()
    return NonEmptySpec({parse_path(item) for item in declared})
