"""Serialization and display."""

from .json_io import (
    dump_bundle,
    instance_from_dict,
    instance_to_dict,
    load_bundle,
    load_spec,
    nfds_from_list,
    nfds_to_list,
    schema_from_dict,
    schema_to_dict,
)
from .csv_io import dump_csv, load_csv
from .report_md import markdown_report
from .stream import (
    count_stream_lines,
    dump_jsonl,
    iter_jsonl_elements,
    iter_set_elements,
    plan_shards,
)
from .tables import render_instance, render_relation

__all__ = [
    "render_relation",
    "markdown_report",
    "load_csv",
    "dump_csv",
    "render_instance",
    "schema_to_dict",
    "schema_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "nfds_to_list",
    "nfds_from_list",
    "dump_bundle",
    "load_bundle",
    "load_spec",
    "iter_jsonl_elements",
    "iter_set_elements",
    "dump_jsonl",
    "count_stream_lines",
    "plan_shards",
]
