"""Chunked streaming of relation elements: JSONL readers and writers.

The in-memory bundle format (:mod:`repro.io.json_io`) materializes a
whole instance before anything can be checked.  This module is the
out-of-core half: a relation is serialized as **JSON Lines** — one
top-level element (a record of the relation's element type) per line —
and read back one element at a time, so
:mod:`repro.nfd.stream_validate` can check Σ against a dump that never
fits in memory.

Error handling is deliberately strict and *typed*: a truncated or
malformed line, an element that does not conform to the relation's
element type, and an empty stream all raise
:class:`~repro.errors.StreamError` naming the offending 1-based line
number — never a raw ``json.JSONDecodeError`` or ``KeyError`` — so a
failure in a multi-gigabyte dump points at the exact record.

Sharding support: :func:`plan_shards` splits one file into *contiguous*
line ranges (order-preserving, so a sharded run sees the same element
sequence as a serial scan of the whole file), and
:func:`iter_jsonl_elements` accepts ``start``/``stop`` line bounds so a
worker can stream just its range.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Iterator

from ..errors import ReproError, StreamError
from ..types.schema import Schema
from ..values.build import to_python
from ..values.build import from_python
from ..values.value import Record, SetValue, Value

__all__ = [
    "iter_jsonl_elements",
    "iter_set_elements",
    "dump_jsonl",
    "count_stream_lines",
    "plan_shards",
]


def iter_jsonl_elements(path, schema: Schema, relation: str, *,
                        start: int = 0, stop: int | None = None,
                        require_elements: bool = True) \
        -> Iterator[Record]:
    """Stream the elements of one relation from a JSONL file.

    Each non-blank line must hold one JSON object conforming to
    *relation*'s element type; elements are yielded in file order, one
    at a time, so memory stays bounded by a single element.

    ``start``/``stop`` restrict the scan to physical lines
    ``start < n <= stop`` (the half-open ranges :func:`plan_shards`
    produces).  Blank lines are skipped.

    :raises StreamError: for an unreadable file, a truncated/malformed
        JSON line, a type-mismatched element (always naming the 1-based
        line number), or — unless ``require_elements=False`` (shard
        ranges may legitimately be empty) — a stream with no elements
        at all.
    """
    element_type = schema.element_type(relation)
    label = os.fspath(path)
    yielded = 0
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise StreamError(f"cannot read stream {label!r}: {exc}") \
            from exc
    with handle:
        for number, line in enumerate(handle, start=1):
            if stop is not None and number > stop:
                break
            if number <= start or not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StreamError(
                    f"{label}: line {number}: truncated or malformed "
                    f"JSON element: {exc.msg}", line=number) from exc
            try:
                element = from_python(data, element_type)
            except ReproError as exc:
                raise StreamError(
                    f"{label}: line {number}: element does not conform "
                    f"to the {relation!r} element type: {exc}",
                    line=number) from exc
            yielded += 1
            yield element
    if require_elements and yielded == 0:
        raise StreamError(
            f"{label}: line 1: empty stream (no {relation!r} elements)",
            line=1)


def iter_set_elements(set_value: SetValue) -> Iterator[Value]:
    """Adapter: stream an in-memory set in its deterministic order.

    This is the bridge between the in-memory and out-of-core engines:
    iterating a :class:`~repro.values.value.SetValue` yields elements in
    the same sorted-by-repr order the batch validator walks, so a
    streamed run over this adapter reproduces the in-memory engine's
    witnesses byte for byte.
    """
    return iter(set_value)


def dump_jsonl(path, elements: Iterable[Any]) -> int:
    """Write elements as JSON Lines (one object per line); returns the
    number of lines written.

    Elements may be :class:`Value` trees (converted via
    :func:`~repro.values.build.to_python`, which preserves record field
    order) or already-plain Python data.  Dumping a
    :class:`SetValue`'s iteration yields a file whose scan order equals
    the in-memory walk order.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for element in elements:
            data = to_python(element) if isinstance(element, Value) \
                else element
            handle.write(json.dumps(data))
            handle.write("\n")
            count += 1
    return count


def count_stream_lines(path) -> tuple[int, int]:
    """``(physical lines, non-blank data lines)`` of a JSONL file."""
    total = 0
    data = 0
    label = os.fspath(path)
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise StreamError(f"cannot read stream {label!r}: {exc}") \
            from exc
    with handle:
        for line in handle:
            total += 1
            if line.strip():
                data += 1
    return total, data


def plan_shards(path, shards: int) -> list[tuple[str, int, int]]:
    """Split one JSONL file into *shards* contiguous line ranges.

    Returns ``(path, start, stop)`` triples covering lines
    ``start < n <= stop`` — contiguous and in order, so the
    concatenation of the shards is exactly the serial scan and a
    sharded validation produces the same witnesses.  One cheap counting
    pass is the price of balanced ranges.

    :raises StreamError: for ``shards < 1`` or a file with no data
        lines at all (an empty dump is almost always a broken export).
    """
    if shards < 1:
        raise StreamError(f"shard count must be >= 1, got {shards}")
    total, data = count_stream_lines(path)
    if data == 0:
        raise StreamError(
            f"{os.fspath(path)}: line 1: empty stream (no elements to "
            f"shard)", line=1)
    label = os.fspath(path)
    ranges = []
    for index in range(shards):
        lo = index * total // shards
        hi = (index + 1) * total // shards
        ranges.append((label, lo, hi))
    return ranges
