"""CSV ingestion: from flat files to nested, constrained relations.

The common adoption path for this library starts from flat exports.
:func:`load_csv` reads a CSV into a flat relation (typed by a record of
base types), after which a :class:`~repro.design.nested_design.NestPlan`
shapes it and carries its FDs — see ``examples/schema_designer.py`` for
the full pipeline.
"""

from __future__ import annotations

import csv
import io

from ..errors import ParseError
from ..types.base import BaseType, RecordType, SetType
from ..types.schema import Schema
from ..values.build import Instance

__all__ = ["load_csv", "dump_csv"]


def _convert(text: str, base: BaseType):
    if base.name == "int":
        try:
            return int(text)
        except ValueError as exc:
            raise ParseError(f"expected an int, got {text!r}") from exc
    if base.name == "bool":
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise ParseError(f"expected a bool, got {text!r}")
    return text


def load_csv(text: str, relation: str,
             types: dict[str, str] | None = None) -> Instance:
    """Parse CSV text into a single flat relation.

    The first row is the header.  *types* maps column names to base-type
    names (``int``/``string``/``bool``); unmapped columns default to
    ``string``.  Returns an instance of the one-relation schema
    ``{relation: {<col1: t1, ...>}}``.

    :raises ParseError: on an empty file, unknown type names, or cells
        that do not convert.
    """
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        raise ParseError("the CSV has no header row")
    header = [column.strip() for column in rows[0]]
    type_map: dict[str, BaseType] = {}
    for column in header:
        name = (types or {}).get(column, "string")
        if name not in ("int", "string", "bool"):
            raise ParseError(
                f"unknown type {name!r} for column {column!r}"
            )
        type_map[column] = BaseType(name)
    record = RecordType([(column, type_map[column])
                         for column in header])
    schema = Schema({relation: SetType(record)})
    data = []
    for line_number, row in enumerate(rows[1:], start=2):
        if len(row) != len(header):
            raise ParseError(
                f"line {line_number}: expected {len(header)} cells, "
                f"got {len(row)}"
            )
        data.append({
            column: _convert(cell.strip(), type_map[column])
            for column, cell in zip(header, row)
        })
    return Instance(schema, {relation: data})


def dump_csv(instance: Instance, relation: str) -> str:
    """Serialize a flat relation back to CSV (header + sorted rows).

    :raises ParseError: if the relation has nested attributes.
    """
    element = instance.schema.element_type(relation)
    for label, field_type in element.fields:
        if not isinstance(field_type, BaseType):
            raise ParseError(
                f"attribute {label!r} is nested; unnest before dumping "
                "to CSV"
            )
    header = list(element.labels)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    rendered = sorted(
        [[row.get(column).value for column in header]
         for row in instance.relation(relation)],
        key=repr,
    )
    writer.writerows(rendered)
    return buffer.getvalue()
