"""Paper-style ASCII rendering of nested relations.

The paper displays nested instances as tables whose set-valued columns
contain sub-tables with their own headers (Figure 1, the Appendix A
examples).  :func:`render_relation` reproduces that layout::

        A | B     | E
          | C | D | F | G
        --+---+---+---+---
        1 | 1 | 3 | 5 | 6
          |       | 5 | 7

Cells are rendered recursively: atoms become their literal text, nested
sets become stacked sub-rows under a sub-header.  Rows of a set are
ordered deterministically (the :class:`SetValue` iteration order).
"""

from __future__ import annotations

from ..errors import ValueError_
from ..values.build import Instance
from ..values.value import Atom, Record, SetValue, Value

__all__ = ["render_relation", "render_instance"]


class _Block:
    """A rectangle of text: a list of equal-width lines."""

    __slots__ = ("lines", "width")

    def __init__(self, lines: list[str]):
        self.width = max((len(line) for line in lines), default=0)
        self.lines = [line.ljust(self.width) for line in lines]

    @property
    def height(self) -> int:
        return len(self.lines)

    def padded(self, width: int, height: int) -> list[str]:
        lines = [line.ljust(width) for line in self.lines]
        while len(lines) < height:
            lines.append(" " * width)
        return lines


def _value_block(value: Value) -> _Block:
    if isinstance(value, Atom):
        return _Block([str(value)])
    if isinstance(value, SetValue):
        return _set_block(value)
    if isinstance(value, Record):
        # A bare record (outside a set) renders as a one-row table.
        return _set_block(SetValue({value}))
    raise ValueError_(f"not a Value: {value!r}")


def _set_block(set_value: SetValue) -> _Block:
    if set_value.is_empty:
        return _Block(["∅"])
    elements = list(set_value)
    if not all(isinstance(element, Record) for element in elements):
        # A set of atoms (not schema-legal, but values allow it): braces.
        return _Block(["{" + ", ".join(str(e) for e in elements) + "}"])
    labels: list[str] = []
    for element in elements:
        for label in element.labels:  # type: ignore[union-attr]
            if label not in labels:
                labels.append(label)
    header = [_Block([label]) for label in labels]
    rows: list[list[_Block]] = []
    for element in elements:
        row = []
        for label in labels:
            if element.has(label):  # type: ignore[union-attr]
                row.append(_value_block(element.get(label)))
            else:
                row.append(_Block(["-"]))
        rows.append(row)
    widths = [
        max(header[i].width, *(row[i].width for row in rows))
        for i in range(len(labels))
    ]
    lines: list[str] = []
    lines.append(" | ".join(
        header[i].padded(widths[i], 1)[0] for i in range(len(labels))
    ))
    lines.append("-+-".join("-" * widths[i] for i in range(len(labels))))
    for row in rows:
        height = max(cell.height for cell in row)
        padded = [cell.padded(widths[i], height)
                  for i, cell in enumerate(row)]
        for line_index in range(height):
            lines.append(" | ".join(
                padded[i][line_index] for i in range(len(labels))
            ))
    return _Block(lines)


def render_relation(set_value: SetValue, title: str | None = None) -> str:
    """Render one relation as a nested ASCII table."""
    block = _set_block(set_value)
    if title is None:
        return "\n".join(block.lines)
    return "\n".join([title, *block.lines])


def render_instance(instance: Instance) -> str:
    """Render every relation of an instance, separated by blank lines."""
    parts = [
        render_relation(value, title=f"{name}:")
        for name, value in instance.relations()
    ]
    return "\n\n".join(parts)
