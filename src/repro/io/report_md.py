"""Markdown reports for bundles: schema, constraints, analysis, data.

One call renders everything a reviewer wants to see about a
``(schema, Sigma, instance)`` bundle as a self-contained Markdown
document — the schema in both syntaxes, the constraint set with its
analysis (keys, singletons, redundancy), and the instance as fenced
nested tables with its violation status.
"""

from __future__ import annotations

from typing import Iterable

from ..analysis.report import analyze_constraints
from ..inference.empty_sets import NonEmptySpec
from ..nfd.nfd import NFD
from ..nfd.violations import find_violations
from ..types.printer import format_type_tree
from ..types.schema import Schema
from ..values.build import Instance
from .tables import render_relation

__all__ = ["markdown_report"]


def markdown_report(schema: Schema, sigma: Iterable[NFD],
                    instance: Instance | None = None,
                    title: str = "Constraint report",
                    nonempty: NonEmptySpec | None = None) -> str:
    """Render the bundle as a Markdown document."""
    sigma_list = list(sigma)
    lines: list[str] = [f"# {title}", ""]

    lines.append("## Schema")
    lines.append("")
    for name, rel_type in schema.items():
        lines.append(f"### `{name}`")
        lines.append("")
        lines.append("```")
        lines.append(f"{name} = {format_type_tree(rel_type)}")
        lines.append("```")
        lines.append("")

    lines.append("## Constraints")
    lines.append("")
    if sigma_list:
        for nfd in sigma_list:
            lines.append(f"- `{nfd}`")
    else:
        lines.append("*(none declared)*")
    lines.append("")

    report = analyze_constraints(schema, sigma_list, nonempty=nonempty)
    lines.append("## Analysis")
    lines.append("")
    lines.append("```")
    lines.append(report.to_text())
    lines.append("```")
    lines.append("")

    if instance is not None:
        lines.append("## Instance")
        lines.append("")
        total_violations = 0
        for name, relation in instance.relations():
            lines.append(f"### `{name}` ({len(relation)} tuples)")
            lines.append("")
            lines.append("```")
            lines.append(render_relation(relation))
            lines.append("```")
            lines.append("")
        for nfd in sigma_list:
            for violation in find_violations(instance, nfd):
                total_violations += 1
                lines.append(f"**Violation:** `{violation.nfd}` — "
                             f"{violation.describe().splitlines()[1].strip()} "
                             f"maps `{violation.nfd.rhs}` to both "
                             f"`{violation.rhs_value1}` and "
                             f"`{violation.rhs_value2}`.")
                lines.append("")
        if total_violations == 0:
            lines.append("The instance **satisfies** every declared "
                         "constraint.")
        else:
            lines.append(f"The instance has **{total_violations} "
                         "violation(s)**.")
        lines.append("")

    return "\n".join(lines)
