"""Semantic diffing of constraint sets.

When a schema's constraint set evolves, the interesting question is not
which *strings* changed but which *requirements* did: a reformulated NFD
(local vs simple form, shuffled LHS) is no change at all, while dropping
one member may silently weaken several others' consequences.
:func:`diff_sigmas` classifies each member semantically, via the
closure engine:

* ``strengthened`` — new members not implied by the old set: fresh
  requirements existing data may violate;
* ``weakened`` — old members not implied by the new set: guarantees
  downstream consumers may have relied on;
* ``carried`` — members of either set implied by both: no migration
  impact, however they are now spelled.
"""

from __future__ import annotations

from typing import Iterable

from ..inference.empty_sets import NonEmptySpec
from ..inference.session import ImplicationSession
from ..nfd.nfd import NFD
from ..types.schema import Schema

__all__ = ["SigmaDiff", "diff_sigmas"]


class SigmaDiff:
    """The semantic difference between two constraint sets."""

    __slots__ = ("strengthened", "weakened", "carried", "equivalent")

    def __init__(self, strengthened: list[NFD], weakened: list[NFD],
                 carried: list[NFD]):
        self.strengthened = strengthened
        self.weakened = weakened
        self.carried = carried
        #: True when the two sets imply each other: a pure refactoring.
        self.equivalent = not strengthened and not weakened

    def to_text(self) -> str:
        if self.equivalent:
            return ("the two constraint sets are equivalent "
                    "(pure refactoring)")
        lines: list[str] = []
        if self.strengthened:
            lines.append("new requirements (existing data may violate "
                         "them):")
            lines.extend(f"  + {nfd}" for nfd in self.strengthened)
        if self.weakened:
            lines.append("dropped guarantees (consumers may rely on "
                         "them):")
            lines.extend(f"  - {nfd}" for nfd in self.weakened)
        if self.carried:
            lines.append("carried (implied by both sets):")
            lines.extend(f"    {nfd}" for nfd in self.carried)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"SigmaDiff(+{len(self.strengthened)} "
                f"-{len(self.weakened)} ={len(self.carried)})")


def diff_sigmas(schema: Schema, old: Iterable[NFD], new: Iterable[NFD],
                nonempty: NonEmptySpec | None = None, *,
                old_session: ImplicationSession | None = None,
                new_session: ImplicationSession | None = None) \
        -> SigmaDiff:
    """Classify the semantic difference between *old* and *new*.

    Each side queries its session twice per member (once for the
    strengthened/weakened scan, once for the carried scan), so the
    memoized sessions answer the second scan from cache.  Pass the
    sessions to read their statistics afterwards.
    """
    old_list = list(old)
    new_list = list(new)
    old_engine = old_session if old_session is not None \
        else ImplicationSession(schema, old_list, nonempty)
    new_engine = new_session if new_session is not None \
        else ImplicationSession(schema, new_list, nonempty)
    strengthened = [nfd for nfd in new_list
                    if not old_engine.implies(nfd)]
    weakened = [nfd for nfd in old_list
                if not new_engine.implies(nfd)]
    carried_candidates = {nfd for nfd in old_list + new_list}
    carried = sorted(
        nfd for nfd in carried_candidates
        if old_engine.implies(nfd) and new_engine.implies(nfd)
    )
    return SigmaDiff(strengthened, weakened, carried)
