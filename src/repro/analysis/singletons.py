"""Singleton-set and disjointness analyses (Section 2.1).

Two set-theoretic consequences of NFDs that the paper highlights:

* a set path ``x`` is forced to be a **singleton** when, for every
  attribute ``Ai`` of its elements, ``x`` determines ``x:Ai`` — then all
  elements agree on all attributes, so there is exactly one (the AceDB
  "maximally singleton" attributes);
* an NFD ``x0:[x1:x2 -> x1]`` forces any two values of ``x0:x1`` to be
  **equal or disjoint** — e.g. schools cannot share course numbers in the
  Courses example.
"""

from __future__ import annotations

from typing import Iterable

from ..inference.closure import ClosureEngine
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..paths.typing import resolve_base_path, set_paths, type_at
from ..types.base import SetType
from ..types.schema import Schema
from ..values.build import Instance
from ..values.navigate import iter_base_sets, iter_values
from ..values.value import SetValue

__all__ = [
    "implied_singletons",
    "is_implied_singleton",
    "implied_disjoint_or_equal",
    "check_disjoint_or_equal",
]


def is_implied_singleton(engine: ClosureEngine, base: Path,
                         set_path: Path) -> bool:
    """Is the set at ``base``-relative *set_path* forced to be a singleton?

    True when ``base:[set_path -> set_path:Ai]`` is implied for every
    attribute ``Ai`` — the premise pattern of the paper's singleton rule,
    which (absent empty sets) pins the set to exactly one element.
    """
    scope = resolve_base_path(engine.schema, base)
    path_type = type_at(scope, set_path)
    if not isinstance(path_type, SetType):
        return False
    closed = engine.closure(base, {set_path})
    return all(set_path.child(label) in closed
               for label in path_type.element.labels)


def implied_singletons(schema: Schema, sigma: Iterable[NFD],
                       relation: str,
                       engine: ClosureEngine | None = None) -> list[Path]:
    """All set paths of *relation* forced to be singletons by *sigma*.

    Paths are relative to the relation; the check uses the relation-name
    base, i.e. the sets are singletons in every element of the relation.
    """
    working = engine if engine is not None \
        else ClosureEngine(schema, list(sigma))
    base = Path((relation,))
    return [p for p in set_paths(schema, relation)
            if is_implied_singleton(working, base, p)]


def implied_disjoint_or_equal(engine: ClosureEngine, base: Path,
                              set_path: Path) -> bool:
    """Are two values of ``base:set_path`` forced to be equal or disjoint?

    Holds when ``base:[set_path:A -> set_path]`` is implied for some
    attribute ``A``: sharing one element then forces the whole sets to
    coincide (the ``x0:[x1:x2 -> x1]`` pattern of Section 2.1).
    """
    scope = resolve_base_path(engine.schema, base)
    path_type = type_at(scope, set_path)
    if not isinstance(path_type, SetType):
        return False
    return any(
        set_path in engine.closure(base, {set_path.child(label)})
        for label in path_type.element.labels
    )


def check_disjoint_or_equal(instance: Instance, base: Path,
                            set_path: Path) -> bool:
    """Empirically verify equal-or-disjoint on an instance.

    Collects every value of ``base:set_path`` and checks pairwise that
    intersecting sets are equal.  Used by tests to confirm the semantic
    reading of :func:`implied_disjoint_or_equal`.
    """
    observed: list[SetValue] = []
    for base_set in iter_base_sets(instance, base):
        for element in base_set:
            for value in iter_values(element, set_path):
                if isinstance(value, SetValue):
                    observed.append(value)
    for i, first in enumerate(observed):
        for second in observed[i + 1:]:
            if first == second:
                continue
            if first.elements & second.elements:
                return False
    return True
