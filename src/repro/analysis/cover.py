"""Minimal covers and redundancy for NFD sets.

The classical uses of an axiomatization (Section 1: database design,
dependency-preserving decompositions) start from a non-redundant cover.
This module lifts the standard constructions to NFDs:

* :func:`minimal_cover` — drop members implied by the rest, then shrink
  each LHS path set to a minimal one;
* :func:`is_redundant` / :func:`non_redundant` — member-wise redundancy;
* :func:`covers` — does one set imply another?

Every probe ("is this member implied by the others?", "does the set
still imply the member with a smaller LHS?") concerns a one-member
perturbation of the same Sigma, so the whole module runs on
:class:`~repro.inference.session.ImplicationSession` copy-on-write
probes: one compiled Sigma pool serves the entire minimal-cover
computation (the O(1)-engines property is asserted by
``tests/test_analysis_cover.py`` via
:func:`repro.inference.closure.pool_build_count`).
"""

from __future__ import annotations

from typing import Iterable

from ..inference.empty_sets import NonEmptySpec
from ..inference.session import ImplicationSession
from ..nfd.nfd import NFD
from ..types.schema import Schema

__all__ = ["covers", "is_redundant", "non_redundant", "minimal_cover"]

#: The saturation strategy self-built cover sessions use — the dense
#: bitset kernel, like the key sweeps (see ``analysis/keys.py``).  A
#: supplied session keeps its own strategy.
_COVER_STRATEGY = "dense"


def covers(schema: Schema, sigma: Iterable[NFD],
           others: Iterable[NFD],
           nonempty: NonEmptySpec | None = None, *,
           strategy: str | None = None) -> bool:
    """True iff *sigma* implies every member of *others* (answered as
    one subset-ordered closure batch)."""
    session = ImplicationSession(
        schema, list(sigma), nonempty,
        strategy=strategy if strategy is not None else _COVER_STRATEGY)
    return session.implies_all(others)


def is_redundant(schema: Schema, sigma: list[NFD], index: int,
                 nonempty: NonEmptySpec | None = None,
                 engine=None, *, strategy: str | None = None) -> bool:
    """Is ``sigma[index]`` implied by the other members?

    Pass the *engine* (a :class:`~repro.inference.closure.ClosureEngine`
    or :class:`ImplicationSession`) built over the full *sigma* when
    probing several members: each rest-probe then shares its compiled
    Sigma pool via ``without`` instead of rebuilding it each time.
    """
    if engine is None:
        engine = ImplicationSession(
            schema, list(sigma), nonempty,
            strategy=strategy if strategy is not None
            else _COVER_STRATEGY)
    return engine.without(index).implies(sigma[index])


def non_redundant(schema: Schema, sigma: Iterable[NFD],
                  nonempty: NonEmptySpec | None = None, *,
                  strategy: str | None = None,
                  session: ImplicationSession | None = None) -> list[NFD]:
    """A non-redundant subset equivalent to *sigma*.

    Greedy removal in order; the result depends on member order (all
    non-redundant covers of the same set are equivalent, not equal).
    Each probe session comes from :meth:`ImplicationSession.without`,
    and a successful removal keeps the probe as the new baseline, so
    the compiled Sigma pool is built at most once (zero times when a
    *session* over *sigma* is supplied).
    """
    remaining = list(sigma)
    if not remaining:
        return remaining
    if session is None:
        session = ImplicationSession(
            schema, remaining, nonempty,
            strategy=strategy if strategy is not None
            else _COVER_STRATEGY)
    tracer = session.tracer
    if tracer is not None:
        with tracer.span("analysis.non_redundant",
                         members=len(remaining)) as span:
            return _drop_redundant(remaining, session, span)
    return _drop_redundant(remaining, session, None)


def _drop_redundant(remaining: list[NFD],
                    session: ImplicationSession, span) -> list[NFD]:
    index = 0
    while index < len(remaining):
        probe = session.without(index)
        if probe.implies(remaining[index]):
            del remaining[index]
            session = probe
            if span is not None:
                span.add("dropped")
        else:
            index += 1
    return remaining


def _shrink_lhs(session: ImplicationSession, sigma: list[NFD],
                index: int) -> tuple[NFD, ImplicationSession]:
    """Minimize the LHS of ``sigma[index]`` keeping equivalence.

    A path is dropped when the strengthened NFD (smaller LHS) is still
    implied by the *current* whole set; strengthening never weakens the
    set, so equivalence is preserved.  Each accepted shrink swaps the
    member in place via a copy-on-write :meth:`ImplicationSession.replaced`
    probe — Sigma order is preserved and nothing is recompiled, where
    this loop used to construct a fresh engine per candidate
    (O(|Sigma| * |LHS|) engines for the whole cover).

    Note the candidate must be tested against the *current* Sigma (with
    the member already shrunk in place), not the original one: under the
    gated Section 3.2 semantics derivability is not closed under cutting
    a just-proven member back in — the nested-base pull-out gate can
    reject an LHS augmented with a path that is not always defined — so
    the two baselines can genuinely differ.
    """
    current = sigma[index]
    for path in sorted(current.lhs, reverse=True):
        if path not in current.lhs:  # pragma: no cover - defensive
            continue
        candidate = current.with_lhs(current.lhs - {path})
        if session.implies(candidate):
            current = candidate
            sigma[index] = current
            session = session.replaced(index, current)
    return current, session


def minimal_cover(schema: Schema, sigma: Iterable[NFD],
                  nonempty: NonEmptySpec | None = None, *,
                  strategy: str | None = None,
                  session: ImplicationSession | None = None) -> list[NFD]:
    """A minimal cover: shrunken LHSs, then no redundant members.

    The result is equivalent to *sigma* (tests verify via
    :func:`repro.inference.implication.equivalent_sets`) and no member
    can be removed or have its LHS shrunk further.  The whole
    computation — every shrink probe and every redundancy probe — runs
    against one compiled Sigma pool through copy-on-write sessions.
    """
    working = list(sigma)
    if session is None:
        session = ImplicationSession(
            schema, working, nonempty,
            strategy=strategy if strategy is not None
            else _COVER_STRATEGY)
    tracer = session.tracer
    if tracer is None:
        for index in range(len(working)):
            working[index], session = _shrink_lhs(session, working, index)
        return non_redundant(schema, working, nonempty, session=session)
    with tracer.span("analysis.cover", members=len(working)) as span:
        for index in range(len(working)):
            before = len(working[index].lhs)
            working[index], session = _shrink_lhs(session, working, index)
            span.add("lhs_dropped", before - len(working[index].lhs))
        return non_redundant(schema, working, nonempty, session=session)
