"""Minimal covers and redundancy for NFD sets.

The classical uses of an axiomatization (Section 1: database design,
dependency-preserving decompositions) start from a non-redundant cover.
This module lifts the standard constructions to NFDs:

* :func:`minimal_cover` — drop members implied by the rest, then shrink
  each LHS path set to a minimal one;
* :func:`is_redundant` / :func:`non_redundant` — member-wise redundancy;
* :func:`covers` — does one set imply another?
"""

from __future__ import annotations

from typing import Iterable

from ..inference.closure import ClosureEngine
from ..inference.empty_sets import NonEmptySpec
from ..nfd.nfd import NFD
from ..types.schema import Schema

__all__ = ["covers", "is_redundant", "non_redundant", "minimal_cover"]


def covers(schema: Schema, sigma: Iterable[NFD],
           others: Iterable[NFD],
           nonempty: NonEmptySpec | None = None) -> bool:
    """True iff *sigma* implies every member of *others*."""
    engine = ClosureEngine(schema, list(sigma), nonempty)
    return engine.implies_all(others)


def is_redundant(schema: Schema, sigma: list[NFD], index: int,
                 nonempty: NonEmptySpec | None = None,
                 engine: ClosureEngine | None = None) -> bool:
    """Is ``sigma[index]`` implied by the other members?

    Pass the *engine* built over the full *sigma* when probing several
    members: the rest-engine then shares its schema precomputation via
    :meth:`ClosureEngine.without` instead of rebuilding it each time.
    """
    if engine is None:
        engine = ClosureEngine(schema, list(sigma), nonempty)
    return engine.without(index).implies(sigma[index])


def non_redundant(schema: Schema, sigma: Iterable[NFD],
                  nonempty: NonEmptySpec | None = None) -> list[NFD]:
    """A non-redundant subset equivalent to *sigma*.

    Greedy removal in order; the result depends on member order (all
    non-redundant covers of the same set are equivalent, not equal).
    Each probe engine comes from :meth:`ClosureEngine.without`, and a
    successful removal keeps the probe engine as the new baseline, so
    the schema precomputation is built exactly once.
    """
    remaining = list(sigma)
    if not remaining:
        return remaining
    engine = ClosureEngine(schema, remaining, nonempty)
    index = 0
    while index < len(remaining):
        probe = engine.without(index)
        if probe.implies(remaining[index]):
            del remaining[index]
            engine = probe
        else:
            index += 1
    return remaining


def _shrink_lhs(schema: Schema, sigma: list[NFD], index: int,
                nonempty: NonEmptySpec | None) -> NFD:
    """Minimize the LHS of ``sigma[index]`` keeping equivalence.

    A path is dropped when the strengthened NFD (smaller LHS) is still
    implied by the *current* whole set; strengthening never weakens the
    set, so equivalence is preserved.
    """
    current = sigma[index]
    for path in sorted(current.lhs, reverse=True):
        candidate = current.with_lhs(current.lhs - {path})
        engine = ClosureEngine(schema, sigma, nonempty)
        if engine.implies(candidate):
            current = candidate
            sigma = sigma[:index] + [current] + sigma[index + 1:]
    return current


def minimal_cover(schema: Schema, sigma: Iterable[NFD],
                  nonempty: NonEmptySpec | None = None) -> list[NFD]:
    """A minimal cover: shrunken LHSs, then no redundant members.

    The result is equivalent to *sigma* (tests verify via
    :func:`repro.inference.implication.equivalent_sets`) and no member
    can be removed or have its LHS shrunk further.
    """
    working = list(sigma)
    for index in range(len(working)):
        working[index] = _shrink_lhs(schema, working, index, nonempty)
    return non_redundant(schema, working, nonempty)
