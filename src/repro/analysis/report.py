"""Constraint-set analysis reports.

One call summarizes everything the library can derive about a
``(schema, Sigma)`` pair: per-relation minimal keys, implied singleton
sets, equal-or-disjoint sets, trivial and redundant members, and a
minimal cover.  Backing for the CLI's ``analyze`` command and a handy
overview for humans adopting a constraint set.
"""

from __future__ import annotations

from typing import Iterable

from ..inference.empty_sets import NonEmptySpec
from ..inference.session import ImplicationSession
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..paths.typing import set_paths
from ..types.schema import Schema
from .cover import non_redundant
from .keys import minimal_keys
from .singletons import implied_disjoint_or_equal, implied_singletons

__all__ = ["ConstraintReport", "analyze_constraints"]


class ConstraintReport:
    """The findings for one schema + NFD set."""

    __slots__ = ("schema", "sigma", "keys", "singletons",
                 "disjoint_or_equal", "trivial", "redundant", "cover")

    def __init__(self, schema: Schema, sigma: list[NFD],
                 keys: dict[str, list[frozenset[Path]]],
                 singletons: dict[str, list[Path]],
                 disjoint_or_equal: dict[str, list[Path]],
                 trivial: list[NFD], redundant: list[NFD],
                 cover: list[NFD]):
        self.schema = schema
        self.sigma = sigma
        self.keys = keys
        self.singletons = singletons
        self.disjoint_or_equal = disjoint_or_equal
        self.trivial = trivial
        self.redundant = redundant
        self.cover = cover

    def to_text(self) -> str:
        lines: list[str] = []
        lines.append(f"constraints: {len(self.sigma)}")
        for relation in self.schema.relation_names:
            lines.append(f"relation {relation}:")
            keys = self.keys.get(relation, [])
            if keys:
                rendered = ", ".join(
                    "{" + ", ".join(sorted(map(str, key))) + "}"
                    for key in keys
                )
                lines.append(f"  minimal keys: {rendered}")
            else:
                lines.append("  minimal keys: none among top-level "
                             "attributes")
            singles = self.singletons.get(relation, [])
            if singles:
                lines.append(
                    "  singleton sets: " +
                    ", ".join(str(p) for p in singles))
            disjoint = self.disjoint_or_equal.get(relation, [])
            if disjoint:
                lines.append(
                    "  equal-or-disjoint sets: " +
                    ", ".join(str(p) for p in disjoint))
        if self.trivial:
            lines.append("trivial members:")
            lines.extend(f"  {nfd}" for nfd in self.trivial)
        if self.redundant:
            lines.append("redundant members (implied by the others):")
            lines.extend(f"  {nfd}" for nfd in self.redundant)
        lines.append(f"minimal cover ({len(self.cover)} of "
                     f"{len(self.sigma)}):")
        lines.extend(f"  {nfd}" for nfd in self.cover)
        return "\n".join(lines)


def analyze_constraints(schema: Schema, sigma: Iterable[NFD],
                        nonempty: NonEmptySpec | None = None, *,
                        strategy: str = "worklist",
                        session: ImplicationSession | None = None) \
        -> ConstraintReport:
    """Run every analysis over the constraint set; see
    :class:`ConstraintReport`.

    All sub-analyses share one :class:`ImplicationSession` (pass
    *session* to reuse an existing one and read its statistics
    afterwards): the key sweeps, singleton probes, redundancy scan, and
    cover all draw on the same memoized closures and compiled pool.
    *strategy* selects the self-built session's saturation strategy; a
    supplied *session* keeps its own.
    """
    sigma_list = list(sigma)
    if session is None:
        session = ImplicationSession(schema, sigma_list, nonempty,
                                     strategy=strategy)

    keys: dict[str, list[frozenset[Path]]] = {}
    singletons: dict[str, list[Path]] = {}
    disjoint: dict[str, list[Path]] = {}
    for relation in schema.relation_names:
        keys[relation] = minimal_keys(schema, sigma_list, relation,
                                      engine=session)
        singletons[relation] = implied_singletons(
            schema, sigma_list, relation, engine=session)
        base = Path((relation,))
        disjoint[relation] = [
            p for p in set_paths(schema, relation)
            if implied_disjoint_or_equal(session, base, p)
        ]

    trivial = [nfd for nfd in sigma_list if nfd.is_trivial()]
    redundant = [
        sigma_list[index]
        for index in range(len(sigma_list))
        if session.without(index).implies(sigma_list[index])
    ]
    cover = non_redundant(schema, sigma_list, nonempty, session=session)
    return ConstraintReport(schema, sigma_list, keys, singletons,
                            disjoint, trivial, redundant, cover)
