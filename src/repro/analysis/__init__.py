"""Analyses built on the inference engine."""

from .carryover import (
    fd_after_unnest,
    fds_after_nest,
    nfd_after_nest,
    nfds_after_unnest,
)
from .cover import covers, is_redundant, minimal_cover, non_redundant
from .diff import SigmaDiff, diff_sigmas
from .keys import is_key, key_nfds, local_minimal_keys, minimal_keys
from .migration import MigrationReport, migrate_sigma, schema_changes
from .report import ConstraintReport, analyze_constraints
from .singletons import (
    check_disjoint_or_equal,
    implied_disjoint_or_equal,
    implied_singletons,
    is_implied_singleton,
)

__all__ = [
    "minimal_keys",
    "ConstraintReport",
    "analyze_constraints",
    "SigmaDiff",
    "diff_sigmas",
    "MigrationReport",
    "migrate_sigma",
    "schema_changes",
    "local_minimal_keys",
    "is_key",
    "key_nfds",
    "implied_singletons",
    "is_implied_singleton",
    "implied_disjoint_or_equal",
    "check_disjoint_or_equal",
    "covers",
    "is_redundant",
    "non_redundant",
    "minimal_cover",
    "nfd_after_nest",
    "fds_after_nest",
    "fd_after_unnest",
    "nfds_after_unnest",
]
