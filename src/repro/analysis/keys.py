"""Key discovery for nested relations.

The introduction's first constraint ("cnum is a key") is the conjunction
of one NFD per sibling attribute.  This module finds minimal keys — both
at the top level of a relation and locally inside any set-valued path —
by querying the closure engine, and offers the converse construction:
the NFDs declaring a chosen key.

The combination sweep is the library's heaviest query stream: adjacent
combinations share most of their members, so by default it runs through
an :class:`~repro.inference.session.ImplicationSession` (cross-query
memoization plus subset-closure seeding).  With ``jobs > 1`` each
size-level of the sweep fans out across worker processes via
:func:`repro.parallel.process_map`; results are deterministic because
same-size candidates can never prune one another (a key can only prune
strictly larger candidates), so the parallel sweep answers exactly the
serial questions, in order.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..inference.closure import ClosureEngine
from ..inference.empty_sets import NonEmptySpec
from ..inference.session import ImplicationSession
from ..nfd.nfd import NFD
from ..paths.path import Path, parse_path
from ..paths.typing import resolve_base_path
from ..types.schema import Schema

__all__ = ["minimal_keys", "is_key", "key_nfds", "local_minimal_keys"]


def key_nfds(base: Path, key: Iterable[Path],
             scope_labels: Iterable[str]) -> list[NFD]:
    """The NFDs asserting that *key* is a key at *base*.

    One NFD per attribute of the scope: ``base:[key -> attribute]``.
    Attributes inside the key are skipped (they are trivial).
    """
    key_set = frozenset(key)
    result = []
    for label in scope_labels:
        rhs = Path((label,))
        if rhs in key_set:
            continue
        result.append(NFD(base, key_set, rhs))
    return result


def is_key(engine, base: Path, candidate: Iterable[Path]) -> bool:
    """Does *candidate* determine every top-level attribute at *base*?

    Determining all top-level attributes pins the whole element: deeper
    paths are reached through their top-level set, which is itself
    determined.  *engine* is a :class:`ClosureEngine` or an
    :class:`ImplicationSession` (anything with ``schema``/``closure``).
    """
    scope = resolve_base_path(engine.schema, base)
    closed = engine.closure(base, candidate)
    return all(Path((label,)) in closed for label in scope.labels)


def minimal_keys(schema: Schema, sigma: Iterable[NFD], relation: str,
                 engine=None, *, nonempty: NonEmptySpec | None = None,
                 jobs: int = 1,
                 cache_dir: str | None = None) -> list[frozenset[Path]]:
    """All minimal keys of *relation* over its top-level attributes.

    Exponential in attribute count (key discovery is NP-hard in general);
    practical for the schema sizes of the paper's setting.  *nonempty*
    selects the gated (Section 3.2) semantics; *jobs* fans the sweep out
    across processes, and *cache_dir* (parallel sweeps only — a shared
    *engine* carries its own store) lets each worker answer from the
    persistent closure memo, opened read-only once per process.
    """
    return local_minimal_keys(schema, sigma, Path((relation,)), engine,
                              nonempty=nonempty, jobs=jobs,
                              cache_dir=cache_dir)


def _keys_setup(payload):
    """Worker initializer: rebuild the session from pickle-safe texts,
    and pre-open the persistent cache store — read-only, once per
    process — so every probe in this worker answers warm closure
    queries from the memo instead of saturating."""
    from ..io.json_io import load_bundle
    from ..parallel import spec_from_payload

    bundle_text, spec_data, base_text, cache_dir = payload
    schema, sigma, _ = load_bundle(bundle_text)
    store = None
    if cache_dir is not None:
        from ..store.cache_store import CacheStore
        store = CacheStore(cache_dir, read_only=True)
    session = ImplicationSession(schema, sigma,
                                 spec_from_payload(spec_data),
                                 store=store)
    return session, parse_path(base_text)


def _keys_probe(context, candidate_texts: tuple[str, ...]) -> bool:
    """Worker task: one is_key query against the per-process session."""
    session, base = context
    candidate = frozenset(parse_path(text) for text in candidate_texts)
    return is_key(session, base, candidate)


def local_minimal_keys(schema: Schema, sigma: Iterable[NFD], base: Path,
                       engine=None, *,
                       nonempty: NonEmptySpec | None = None,
                       jobs: int = 1,
                       cache_dir: str | None = None) \
        -> list[frozenset[Path]]:
    """Minimal keys at an arbitrary base path (local keys).

    For ``base = Course:students`` this answers "which attribute sets
    identify a student within one course" — e.g. ``{sid}`` under the
    constraint of Example 2.3.

    When *engine* is given (a :class:`ClosureEngine` or
    :class:`ImplicationSession`) its Sigma and nonempty spec are
    authoritative; otherwise a session over ``(schema, sigma,
    nonempty)`` is built.  With ``jobs > 1`` and no shared engine, each
    size-level of the sweep is answered by worker processes (one
    session per process, results in candidate order).
    """
    sigma_list = list(sigma)
    working = engine if engine is not None \
        else ImplicationSession(schema, sigma_list, nonempty)
    scope = resolve_base_path(schema, base)
    attributes = [Path((label,)) for label in scope.labels]
    parallel = jobs > 1 and engine is None
    if parallel:
        from ..io.json_io import dump_bundle
        from ..parallel import process_map, spec_payload

        payload = (dump_bundle(schema, sigma_list),
                   spec_payload(nonempty), str(base), cache_dir)
    else:
        payload = None
    tracer = getattr(working, "tracer", None)
    if tracer is not None:
        with tracer.span("analysis.keys", base=str(base),
                         attributes=len(attributes), jobs=jobs) as span:
            return _sweep(working, base, attributes, parallel, payload,
                          jobs, span)
    return _sweep(working, base, attributes, parallel, payload, jobs,
                  None)


def _sweep(working, base, attributes, parallel, payload, jobs, span):
    if parallel:
        from ..parallel import process_map
    keys: list[frozenset[Path]] = []
    for size in range(1, len(attributes) + 1):
        candidates = [
            frozenset(combo)
            for combo in combinations(attributes, size)
            if not any(key <= frozenset(combo) for key in keys)
        ]
        if not candidates:
            continue
        if span is not None:
            span.add("candidates", len(candidates))
        if parallel:
            texts = [tuple(str(p) for p in sorted(candidate))
                     for candidate in candidates]
            verdicts = process_map(_keys_setup, payload, _keys_probe,
                                   texts, jobs)
        else:
            verdicts = [is_key(working, base, candidate)
                        for candidate in candidates]
        for candidate, verdict in zip(candidates, verdicts):
            if verdict:
                keys.append(candidate)
                if span is not None:
                    span.add("keys")
    return sorted(keys, key=lambda key: (len(key), sorted(map(str, key))))
