"""Key discovery for nested relations.

The introduction's first constraint ("cnum is a key") is the conjunction
of one NFD per sibling attribute.  This module finds minimal keys — both
at the top level of a relation and locally inside any set-valued path —
by querying the closure engine, and offers the converse construction:
the NFDs declaring a chosen key.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..inference.closure import ClosureEngine
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..paths.typing import resolve_base_path
from ..types.schema import Schema

__all__ = ["minimal_keys", "is_key", "key_nfds", "local_minimal_keys"]


def key_nfds(base: Path, key: Iterable[Path],
             scope_labels: Iterable[str]) -> list[NFD]:
    """The NFDs asserting that *key* is a key at *base*.

    One NFD per attribute of the scope: ``base:[key -> attribute]``.
    Attributes inside the key are skipped (they are trivial).
    """
    key_set = frozenset(key)
    result = []
    for label in scope_labels:
        rhs = Path((label,))
        if rhs in key_set:
            continue
        result.append(NFD(base, key_set, rhs))
    return result


def is_key(engine: ClosureEngine, base: Path,
           candidate: Iterable[Path]) -> bool:
    """Does *candidate* determine every top-level attribute at *base*?

    Determining all top-level attributes pins the whole element: deeper
    paths are reached through their top-level set, which is itself
    determined.
    """
    scope = resolve_base_path(engine.schema, base)
    closed = engine.closure(base, candidate)
    return all(Path((label,)) in closed for label in scope.labels)


def minimal_keys(schema: Schema, sigma: Iterable[NFD], relation: str,
                 engine: ClosureEngine | None = None) \
        -> list[frozenset[Path]]:
    """All minimal keys of *relation* over its top-level attributes.

    Exponential in attribute count (key discovery is NP-hard in general);
    practical for the schema sizes of the paper's setting.
    """
    return local_minimal_keys(schema, sigma, Path((relation,)), engine)


def local_minimal_keys(schema: Schema, sigma: Iterable[NFD], base: Path,
                       engine: ClosureEngine | None = None) \
        -> list[frozenset[Path]]:
    """Minimal keys at an arbitrary base path (local keys).

    For ``base = Course:students`` this answers "which attribute sets
    identify a student within one course" — e.g. ``{sid}`` under the
    constraint of Example 2.3.
    """
    working = engine if engine is not None \
        else ClosureEngine(schema, list(sigma))
    scope = resolve_base_path(schema, base)
    attributes = [Path((label,)) for label in scope.labels]
    keys: list[frozenset[Path]] = []
    for size in range(1, len(attributes) + 1):
        for combo in combinations(attributes, size):
            candidate = frozenset(combo)
            if any(key <= candidate for key in keys):
                continue
            if is_key(working, base, candidate):
                keys.append(candidate)
    return sorted(keys, key=lambda key: (len(key), sorted(map(str, key))))
