"""Key discovery for nested relations.

The introduction's first constraint ("cnum is a key") is the conjunction
of one NFD per sibling attribute.  This module finds minimal keys — both
at the top level of a relation and locally inside any set-valued path —
by querying the closure engine, and offers the converse construction:
the NFDs declaring a chosen key.

The combination sweep is the library's heaviest query stream: adjacent
combinations share most of their members, so by default it runs through
an :class:`~repro.inference.session.ImplicationSession` (cross-query
memoization plus subset-closure seeding).  With ``jobs > 1`` each
size-level of the sweep fans out across worker processes via
:func:`repro.parallel.process_map`; results are deterministic because
same-size candidates can never prune one another (a key can only prune
strictly larger candidates), so the parallel sweep answers exactly the
serial questions, in order.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..inference.closure import ClosureEngine
from ..inference.empty_sets import NonEmptySpec
from ..inference.session import ImplicationSession
from ..nfd.nfd import NFD
from ..paths.path import Path, parse_path
from ..paths.typing import resolve_base_path
from ..types.schema import Schema

__all__ = ["minimal_keys", "is_key", "key_nfds", "local_minimal_keys"]

#: The saturation strategy self-built sweep sessions use.  The dense
#: bitset kernel wins on every sweep-shaped stream (see
#: ``benchmarks/bench_closure_kernel.py``); pass ``strategy=`` to
#: override, or hand in an *engine* whose strategy is authoritative.
_SWEEP_STRATEGY = "dense"


def _closure_batch(working, queries):
    """Answer a batch of closure queries through the best API *working*
    offers: :meth:`ImplicationSession.closure_batch`, then
    :meth:`ClosureEngine.closure_many` (both subset-ordered and
    seed-sharing), then a plain per-query loop."""
    batch = getattr(working, "closure_batch", None) \
        or getattr(working, "closure_many", None)
    if batch is not None:
        return batch(queries)
    return [working.closure(base, lhs) for base, lhs in queries]


def _verdict_batch(working, base, candidates, labels):
    """One is-key verdict per candidate, through the best API *working*
    offers.  ``covers_batch``/``covers_many`` let a dense engine answer
    from saturated masks without materializing any closure; otherwise
    the closures are fetched batch-wise and membership-tested here."""
    targets = [Path((label,)) for label in labels]
    covers = getattr(working, "covers_batch", None) \
        or getattr(working, "covers_many", None)
    if covers is not None:
        return covers(base, candidates, targets)
    closures = _closure_batch(
        working, [(base, candidate) for candidate in candidates])
    return [all(target in closed for target in targets)
            for closed in closures]


def key_nfds(base: Path, key: Iterable[Path],
             scope_labels: Iterable[str]) -> list[NFD]:
    """The NFDs asserting that *key* is a key at *base*.

    One NFD per attribute of the scope: ``base:[key -> attribute]``.
    Attributes inside the key are skipped (they are trivial).
    """
    key_set = frozenset(key)
    result = []
    for label in scope_labels:
        rhs = Path((label,))
        if rhs in key_set:
            continue
        result.append(NFD(base, key_set, rhs))
    return result


def is_key(engine, base: Path, candidate: Iterable[Path]) -> bool:
    """Does *candidate* determine every top-level attribute at *base*?

    Determining all top-level attributes pins the whole element: deeper
    paths are reached through their top-level set, which is itself
    determined.  *engine* is a :class:`ClosureEngine` or an
    :class:`ImplicationSession` (anything with ``schema``/``closure``).
    """
    scope = resolve_base_path(engine.schema, base)
    closed = engine.closure(base, candidate)
    return all(Path((label,)) in closed for label in scope.labels)


def minimal_keys(schema: Schema, sigma: Iterable[NFD], relation: str,
                 engine=None, *, nonempty: NonEmptySpec | None = None,
                 jobs: int = 1, strategy: str | None = None,
                 cache_dir: str | None = None) -> list[frozenset[Path]]:
    """All minimal keys of *relation* over its top-level attributes.

    Exponential in attribute count (key discovery is NP-hard in general);
    practical for the schema sizes of the paper's setting.  *nonempty*
    selects the gated (Section 3.2) semantics; *jobs* fans the sweep out
    across processes, and *cache_dir* (parallel sweeps only — a shared
    *engine* carries its own store) lets each worker answer from the
    persistent closure memo, opened read-only once per process.
    *strategy* picks the saturation strategy of self-built sessions
    (default: the dense bitset kernel); a supplied *engine* keeps its
    own.
    """
    return local_minimal_keys(schema, sigma, Path((relation,)), engine,
                              nonempty=nonempty, jobs=jobs,
                              strategy=strategy, cache_dir=cache_dir)


def _keys_setup(payload):
    """Worker initializer: rebuild the session from pickle-safe texts,
    and pre-open the persistent cache store — read-only, once per
    process — so every probe in this worker answers warm closure
    queries from the memo instead of saturating.  Dense sweeps ship
    the driver's compiled :class:`~repro.inference.dense.DenseTables`
    in the payload, so workers adopt them instead of recompiling the
    interned universe per process."""
    from ..inference.closure import ClosureEngine
    from ..io.json_io import load_bundle
    from ..parallel import spec_from_payload

    (bundle_text, spec_data, base_text, cache_dir, strategy,
     dense_tables) = payload
    schema, sigma, _ = load_bundle(bundle_text)
    store = None
    if cache_dir is not None:
        from ..store.cache_store import CacheStore
        store = CacheStore(cache_dir, read_only=True)
    engine = ClosureEngine(schema, sigma, spec_from_payload(spec_data),
                           strategy=strategy)
    if dense_tables is not None:
        engine._pool.adopt_dense(dense_tables.relation, dense_tables)
    session = ImplicationSession(schema, sigma, store=store,
                                 _engine=engine)
    return session, parse_path(base_text)


def _keys_probe(context, candidate_texts: tuple[str, ...]) -> bool:
    """Worker task: one is_key query against the per-process session."""
    session, base = context
    candidate = frozenset(parse_path(text) for text in candidate_texts)
    return is_key(session, base, candidate)


def local_minimal_keys(schema: Schema, sigma: Iterable[NFD], base: Path,
                       engine=None, *,
                       nonempty: NonEmptySpec | None = None,
                       jobs: int = 1, strategy: str | None = None,
                       cache_dir: str | None = None) \
        -> list[frozenset[Path]]:
    """Minimal keys at an arbitrary base path (local keys).

    For ``base = Course:students`` this answers "which attribute sets
    identify a student within one course" — e.g. ``{sid}`` under the
    constraint of Example 2.3.

    When *engine* is given (a :class:`ClosureEngine` or
    :class:`ImplicationSession`) its Sigma, nonempty spec, and
    saturation strategy are authoritative; otherwise a session over
    ``(schema, sigma, nonempty)`` is built with *strategy* (default:
    the dense kernel).  Each size-level of the sweep is answered as one
    batch-closure call, so neighbouring candidates share their subset
    closures; with ``jobs > 1`` and no shared engine the level fans out
    across worker processes instead (one session per process, shipped
    the driver's compiled dense tables, results in candidate order).
    """
    sigma_list = list(sigma)
    effective = strategy if strategy is not None else _SWEEP_STRATEGY
    working = engine if engine is not None \
        else ImplicationSession(schema, sigma_list, nonempty,
                                strategy=effective)
    scope = resolve_base_path(schema, base)
    attributes = [Path((label,)) for label in scope.labels]
    parallel = jobs > 1 and engine is None
    if parallel:
        from ..io.json_io import dump_bundle
        from ..parallel import process_map, spec_payload

        dense_tables = None
        if effective == "dense":
            dense_tables = working.engine._pool.dense(base.first)
        payload = (dump_bundle(schema, sigma_list),
                   spec_payload(nonempty), str(base), cache_dir,
                   effective, dense_tables)
    else:
        payload = None
    tracer = getattr(working, "tracer", None)
    if tracer is not None:
        with tracer.span("analysis.keys", base=str(base),
                         attributes=len(attributes), jobs=jobs) as span:
            return _sweep(working, base, scope.labels, attributes,
                          parallel, payload, jobs, span)
    return _sweep(working, base, scope.labels, attributes, parallel,
                  payload, jobs, None)


def _sweep(working, base, labels, attributes, parallel, payload, jobs,
           span):
    if parallel:
        from ..parallel import process_map
    keys: list[frozenset[Path]] = []
    for size in range(1, len(attributes) + 1):
        candidates = [
            frozenset(combo)
            for combo in combinations(attributes, size)
            if not any(key <= frozenset(combo) for key in keys)
        ]
        if not candidates:
            continue
        if span is not None:
            span.add("candidates", len(candidates))
        if parallel:
            texts = [tuple(str(p) for p in sorted(candidate))
                     for candidate in candidates]
            verdicts = process_map(_keys_setup, payload, _keys_probe,
                                   texts, jobs)
        else:
            verdicts = _verdict_batch(working, base, candidates, labels)
        for candidate, verdict in zip(candidates, verdicts):
            if verdict:
                keys.append(candidate)
                if span is not None:
                    span.add("keys")
    return sorted(keys, key=lambda key: (len(key), sorted(map(str, key))))
