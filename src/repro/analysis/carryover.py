"""FD carryover under nest and unnest (Section 4 / Fischer et al.).

Fischer, Saxton, Thomas and Van Gucht studied when nesting a normalized
relation preserves or destroys functional dependencies.  NFDs subsume
their setting: a flat FD translates into an NFD over the nested schema by
rewriting each attribute into its new path, and the translation is
*exact* — the nested instance satisfies the NFD iff the flat one
satisfied the FD (modulo the tuples lost when an unnested set was empty,
which cannot happen coming from a nest).

The module provides the two translations plus empirical checkers used by
tests and the carryover example.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import InferenceError
from ..inference.armstrong import FD
from ..nfd.nfd import NFD
from ..paths.path import Path

__all__ = [
    "nfd_after_nest",
    "fds_after_nest",
    "fd_after_unnest",
    "nfds_after_unnest",
    "nfd_through_unnest",
    "sigma_through_unnest",
]


def nfd_after_nest(relation: str, fd: FD, nested_labels: Iterable[str],
                   new_label: str) -> NFD:
    """Translate a flat FD into the NFD it becomes after nesting.

    Attributes moved into the new set attribute *new_label* are reached
    through it (``a`` becomes ``new_label:a``); grouping attributes stay
    top-level.  The shared-prefix semantics of NFDs makes the translation
    exact: both sides of the comparison bind one element of the new set
    and read all nested attributes from it, which is precisely a row of
    the original relation.
    """
    nested = frozenset(nested_labels)

    def rewrite(attribute: str) -> Path:
        if attribute in nested:
            return Path((new_label, attribute))
        return Path((attribute,))

    return NFD(
        Path((relation,)),
        {rewrite(attribute) for attribute in fd.lhs},
        rewrite(fd.rhs),
    )


def fds_after_nest(relation: str, fds: Iterable[FD],
                   nested_labels: Iterable[str],
                   new_label: str) -> list[NFD]:
    """Translate a whole FD set; see :func:`nfd_after_nest`."""
    nested = tuple(nested_labels)
    return [nfd_after_nest(relation, fd, nested, new_label) for fd in fds]


def fd_after_unnest(nfd: NFD, nested_label: str) -> FD:
    """Translate an NFD into the FD it becomes after unnesting.

    Only NFDs whose paths are top-level attributes or single steps into
    the unnested set translate; in particular an NFD mentioning the set
    itself (``... -> N``) has no flat counterpart because the set ceases
    to exist.

    :raises InferenceError: when the NFD does not translate.
    """
    if not nfd.is_simple:
        raise InferenceError(
            f"{nfd}: only relation-based NFDs translate under unnest; "
            "normalize with to_simple first"
        )

    def rewrite(path: Path) -> str:
        if len(path) == 1:
            if path.first == nested_label:
                raise InferenceError(
                    f"{nfd}: the set attribute {nested_label!r} itself "
                    "does not survive unnesting"
                )
            return path.first
        if len(path) == 2 and path.first == nested_label:
            return path.last
        raise InferenceError(
            f"{nfd}: path {path} is too deep to survive a single unnest"
        )

    return FD({rewrite(path) for path in nfd.lhs}, rewrite(nfd.rhs))


def nfd_through_unnest(nfd: NFD, nested_label: str) -> NFD | None:
    """Rewrite *nfd* onto the schema after unnesting *nested_label*,
    staying in NFD form (unlike :func:`fd_after_unnest`, deep paths are
    allowed), or ``None`` when it does not survive.

    Surviving rules: a path headed by the vanished set attribute loses
    that head (its suffix surfaces one level up); a path *equal to* the
    set attribute has no counterpart, so the NFD drops; an NFD whose
    base descends through the vanished set loses its per-set scope, so
    it drops too.  Bases and paths not touching *nested_label* are
    unchanged (labels are globally unique, so no other subtree can
    mention it).  Used by the normalization pipeline to flatten a
    nested Sigma step by step (see :mod:`repro.design.synthesize`).
    """
    if nested_label in nfd.base.tail.labels:
        return None

    def rewrite(path: Path) -> Path | None:
        if path.first != nested_label:
            return path
        if len(path) == 1:
            return None
        return path.tail

    rhs = rewrite(nfd.rhs)
    if rhs is None:
        return None
    lhs: set[Path] = set()
    for path in nfd.lhs:
        rewritten = rewrite(path)
        if rewritten is None:
            # dropping an LHS path would strengthen the dependency;
            # the NFD has no faithful flat counterpart
            return None
        lhs.add(rewritten)
    return NFD(nfd.base, lhs, rhs)


def sigma_through_unnest(nfds: Iterable[NFD], nested_label: str) \
        -> list[NFD]:
    """Rewrite a whole Sigma through one unnest, dropping casualties."""
    result = []
    for nfd in nfds:
        survivor = nfd_through_unnest(nfd, nested_label)
        if survivor is not None:
            result.append(survivor)
    return result


def nfds_after_unnest(nfds: Iterable[NFD], nested_label: str) \
        -> list[FD]:
    """Translate the NFDs that survive; silently drop the rest.

    The dropped dependencies are exactly the information unnesting
    forgets (e.g. which rows were grouped together) — the paper's
    Section 4 discussion.
    """
    result: list[FD] = []
    for nfd in nfds:
        try:
            result.append(fd_after_unnest(nfd, nested_label))
        except InferenceError:
            continue
    return result
