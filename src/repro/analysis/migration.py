"""Schema migration: which constraints survive a schema change?

When a nested schema evolves — attributes added, removed, retyped, or
moved between nesting levels — some NFDs stop being well-formed.  This
module classifies a constraint set against the new schema and explains
each casualty, so a migration can be reviewed constraint by constraint
instead of failing at engine-construction time.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import NFDError
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..paths.typing import relation_paths
from ..types.schema import Schema

__all__ = ["MigrationReport", "migrate_sigma", "schema_changes"]


def schema_changes(old: Schema, new: Schema) -> dict[str, list[str]]:
    """A structural summary: added/removed relations and paths.

    Paths are reported absolutely (``R:students:sid``); a retyped path
    appears under both ``removed_paths`` and ``added_paths`` only when
    its position vanished, not for base-type changes (which keep NFDs
    well-formed).
    """
    old_relations = set(old.relation_names)
    new_relations = set(new.relation_names)

    def all_paths(schema: Schema) -> set[Path]:
        found: set[Path] = set()
        for relation in schema.relation_names:
            for p in relation_paths(schema, relation):
                found.add(Path((relation,)).concat(p))
        return found

    old_paths = all_paths(old)
    new_paths = all_paths(new)
    return {
        "added_relations": sorted(new_relations - old_relations),
        "removed_relations": sorted(old_relations - new_relations),
        "added_paths": sorted(str(p) for p in new_paths - old_paths),
        "removed_paths": sorted(str(p) for p in old_paths - new_paths),
    }


class MigrationReport:
    """Constraints partitioned by survival under the new schema."""

    __slots__ = ("kept", "broken", "changes")

    def __init__(self, kept: list[NFD], broken: list[tuple[NFD, str]],
                 changes: dict[str, list[str]]):
        self.kept = kept
        #: ``(nfd, reason)`` pairs for constraints the new schema
        #: cannot express.
        self.broken = broken
        self.changes = changes

    @property
    def clean(self) -> bool:
        return not self.broken

    def to_text(self) -> str:
        lines: list[str] = []
        for key in ("added_relations", "removed_relations",
                    "added_paths", "removed_paths"):
            values = self.changes[key]
            if values:
                label = key.replace("_", " ")
                lines.append(f"{label}: {', '.join(values)}")
        lines.append(f"kept constraints: {len(self.kept)}")
        for nfd in self.kept:
            lines.append(f"  {nfd}")
        if self.broken:
            lines.append(f"broken constraints: {len(self.broken)}")
            for nfd, reason in self.broken:
                lines.append(f"  {nfd}")
                lines.append(f"    {reason}")
        return "\n".join(lines)


def migrate_sigma(old: Schema, new: Schema,
                  sigma: Iterable[NFD]) -> MigrationReport:
    """Classify *sigma* against the *new* schema.

    A constraint is *kept* when it is still well-formed (the engine can
    enforce it unchanged) and *broken* otherwise, with the
    well-formedness error as the reason.
    """
    kept: list[NFD] = []
    broken: list[tuple[NFD, str]] = []
    for nfd in sigma:
        try:
            nfd.check_well_formed(new)
        except NFDError as exc:
            broken.append((nfd, str(exc)))
        else:
            kept.append(nfd)
    return MigrationReport(kept, broken, schema_changes(old, new))
