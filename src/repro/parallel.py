"""Process-parallel fan-out for analysis workloads.

The analysis layer's hot loops — the key-combination sweep, the
cross-relation validation walk — are embarrassingly parallel over
*independent* tasks that all consult one shared, read-only context (a
compiled session or validator engine).  :func:`process_map` is the one
fan-out primitive they share:

* **per-process setup**: each worker process runs ``setup(payload)``
  exactly once (a :class:`~concurrent.futures.ProcessPoolExecutor`
  initializer) and caches the result — the expensive compilation
  (engine construction, plan compilation) happens once per *process*,
  not once per task;
* **pickle-safe payloads**: the payload and the task items cross the
  process boundary, so callers pass serializable specs (bundle-JSON
  strings, path/NFD texts, tuples) rather than live engines;
* **deterministic ordering**: results come back in task order
  (``Executor.map`` semantics), so parallel runs are byte-identical to
  serial runs;
* **serial fallback**: with ``jobs <= 1``, or fewer than *threshold*
  tasks (process startup would dominate), the same ``setup``/``func``
  pair runs inline in the calling process — one code path to test,
  identical answers by construction.

Warm-up path
------------

``setup`` is also where workers attach to the persistent cache
(:mod:`repro.store`): the callers that support it — the key sweep's
``_keys_setup``, the streaming validator's ``_shard_setup`` — thread a
``cache_dir`` through the payload and open a **read-only**
:class:`~repro.store.CacheStore` once per process.  Every task in that
process then answers warm (memoized closures, restored plans) from the
one handle, while the single writable handle stays in the driver — a
fleet of readers and one writer is exactly the shape WAL SQLite serves
well.  Read-only opens never create or mutate the database, so a
worker fleet pointed at a missing or stale cache degrades to cold
computation with byte-identical results.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from .inference.empty_sets import NonEmptySpec
from .paths.path import parse_path

__all__ = ["process_map", "spec_payload", "spec_from_payload",
           "RemoteTraceback", "PARALLEL_THRESHOLD"]

#: Below this many tasks a process pool costs more than it saves.
PARALLEL_THRESHOLD = 4

# Per-worker-process context, built once by _initialize.
_CONTEXT: Any = None


class RemoteTraceback(Exception):
    """Carries a worker process's formatted traceback to the caller.

    A pickled exception loses its ``__traceback__`` crossing the
    process boundary, so a worker failure would otherwise surface with
    only the parent's re-raise frames.  :func:`process_map` chains the
    original exception ``from`` one of these, putting the remote stack
    in the caller's error report.
    """

    def __str__(self) -> str:
        return f"\n\n(remote worker traceback)\n{self.args[0]}"


def _initialize(setup: Callable[[Any], Any], payload: Any) -> None:
    global _CONTEXT
    _CONTEXT = setup(payload)


def _invoke(task: tuple[Callable[[Any, Any], Any], Any]) -> Any:
    func, item = task
    try:
        return func(_CONTEXT, item)
    except BaseException as exc:
        # Exception attributes survive pickling; the traceback object
        # itself does not.  Capture the formatted stack here so the
        # parent can chain it into its re-raise.
        exc._worker_traceback = traceback.format_exc()
        raise


def process_map(setup: Callable[[Any], Any], payload: Any,
                func: Callable[[Any, Any], Any], items: Iterable[Any],
                jobs: int = 1, *,
                threshold: int = PARALLEL_THRESHOLD,
                chunksize: int | None = None) -> list[Any]:
    """Map ``func(context, item)`` over *items*, possibly in parallel.

    ``context = setup(payload)`` is built once per worker process (or
    once inline on the serial path).  *payload*, *items*, and the
    results must be picklable; *setup* and *func* must be module-level
    functions.  Results are returned in item order regardless of which
    worker finished first, so callers are deterministic by
    construction.

    Serial execution is chosen when ``jobs <= 1`` or when there are
    fewer than *threshold* items; both paths run the exact same
    ``setup``/``func`` code.
    """
    work: Sequence[Any] = list(items)
    if jobs <= 1 or len(work) < max(threshold, 2):
        context = setup(payload)
        return [func(context, item) for item in work]
    workers = min(jobs, len(work))
    if chunksize is None:
        chunksize = max(1, len(work) // (workers * 4))
    with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize, initargs=(setup, payload),
    ) as pool:
        try:
            return list(pool.map(_invoke,
                                 [(func, item) for item in work],
                                 chunksize=chunksize))
        except BaseException as exc:
            remote = getattr(exc, "_worker_traceback", None)
            if remote is not None:
                raise exc from RemoteTraceback(remote)
            raise


def spec_payload(nonempty: NonEmptySpec | None):
    """A pickle-friendly, text-only encoding of a nonempty spec.

    ``None`` stays ``None``, the all-nonempty spec becomes ``"*"``, and
    a partial spec becomes its sorted declaration texts.  Decoded by
    :func:`spec_from_payload` inside worker processes, keeping worker
    payloads plain strings/tuples.
    """
    if nonempty is None:
        return None
    if nonempty.declares_everything:
        return "*"
    return tuple(sorted(str(p) for p in nonempty.declared))


def spec_from_payload(data) -> NonEmptySpec | None:
    """Invert :func:`spec_payload`."""
    if data is None:
        return None
    if data == "*":
        return NonEmptySpec.all_nonempty()
    return NonEmptySpec(parse_path(text) for text in data)
