"""Bounded semantic countermodel search: a rule-independent oracle.

The closure engine and the brute-force prover both reason *syntactically*
with the paper's rules.  This module attacks implication *semantically*:
it searches for a small instance that satisfies ``Sigma`` but violates a
candidate NFD.  Finding one refutes implication outright (soundness side);
finding none within the budget is evidence — not proof — of implication.

Two search strategies are combined:

* the Appendix-A construction (deterministic, and exact when Theorem 3.1
  applies: it separates whenever the closure says "not implied");
* randomized search over small instances with tiny atom domains, which is
  independent of the closure and therefore also guards against bugs in
  the construction itself.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..nfd.fast_satisfy import satisfies_all_fast, satisfies_fast
from ..nfd.nfd import NFD
from ..types.schema import Schema
from ..values.build import Instance
from .closure import ClosureEngine
from .countermodel import build_countermodel

__all__ = ["search_countermodel", "semantic_implication_verdict"]


def search_countermodel(schema: Schema, sigma: Iterable[NFD],
                        candidate: NFD, rng: random.Random,
                        attempts: int = 300, tuples: int = 2,
                        domain: int = 2, max_set_size: int = 2,
                        use_construction: bool = True) -> Instance | None:
    """Search for an empty-set-free instance with ``I |= Sigma``,
    ``I |/= candidate``.

    Tries the Appendix-A construction first (when *use_construction*),
    then randomized instances.  Returns the first separator found or
    None.
    """
    from ..generators.instances import random_instance

    sigma_list = list(sigma)
    candidate.check_well_formed(schema)

    if use_construction:
        engine = ClosureEngine(schema, sigma_list)
        if not engine.implies(candidate):
            built = build_countermodel(engine, candidate.base,
                                       candidate.lhs)
            if satisfies_all_fast(built, sigma_list) and \
                    not satisfies_fast(built, candidate):
                return built
            # The construction failed to separate; fall through to the
            # random search rather than silently trusting it.

    for _ in range(attempts):
        instance = random_instance(rng, schema, tuples=tuples,
                                   domain=domain,
                                   max_set_size=max_set_size,
                                   empty_probability=0.0)
        if not satisfies_all_fast(instance, sigma_list):
            continue
        if not satisfies_fast(instance, candidate):
            return instance
    return None


def semantic_implication_verdict(schema: Schema, sigma: Iterable[NFD],
                                 candidate: NFD, rng: random.Random,
                                 attempts: int = 300) -> bool:
    """True when no countermodel was found (implication *probably* holds).

    A False verdict is definitive — a separator exists.  A True verdict
    is only as strong as the search budget; the property tests use it to
    cross-examine the closure engine in both directions.
    """
    return search_countermodel(schema, sigma, candidate, rng,
                               attempts=attempts) is None
