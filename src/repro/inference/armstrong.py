"""Classical relational functional dependencies (the flat baseline).

Armstrong's axioms and the linear-time attribute-closure algorithm for
First-Normal-Form relations.  On flat schemas (records of base types)
NFD implication degenerates to classical FD implication, which gives an
independent oracle for the nested engine and the baseline for the
scaling benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import InferenceError
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..types.base import BaseType
from ..types.schema import Schema

__all__ = ["FD", "attribute_closure", "attribute_closure_many",
           "fd_implies", "nfd_to_fd", "fd_to_nfd", "is_flat_relation",
           "closed_sets", "armstrong_relation"]


class FD:
    """A classical functional dependency ``X -> A`` over attribute names.

    The RHS is a single attribute, matching the NFD restriction; a
    multi-attribute RHS decomposes into several FDs.
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Iterable[str], rhs: str):
        object.__setattr__(self, "lhs", frozenset(lhs))
        object.__setattr__(self, "rhs", rhs)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("FD is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FD) and self.lhs == other.lhs and \
            self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash(("FD", self.lhs, self.rhs))

    def __repr__(self) -> str:
        inner = ", ".join(sorted(self.lhs)) or "∅"
        return f"FD({inner} -> {self.rhs})"


def attribute_closure(attributes: Iterable[str],
                      fds: Iterable[FD]) -> frozenset[str]:
    """The classical attribute closure ``X+`` under *fds*.

    Linear-time worklist algorithm (Beeri–Bernstein): each FD keeps a
    count of LHS attributes not yet in the closure; when the count hits
    zero its RHS joins.
    """
    fd_list = list(fds)
    closure = set(attributes)
    remaining = []
    by_attribute: dict[str, list[int]] = {}
    for index, fd in enumerate(fd_list):
        missing = {a for a in fd.lhs if a not in closure}
        remaining.append(len(missing))
        for attribute in missing:
            by_attribute.setdefault(attribute, []).append(index)
    queue = [fd.rhs for index, fd in enumerate(fd_list)
             if remaining[index] == 0 and fd.rhs not in closure]
    closure.update(queue)
    while queue:
        attribute = queue.pop()
        for index in by_attribute.get(attribute, ()):
            remaining[index] -= 1
            if remaining[index] == 0:
                rhs = fd_list[index].rhs
                if rhs not in closure:
                    closure.add(rhs)
                    queue.append(rhs)
    return frozenset(closure)


def attribute_closure_many(bases: Iterable[Iterable[str]],
                           fds: Iterable[FD]) -> list[frozenset[str]]:
    """Batch :func:`attribute_closure`: one ``X+`` per base, in order.

    The flat cousin of the nested engine's dense kernel: attributes
    (those of the bases plus any appearing only in *fds*) are interned
    into contiguous bit positions, each FD flattens to one
    ``(lhs_mask, rhs_bit)`` row, and every closure is an int fixpoint —
    no set hashing in the loop.  Closures of bases one bit smaller seed
    larger ones (``X ⊆ Y`` implies ``X+ ⊆ Y+``), which is exactly the
    subset enumeration order of :func:`closed_sets`, so the whole
    lattice sweep pays for new derivations only.
    """
    base_list = [tuple(dict.fromkeys(base)) for base in bases]
    fd_list = list(fds)
    ids: dict[str, int] = {}
    for base in base_list:
        for attribute in base:
            ids.setdefault(attribute, len(ids))
    for fd in fd_list:
        for attribute in fd.lhs:
            ids.setdefault(attribute, len(ids))
        ids.setdefault(fd.rhs, len(ids))
    names = list(ids)
    rows = []
    for fd in fd_list:
        lhs_mask = 0
        for attribute in fd.lhs:
            lhs_mask |= 1 << ids[attribute]
        rows.append((lhs_mask, 1 << ids[fd.rhs]))
    memo: dict[int, int] = {}
    results: list[frozenset[str]] = []
    for base in base_list:
        mask = 0
        for attribute in base:
            mask |= 1 << ids[attribute]
        closed = memo.get(mask)
        if closed is None:
            acc = mask
            bits = mask
            while bits:  # seed from every one-smaller subset computed
                low = bits & -bits
                sub = memo.get(mask ^ low)
                if sub is not None:
                    acc |= sub
                bits ^= low
            pending = [row for row in rows if not acc & row[1]]
            progress = True
            while progress and pending:
                progress = False
                remaining = []
                for row in pending:
                    if acc & row[1]:
                        continue
                    if acc & row[0] == row[0]:
                        acc |= row[1]
                        progress = True
                    else:
                        remaining.append(row)
                pending = remaining
            closed = memo[mask] = acc
        results.append(frozenset(
            names[i] for i in range(closed.bit_length())
            if closed >> i & 1))
    return results


def fd_implies(fds: Iterable[FD], candidate: FD) -> bool:
    """Decide ``F |= X -> A`` via the attribute closure."""
    return candidate.rhs in attribute_closure(candidate.lhs, fds)


def is_flat_relation(schema: Schema, relation: str) -> bool:
    """True iff every attribute of *relation* has a base type (1NF)."""
    element = schema.element_type(relation)
    return all(isinstance(field_type, BaseType)
               for _, field_type in element.fields)


def nfd_to_fd(nfd: NFD) -> FD:
    """View a flat NFD (single-label paths, relation base) as an FD.

    :raises InferenceError: if the NFD is not flat.
    """
    if not nfd.is_simple:
        raise InferenceError(f"{nfd} has a nested base path; not flat")
    for path in nfd.all_paths:
        if len(path) != 1:
            raise InferenceError(f"{nfd} uses the nested path {path}; "
                                 "not flat")
    return FD({path.first for path in nfd.lhs}, nfd.rhs.first)


def fd_to_nfd(relation: str, fd: FD) -> NFD:
    """Embed a classical FD into the NFD syntax."""
    return NFD(
        Path((relation,)),
        {Path((attribute,)) for attribute in fd.lhs},
        Path((fd.rhs,)),
    )


def closed_sets(attributes: Sequence[str], fds: Iterable[FD],
                max_attributes: int = 12) -> list[frozenset[str]]:
    """All closed attribute sets (``X = X+``) under *fds*.

    Enumerated by closing every subset — exponential, hence the
    *max_attributes* guard.  The family is the lattice whose structure
    an Armstrong relation realizes.
    """
    from itertools import combinations

    attribute_tuple = tuple(dict.fromkeys(attributes))
    if len(attribute_tuple) > max_attributes:
        raise InferenceError(
            f"{len(attribute_tuple)} attributes; closed-set enumeration "
            f"is exponential — limit is {max_attributes}"
        )
    subsets = [
        combo
        for size in range(len(attribute_tuple) + 1)
        for combo in combinations(attribute_tuple, size)
    ]
    # size-ascending order makes every one-smaller subset's closure
    # available as a seed inside the batch kernel
    return sorted(set(attribute_closure_many(subsets, fds)),
                  key=lambda s: (len(s), sorted(s)))


def armstrong_relation(attributes: Sequence[str], fds: Iterable[FD],
                       max_attributes: int = 12) \
        -> list[dict[str, int]]:
    """An Armstrong relation for *fds*: satisfies ``X -> A`` iff implied.

    The classical flat counterpart of the paper's Appendix-A
    construction: one anchor row of zeros, plus one row per proper
    closed set agreeing with the anchor exactly there and fresh
    elsewhere.  Two rows then agree on ``X`` iff both project into a
    common closed set containing ``X``, which forces exactly the
    implied FDs (tested exhaustively in the suite).
    """
    attribute_tuple = tuple(dict.fromkeys(attributes))
    family = closed_sets(attribute_tuple, fds, max_attributes)
    rows: list[dict[str, int]] = [
        {attribute: 0 for attribute in attribute_tuple}
    ]
    fresh = 0
    for closed in family:
        if closed == frozenset(attribute_tuple):
            continue
        row = {}
        for attribute in attribute_tuple:
            if attribute in closed:
                row[attribute] = 0
            else:
                fresh += 1
                row[attribute] = fresh
        rows.append(row)
    return rows
