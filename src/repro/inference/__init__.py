"""Inference: the eight rules, closure engine, and oracles."""

from . import rules
from .armstrong import (
    FD,
    armstrong_relation,
    attribute_closure,
    attribute_closure_many,
    closed_sets,
    fd_implies,
    fd_to_nfd,
    is_flat_relation,
    nfd_to_fd,
)
from .brute_force import BruteForceProver
from .closure import ClosureEngine, EngineStats, Explanation
from .dense import DenseTables, compile_tables
from .countermodel import (
    CountermodelBuilder,
    build_countermodel,
    find_countermodel,
)
from .derivation import Derivation, Step
from .empty_sets import (
    NonEmptySpec,
    prefix_nonempty,
    transitivity_nonempty,
)
from .implication import (
    closure,
    equivalent_sets,
    implied_keys,
    implies,
    redundant_members,
)
from .model_search import search_countermodel, semantic_implication_verdict
from .mvds import (
    MVD,
    dependency_basis,
    implies_fd_mixed,
    implies_mvd,
    satisfies_mvd,
)
from .proof_compiler import compile_proof
from .session import ImplicationSession, SessionStats, sigma_fingerprint
from .simple_rules import (
    SIMPLE_RULE_NAMES,
    full_locality,
    to_simple_system,
    uses_only_simple_rules,
)

__all__ = [
    "rules",
    "ClosureEngine",
    "EngineStats",
    "Explanation",
    "DenseTables",
    "compile_tables",
    "ImplicationSession",
    "SessionStats",
    "sigma_fingerprint",
    "Derivation",
    "Step",
    "BruteForceProver",
    "CountermodelBuilder",
    "build_countermodel",
    "find_countermodel",
    "NonEmptySpec",
    "transitivity_nonempty",
    "prefix_nonempty",
    "implies",
    "closure",
    "equivalent_sets",
    "redundant_members",
    "implied_keys",
    "search_countermodel",
    "compile_proof",
    "semantic_implication_verdict",
    "full_locality",
    "to_simple_system",
    "uses_only_simple_rules",
    "SIMPLE_RULE_NAMES",
    "FD",
    "MVD",
    "dependency_basis",
    "implies_mvd",
    "implies_fd_mixed",
    "satisfies_mvd",
    "attribute_closure",
    "attribute_closure_many",
    "armstrong_relation",
    "closed_sets",
    "fd_implies",
    "nfd_to_fd",
    "fd_to_nfd",
    "is_flat_relation",
]
