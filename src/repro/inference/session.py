"""Implication query sessions: serving many queries over one Sigma.

Every analysis in this library — candidate keys, minimal covers,
redundancy scans, Sigma diffs — is a *stream* of implication and
closure queries against one logical ``(schema, Sigma, nonempty)``
triple, and the streams are heavily self-similar: a key sweep asks
about every attribute combination (neighbouring combinations share most
of their members), LHS shrinking asks about one-path perturbations of
the same NFD, and a diff asks about each member twice.

:class:`ImplicationSession` is the serving layer for such streams, on
top of one :class:`~repro.inference.closure.ClosureEngine`:

* a canonical, order-independent **fingerprint** of the triple
  (:func:`sigma_fingerprint`) identifies the logical Sigma a cached
  answer belongs to — syntactic reorderings of Sigma members, LHS
  paths, record fields, or nonempty declarations all map to the same
  fingerprint, so memoized results can be associated, persisted, or
  compared across sessions that spell the same Sigma differently;
* a bounded per-``(relation, frozenset(LHS))`` **closure memo** with
  LRU eviction answers repeated simple-closure queries without
  re-entering the engine, and evicted queries are also dropped from the
  engine (:meth:`ClosureEngine.forget_query`) so long sessions stay
  bounded;
* **seed reuse**: on a memo miss, the largest cached closure ``CL(X)``
  with ``X ⊂ Y`` seeds ``Y``'s saturation (monotonicity — ``X ⊆ Y``
  implies ``CL(X) ⊆ CL(Y)`` in both the plain and the gated systems,
  since enlarging the query key only loosens the Section 3.2 gates), so
  the incremental cost of a sweep step is proportional to the *new*
  derivations only;
* **copy-on-write probes**: :meth:`without` / :meth:`with_added` /
  :meth:`replaced` return sibling sessions whose engines share this
  engine's compiled Sigma pool (usables, trigger indexes, singleton
  candidates) — the probe compiles only the member it changes.

:class:`SessionStats` mirrors :class:`~repro.inference.closure.EngineStats`
with the memo counters (hits, misses, seed reuses, evictions) and the
fingerprint, and nests the engine snapshot.

Sessions trade *provenance* for speed: seeded closures do not record
how the seeded paths were derived, so ``explain``/``prove`` workflows
should keep using a plain :class:`ClosureEngine`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterable

from ..errors import InferenceError, NFDError
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..types.base import BaseType, RecordType, SetType, Type
from ..types.schema import Schema
from .closure import ClosureEngine, EngineStats
from .empty_sets import NonEmptySpec

__all__ = ["ImplicationSession", "SessionStats", "sigma_fingerprint"]

#: Default bound on the number of memoized closure queries per session.
DEFAULT_MAX_MEMO = 1024


def _canonical_type(t: Type) -> str:
    """A canonical text for a type: record fields sorted by label, so
    field order (display-only, ignored by equality) cannot perturb the
    fingerprint."""
    if isinstance(t, BaseType):
        return t.name
    if isinstance(t, SetType):
        return "{" + _canonical_type(t.element) + "}"
    assert isinstance(t, RecordType)
    inner = ",".join(
        f"{label}:{_canonical_type(t.field(label))}"
        for label in sorted(t.labels)
    )
    return "<" + inner + ">"


def sigma_fingerprint(schema: Schema, sigma: Iterable[NFD],
                      nonempty: NonEmptySpec | None = None) -> str:
    """A canonical, order-independent fingerprint of the logical triple.

    Two calls agree exactly when the *logical* inputs agree: relations
    are sorted by name, record fields by label, Sigma members are
    rendered in their canonical text (LHS sorted, duplicates collapsed)
    and sorted, and the nonempty spec contributes ``"*"`` or its sorted
    declarations.  The result is a hex SHA-256 digest.
    """
    spec = nonempty if nonempty is not None else NonEmptySpec.all_nonempty()
    hasher = hashlib.sha256()
    for name in sorted(schema.relation_names):
        hasher.update(f"R {name}={_canonical_type(schema.relation_type(name))}\n"
                      .encode())
    for text in sorted({str(nfd) for nfd in sigma}):
        hasher.update(f"S {text}\n".encode())
    if spec.declares_everything:
        hasher.update(b"N *\n")
    else:
        for text in sorted(str(p) for p in spec.declared):
            hasher.update(f"N {text}\n".encode())
    return hasher.hexdigest()


class SessionStats:
    """A snapshot of a session's memo counters plus the engine's.

    * ``fingerprint`` — the canonical Sigma fingerprint;
    * ``queries`` — simple-closure queries served;
    * ``hits`` / ``misses`` — memo hits and misses among them;
    * ``seed_reuses`` — misses that were seeded from a cached subset
      closure instead of saturating from scratch;
    * ``evictions`` — memo entries dropped by the LRU bound;
    * ``memo_size`` / ``max_memo`` — current and maximum memo entries;
    * ``store_hits`` / ``store_misses`` — memo misses answered from /
      probed against the persistent :class:`~repro.store.CacheStore`
      (both zero when no store is attached);
    * ``engine`` — the nested :class:`EngineStats` snapshot.
    """

    __slots__ = ("fingerprint", "queries", "hits", "misses",
                 "seed_reuses", "evictions", "memo_size", "max_memo",
                 "engine", "store_hits", "store_misses")

    def __init__(self, fingerprint: str, queries: int, hits: int,
                 misses: int, seed_reuses: int, evictions: int,
                 memo_size: int, max_memo: int, engine: EngineStats,
                 store_hits: int = 0, store_misses: int = 0):
        self.fingerprint = fingerprint
        self.queries = queries
        self.hits = hits
        self.misses = misses
        self.seed_reuses = seed_reuses
        self.evictions = evictions
        self.memo_size = memo_size
        self.max_memo = max_memo
        self.engine = engine
        self.store_hits = store_hits
        self.store_misses = store_misses

    @property
    def hit_rate(self) -> float:
        """Memo hits over queries (0.0 when no query was served)."""
        return self.hits / self.queries if self.queries else 0.0

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "queries": self.queries,
            "hits": self.hits,
            "misses": self.misses,
            "seed_reuses": self.seed_reuses,
            "evictions": self.evictions,
            "memo_size": self.memo_size,
            "max_memo": self.max_memo,
            "hit_rate": self.hit_rate,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "engine": self.engine.as_dict(),
        }

    def as_metrics(self) -> dict:
        """The :class:`~repro.obs.RunReport` section protocol."""
        return self.as_dict()

    def diff(self, baseline: "SessionStats") -> "SessionStats":
        """The memo activity since *baseline* (an earlier snapshot of
        the same session): cumulative counters are subtracted (the
        nested engine snapshot through :meth:`EngineStats.diff`);
        ``memo_size`` / ``max_memo`` / ``fingerprint`` keep this
        snapshot's values.  Counters are never reset in place."""
        if baseline.fingerprint != self.fingerprint:
            raise InferenceError(
                "cannot diff snapshots of different sessions "
                f"({self.fingerprint[:12]} vs "
                f"{baseline.fingerprint[:12]}); diff() expects two "
                "snapshot() calls taken from the *same* session — "
                "snapshot() before the window, snapshot() after, then "
                "diff the later against the earlier")
        return SessionStats(
            fingerprint=self.fingerprint,
            queries=self.queries - baseline.queries,
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            seed_reuses=self.seed_reuses - baseline.seed_reuses,
            evictions=self.evictions - baseline.evictions,
            memo_size=self.memo_size,
            max_memo=self.max_memo,
            engine=self.engine.diff(baseline.engine),
            store_hits=self.store_hits - baseline.store_hits,
            store_misses=self.store_misses - baseline.store_misses,
        )

    def to_text(self) -> str:
        lines = [
            f"session stats (fingerprint {self.fingerprint[:12]}):",
            f"  closure queries: {self.queries}  hits: {self.hits}  "
            f"misses: {self.misses}  hit rate: {self.hit_rate:.1%}",
            f"  seed reuses: {self.seed_reuses}  "
            f"evictions: {self.evictions}  "
            f"memo: {self.memo_size}/{self.max_memo}",
        ]
        if self.store_hits or self.store_misses:
            lines.append(f"  store hits: {self.store_hits}  "
                         f"store misses: {self.store_misses}")
        lines.append(self.engine.to_text())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"SessionStats(queries={self.queries}, hits={self.hits}, "
                f"misses={self.misses}, seed_reuses={self.seed_reuses})")


class ImplicationSession:
    """A memoizing query-serving layer over one logical Sigma.

    Example::

        session = ImplicationSession(schema, sigma, nonempty)
        session.implies(nfd)                      # like the engine...
        session.closure(base, lhs)                # ...but memoized
        probe = session.without(2)                # COW delta probe
        session.stats.hit_rate

    The session exposes the engine's query API (``closure_simple``,
    ``closure``, ``implies``, ``implies_all``) with identical answers —
    see ``tests/properties/test_session_differential.py`` — plus the
    delta probes and :attr:`stats`.  It deliberately does *not* expose
    ``explain``: seeded closures lack provenance for their seed paths.
    """

    def __init__(self, schema: Schema, sigma: Iterable[NFD],
                 nonempty: NonEmptySpec | None = None, *,
                 strategy: str = "worklist",
                 max_memo: int = DEFAULT_MAX_MEMO, tracer=None,
                 store=None, _engine: ClosureEngine | None = None):
        if _engine is not None:
            self.engine = _engine
        else:
            self.engine = ClosureEngine(schema, sigma, nonempty,
                                        strategy=strategy, tracer=tracer)
        if max_memo < 1:
            raise InferenceError("max_memo must be at least 1")
        self.max_memo = max_memo
        # Optional persistent write-through layer (repro.store): memo
        # misses probe it before saturating, computed closures are
        # written back.  Probe sessions never inherit it — their Sigma
        # differs, so persisted entries would not apply.
        self.store = store
        self._store_hits = 0
        self._store_misses = 0
        self.fingerprint = sigma_fingerprint(
            self.engine.schema, self.engine.sigma, self.engine.nonempty)
        if store is not None and _engine is None \
                and self.engine.strategy == "dense":
            self._warm_dense()
        # (relation, key) -> closure, in LRU order (oldest first).
        self._memo: "OrderedDict[tuple[str, frozenset[Path]], frozenset[Path]]" \
            = OrderedDict()
        # relation -> {key: closure}; mirror of _memo for the seed scan.
        self._by_relation: dict[str, dict[frozenset[Path],
                                          frozenset[Path]]] = {}
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._seed_reuses = 0
        self._evictions = 0

    def _warm_dense(self) -> None:
        """Adopt persisted dense tables / persist freshly compiled ones.

        Dense tables depend on ``(schema, Sigma members, nonempty)`` —
        the fingerprint — but their rows are tagged by Σ *member index*
        (the fingerprint is order-independent, indexes are not), so the
        persisted payload carries the member texts in order and a
        mismatch is a miss, never a wrong answer (exactly the
        compiled-plan rule)."""
        pool = self.engine._pool
        sigma_texts = tuple(str(nfd) for nfd in self.engine.sigma)
        for relation in self.engine.schema.relation_names:
            payload = self.store.get_dense(self.fingerprint, relation)
            if payload is not None:
                stored_texts, tables = payload
                if stored_texts == sigma_texts:
                    pool.adopt_dense(relation, tables)
                    continue
                self.store.note_stale()
            if not pool.has_dense(relation):
                self.store.put_dense(self.fingerprint, relation,
                                     (sigma_texts,
                                      pool.dense(relation)))

    # -- introspection -----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.engine.schema

    @property
    def sigma(self) -> tuple[NFD, ...]:
        return self.engine.sigma

    @property
    def nonempty(self) -> NonEmptySpec:
        return self.engine.nonempty

    @property
    def strategy(self) -> str:
        """The engine's saturation strategy (worklist/naive/dense)."""
        return self.engine.strategy

    @property
    def tracer(self):
        """The engine's :class:`~repro.obs.Tracer` (None = untraced)."""
        return self.engine.tracer

    def snapshot(self) -> "SessionStats":
        """An explicit alias of :attr:`stats`: counters are cumulative
        and never reset; measure windows via :meth:`SessionStats.diff`."""
        return self.stats

    @property
    def stats(self) -> SessionStats:
        """A point-in-time :class:`SessionStats` snapshot."""
        return SessionStats(
            fingerprint=self.fingerprint,
            queries=self._queries,
            hits=self._hits,
            misses=self._misses,
            seed_reuses=self._seed_reuses,
            evictions=self._evictions,
            memo_size=len(self._memo),
            max_memo=self.max_memo,
            engine=self.engine.stats,
            store_hits=self._store_hits,
            store_misses=self._store_misses,
        )

    # -- memoized queries --------------------------------------------------

    def closure_simple(self, relation: str, lhs: Iterable[Path]) \
            -> frozenset[Path]:
        """Memoized ``CL(lhs)`` at a relation-name base.

        A hit returns the cached closure; a miss consults the
        persistent store (when one is attached) and only then saturates
        the engine, seeded from the largest cached closure of a strict
        subset of *lhs* when one exists (sound by monotonicity of
        ``CL``).  Computed closures are written through to the store,
        so a later process warm-starts without saturating at all."""
        key = frozenset(lhs)
        self._queries += 1
        slot = (relation, key)
        tracer = self.engine.tracer
        cached = self._memo.get(slot)
        if cached is not None:
            self._hits += 1
            self._memo.move_to_end(slot)
            if tracer is not None:
                # a hit is O(1): charge a counter to whichever span is
                # open (e.g. an analysis sweep) instead of a span of
                # its own
                tracer.count("session.hits")
            return cached
        self._misses += 1
        persisted = self._from_store(relation, key)
        if persisted is not None:
            self._remember(relation, key, persisted)
            if tracer is not None:
                tracer.count("session.store_hits")
            return persisted
        if tracer is None:
            seed = self._best_seed(relation, key)
            if seed is not None:
                self._seed_reuses += 1
                result = self.engine.closure_simple_seeded(
                    relation, key, seed)
            else:
                result = self.engine.closure_simple(relation, key)
            self._remember(relation, key, result)
            self._persist(relation, key, result)
            return result
        with tracer.span("session.miss", relation=relation,
                         lhs_size=len(key)) as span:
            seed = self._best_seed(relation, key)
            if seed is not None:
                self._seed_reuses += 1
                span.add("seeded")
                span.add("seed_size", len(seed))
                result = self.engine.closure_simple_seeded(
                    relation, key, seed)
            else:
                result = self.engine.closure_simple(relation, key)
            self._remember(relation, key, result)
            self._persist(relation, key, result)
            span.add("derived", len(result) - len(key))
        return result

    def _from_store(self, relation: str,
                    key: frozenset[Path]) -> frozenset[Path] | None:
        """Probe the persistent store on a memo miss.  A hit keeps the
        closure engine untouched entirely — zero saturation work."""
        if self.store is None:
            return None
        persisted = self.store.get_closure(self.fingerprint, relation,
                                           key)
        if persisted is not None:
            self._store_hits += 1
            return persisted
        self._store_misses += 1
        return None

    def _persist(self, relation: str, key: frozenset[Path],
                 result: frozenset[Path]) -> None:
        if self.store is not None:
            self.store.put_closure(self.fingerprint, relation, key,
                                   result)

    def _best_seed(self, relation: str,
                   key: frozenset[Path]) -> frozenset[Path] | None:
        """A cached-closure seed for ``CL(key)``: the union of every
        cached ``CL(key - {p})`` (each is a subset of ``CL(key)`` by
        monotonicity, so their union seeds soundly).  Combination
        sweeps — the heavy caller, via :meth:`closure_batch` — always
        hit these drop-one probes (a candidate's sub-combinations are
        visited first), making the probe O(|key|); only when every
        probe misses does the original full memo scan for the largest
        strict-subset closure run."""
        cached = self._by_relation.get(relation)
        if not cached:
            return None
        seed: frozenset[Path] | None = None
        for path in key:
            sub = cached.get(key - {path})
            if sub is not None:
                seed = sub if seed is None else seed | sub
        if seed is not None:
            return seed
        best: frozenset[Path] | None = None
        for other, closure in cached.items():
            if len(other) < len(key) and other < key:
                if best is None or len(closure) > len(best):
                    best = closure
        return best

    def _remember(self, relation: str, key: frozenset[Path],
                  result: frozenset[Path]) -> None:
        while len(self._memo) >= self.max_memo:
            (old_relation, old_key), _ = self._memo.popitem(last=False)
            del self._by_relation[old_relation][old_key]
            self.engine.forget_query(old_relation, old_key)
            self._evictions += 1
        self._memo[(relation, key)] = result
        self._by_relation.setdefault(relation, {})[key] = result

    def closure(self, base: Path, lhs: Iterable[Path]) \
            -> frozenset[Path]:
        """``(x0, X, Sigma)*`` through the memoized simple closure."""
        relation, ybar, lhs_set, simple_lhs = \
            self.engine._push_in(base, lhs)
        simple_closure = self.closure_simple(relation, simple_lhs)
        return self.engine._pull_out(base, relation, ybar, lhs_set,
                                     simple_closure)

    def closure_batch(self, queries) -> list[frozenset[Path]]:
        """Batch :meth:`closure`: one result per ``(base, lhs)`` pair.

        The session-level counterpart of
        :meth:`ClosureEngine.closure_many`: the batch is visited in
        subset order (ascending simple-LHS size, then canonical text)
        so each memo miss can seed from the closures the batch itself
        just computed — :meth:`closure_simple` finds them through
        ``_best_seed`` — and results come back in input order,
        identical to mapping :meth:`closure` over the batch."""
        prepared = []
        for base, lhs in queries:
            relation, ybar, lhs_set, simple_lhs = \
                self.engine._push_in(base, lhs)
            prepared.append((base, relation, ybar, lhs_set, simple_lhs))
        order = sorted(
            range(len(prepared)),
            key=lambda i: (len(prepared[i][4]),
                           tuple(sorted(str(p) for p in prepared[i][4])))
        )
        computed: dict[tuple, frozenset[Path]] = {}
        for i in order:
            _, relation, _, _, simple_lhs = prepared[i]
            slot = (relation, simple_lhs)
            if slot not in computed:
                computed[slot] = self.closure_simple(relation,
                                                     simple_lhs)
        return [
            self.engine._pull_out(base, relation, ybar, lhs_set,
                                  computed[(relation, simple_lhs)])
            for base, relation, ybar, lhs_set, simple_lhs in prepared
        ]

    def covers_batch(self, base: Path, candidates,
                     targets: Iterable[Path]) -> list[bool]:
        """Batch key-style verdicts: for each candidate, does
        ``closure(base, candidate)`` contain every path of *targets*?

        Answers equal ``[targets <= self.closure(base, c) for c in
        candidates]``.  Dense-strategy sessions at a relation-name base
        delegate to :meth:`ClosureEngine.covers_many` — verdicts come
        straight off the kernel's saturated masks, skipping both
        closure materialization and the memo (a sweep's candidates
        rarely repeat, so the memo only adds bookkeeping there); other
        configurations route through :meth:`closure_batch` and keep the
        memo warm.
        """
        if self.engine.strategy == "dense" and base.tail.is_empty:
            return self.engine.covers_many(base, candidates, targets)
        target_set = frozenset(targets)
        closures = self.closure_batch(
            [(base, candidate) for candidate in candidates])
        return [target_set <= closed for closed in closures]

    def implies(self, nfd: NFD) -> bool:
        """Decide ``Sigma |= nfd`` (identical to the engine's answer)."""
        try:
            nfd.check_well_formed(self.schema)
        except NFDError as exc:
            raise InferenceError(str(exc)) from exc
        return nfd.rhs in self.closure(nfd.base, nfd.lhs)

    def implies_all(self, nfds: Iterable[NFD]) -> bool:
        """True iff every NFD in *nfds* is implied.

        Runs the closures as one :meth:`closure_batch` (subset-ordered,
        seed-sharing), so a cover check over a whole Σ pays for each
        distinct simple LHS once."""
        candidates = list(nfds)
        for nfd in candidates:
            try:
                nfd.check_well_formed(self.schema)
            except NFDError as exc:
                raise InferenceError(str(exc)) from exc
        closures = self.closure_batch(
            [(nfd.base, nfd.lhs) for nfd in candidates])
        return all(nfd.rhs in closed
                   for nfd, closed in zip(candidates, closures))

    # -- copy-on-write delta probes ----------------------------------------

    def without(self, index: int) -> "ImplicationSession":
        """A probe session over Sigma minus member *index*.

        The probe's engine shares this engine's compiled pool (see
        :meth:`ClosureEngine.without`); its memo starts empty — cached
        closures belong to the old Sigma.
        """
        return ImplicationSession(
            self.schema, (), max_memo=self.max_memo,
            _engine=self.engine.without(index),
        )

    def with_added(self, nfd: NFD) -> "ImplicationSession":
        """A probe session over Sigma plus *nfd* (appended)."""
        return ImplicationSession(
            self.schema, (), max_memo=self.max_memo,
            _engine=self.engine.with_added(nfd),
        )

    def replaced(self, index: int, nfd: NFD) -> "ImplicationSession":
        """A probe session with member *index* replaced by *nfd*,
        preserving Sigma order."""
        return ImplicationSession(
            self.schema, (), max_memo=self.max_memo,
            _engine=self.engine.replace(index, nfd),
        )

    def __repr__(self) -> str:
        return (f"ImplicationSession(|sigma|={len(self.sigma)}, "
                f"fingerprint={self.fingerprint[:12]}, "
                f"memo={len(self._memo)}/{self.max_memo})")
