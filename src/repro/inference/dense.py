"""The dense bitset closure kernel (``strategy="dense"``).

The worklist strategy of :mod:`repro.inference.closure` saturates over
an object graph: frozensets of :class:`~repro.paths.path.Path`, trigger
dictionaries keyed by paths, per-delta hashing.  For the analysis
sweeps — every candidate key, every cover probe, every Armstrong
subset — that object traffic dominates the wall clock.  This module
compiles the same rule system down to flat integers:

* **interning** — the universe of one relation is the prefix-closed set
  ``Paths_SC(R)`` of its well-typed paths (every closure, every query
  key, and every coverage prefix lives inside it), sorted once into a
  contiguous id space, so a set of paths becomes one Python int with
  bit *i* standing for path ``paths[i]``;
* **rule rows** — each usable NFD ``[M -> r]`` flattens to
  ``(rhs_bit, ((uncond_mask, keyonly_mask), ...))`` with one mask pair
  per LHS member: ``uncond_mask`` holds the member and every admissible
  prefix-rule shortening that passes the Section 3.2 transitivity gate
  *unconditionally* (plain mode, or the path follows ``r``, or it is
  always defined), while ``keyonly_mask`` holds the shortenings that
  are admissible only by being part of the query key.  The coverage
  test of the object engine — "some admissible covering path is in the
  closure" — becomes ``acc & uncond`` (the key is a subset of every
  closure, so a nonzero ``keyonly & key_mask`` is decided per query,
  before the hot loop);
* **gated-coverage compilation** — the chain condition of the gated
  prefix rule (shortening to ``member[:k]`` requires every
  ``member[:j]``, ``k <= j < len(member)``, declared non-empty) is a
  static property of ``(member, nonempty)``, so the compiler simply
  stops emitting shortenings at the first undeclared position, and
  prefixes of ``r`` are never emitted — exactly the candidates the
  object engine's ``_coverage`` considers, bit for bit.

Saturation is then a fixpoint of ``if acc & rhs_bit: skip; elif all
masks intersect acc: acc |= rhs_bit`` — no hashing, no frozensets, no
Path objects in the loop.  The tables depend only on ``(schema, Sigma
member, nonempty)``; they are compiled once per relation into the
shared Sigma pool, reused by every copy-on-write probe (rows are
tagged by pool member index, exactly like the object-level usables),
and pickle cleanly so parallel key sweeps ship them to workers instead
of recompiling per process.

This module is deliberately **zero-dependency**: the bitmask path must
import (and run) without numpy — a columnar numpy variant can layer on
top later, but the portable kernel never requires it.
"""

from __future__ import annotations

from typing import Iterator

from ..paths.path import Path
from .empty_sets import NonEmptySpec

__all__ = ["DenseTables", "compile_tables", "compile_row", "mask_of",
           "bit_indices"]

#: One flattened rule:
#: ``(rhs_bit, members, union_mask, default_masks)`` where *members*
#: is ``((uncond_mask, keyonly_mask), ...)``, *union_mask* ORs every
#: member's masks (does the query key touch this row at all?), and
#: *default_masks* is the shared pre-specialized ``[uncond, ...]`` list
#: for keys that don't — or ``None`` when some member has no
#: unconditional option (such a row can only fire through the key).
Row = tuple


def mask_of(ids: dict[Path, int], paths) -> int:
    """The bitmask of a path collection under the interning *ids*."""
    mask = 0
    for path in paths:
        mask |= 1 << ids[path]
    return mask


def bit_indices(mask: int) -> Iterator[int]:
    """The set bit positions of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def compile_row(ids: dict[Path, int], relation: str, lhs, rhs: Path,
                nonempty: NonEmptySpec) -> Row:
    """Flatten one usable NFD ``[lhs -> rhs]`` into a dense row.

    Per LHS member the compiler enumerates every covering path the
    object engine's ``_coverage`` would consider — the member itself
    plus prefix-rule shortenings, stopping at the first position not
    declared non-empty (gated mode) and skipping prefixes of *rhs* —
    and splits them by how they pass the Section 3.2 transitivity
    gate: unconditionally, or only by membership in the query key.
    """
    gated = not nonempty.declares_everything
    members = []
    for member in sorted(lhs):
        uncond = 0
        keyonly = 0
        if not gated or member.follows(rhs) or \
                nonempty.always_defined(relation, member):
            uncond |= 1 << ids[member]
        else:
            keyonly |= 1 << ids[member]
        for k in range(len(member) - 1, 0, -1):
            shortened = member[:k]
            if gated and not nonempty.is_declared(relation, shortened):
                # shortening past this position is gated off, and every
                # shorter prefix would have to shorten through it
                break
            if shortened.is_prefix_of(rhs):
                continue
            if not gated or shortened.follows(rhs) or \
                    nonempty.always_defined(relation, shortened):
                uncond |= 1 << ids[shortened]
            else:
                keyonly |= 1 << ids[shortened]
        members.append((uncond, keyonly))
    union = 0
    default: list[int] | None = []
    for uncond, keyonly in members:
        union |= uncond | keyonly
        if default is not None:
            if uncond:
                default.append(uncond)
            else:
                default = None
    return (1 << ids[rhs], tuple(members), union, default)


class DenseTables:
    """The compiled dense tables of one relation (pickle-safe).

    * ``paths`` / ``ids`` — the interned universe: ``paths[i]`` is the
      path with id ``i``, ``ids`` its inverse;
    * ``member_rows[i]`` — the rows compiled from Sigma member ``i``'s
      usables (its simple form plus localized variants), parallel to
      the pool's ``member_usables`` so copy-on-write probes mask
      members by index;
    * ``candidates`` — one entry per singleton candidate, in pool
      order: ``(premise_lhs, target_mask, rows, key)`` where *rows*
      are the candidate's usable and its localized variants, added to
      the active set when the premise closure covers *target_mask*.
    """

    __slots__ = ("relation", "paths", "ids", "member_rows", "candidates")

    def __init__(self, relation: str, paths: tuple[Path, ...],
                 member_rows: tuple[tuple[Row, ...], ...],
                 candidates: tuple[tuple, ...]):
        self.relation = relation
        self.paths = paths
        self.ids = {path: index for index, path in enumerate(paths)}
        self.member_rows = member_rows
        self.candidates = candidates

    def __getstate__(self):
        # ids is derived from paths; rebuild it on load
        return (self.relation, self.paths, self.member_rows,
                self.candidates)

    def __setstate__(self, state):
        self.__init__(*state)

    def __repr__(self) -> str:
        rows = sum(len(per) for per in self.member_rows)
        return (f"DenseTables({self.relation!r}, {len(self.paths)} "
                f"path id(s), {rows} row(s), "
                f"{len(self.candidates)} candidate(s))")


def compile_tables(pool, relation: str) -> DenseTables:
    """Compile one relation's dense tables from a compiled Sigma pool.

    Depends only on ``(schema, Sigma members, nonempty)``, never on an
    engine's active-member set: rows stay tagged by pool member index
    and the engine concatenates the active ones, so one compilation
    serves every copy-on-write probe of the pool.
    """
    from .closure import _localizations

    nonempty = pool.nonempty
    paths = tuple(sorted(pool.paths[relation]))
    ids = {path: index for index, path in enumerate(paths)}
    member_rows: list[list[Row]] = [[] for _ in pool.member_usables]
    for index, usable in pool.by_relation.get(relation, ()):
        member_rows[index].append(
            compile_row(ids, relation, usable.lhs, usable.rhs, nonempty))
    candidates = []
    for candidate in pool.candidates[relation]:
        usable = candidate.usable
        seen = {usable.key()}
        rows = [compile_row(ids, relation, usable.lhs, usable.rhs,
                            nonempty)]
        for variant in _localizations(relation, usable, nonempty):
            if variant.key() in seen:
                continue
            seen.add(variant.key())
            rows.append(compile_row(ids, relation, variant.lhs,
                                    variant.rhs, nonempty))
        candidates.append((candidate.premise_lhs,
                           mask_of(ids, candidate.targets),
                           tuple(rows), candidate.key()))
    return DenseTables(relation, paths,
                       tuple(tuple(per) for per in member_rows),
                       tuple(candidates))
