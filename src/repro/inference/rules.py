"""The eight NFD inference rules (Section 3.1) as syntactic rule objects.

Each rule is a function that takes its premises (NFDs) and parameters
(paths, a schema where the rule is type-dependent) and returns the
conclusion NFD, or raises :class:`RuleApplicationError` when the premises
do not match the rule's pattern.  The functions are deliberately *checked*
pattern matches: a derivation built from them is machine-verified step by
step, which is how the worked proof of Section 3.1 is reproduced.

Rules:

========== ==========================================================
reflexivity  ``x in X  =>  x0:[X -> x]``
augmentation ``x0:[X -> z]  =>  x0:[X Y -> z]``
transitivity ``x0:[X -> xi] (i=1..n), x0:[x1..xn -> y]  =>  x0:[X -> y]``
push-in      ``x0:y:[X -> z]  =>  x0:[y, y:X -> y:z]``
pull-out     ``x0:[y, y:X -> y:z]  =>  x0:y:[X -> z]``
locality     ``x0:[A:X, B1..Bk -> A:z]  =>  x0:A:[X -> z]``
singleton    ``x0:[x -> x:Ai] for all attributes Ai of x
             =>  x0:[x:A1..x:An -> x]``
prefix       ``x0:[x1:A, x2..xk -> y], x1 nonempty, x1 not prefix of y
             =>  x0:[x1, x2..xk -> y]``
========== ==========================================================
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import RuleApplicationError
from ..nfd.nfd import NFD
from ..nfd.simple_form import pull_out as _pull_out_impl
from ..nfd.simple_form import push_in as _push_in_impl
from ..paths.path import Path
from ..paths.typing import resolve_base_path, type_at
from ..types.base import RecordType, SetType
from ..types.schema import Schema

__all__ = [
    "reflexivity",
    "augmentation",
    "transitivity",
    "push_in",
    "pull_out",
    "locality",
    "singleton",
    "prefix",
    "RULE_NAMES",
]

RULE_NAMES = (
    "reflexivity",
    "augmentation",
    "transitivity",
    "push-in",
    "pull-out",
    "locality",
    "singleton",
    "prefix",
)


def reflexivity(base: Path, lhs: Iterable[Path], member: Path) -> NFD:
    """``x in X  =>  x0:[X -> x]``."""
    lhs_set = frozenset(lhs)
    if member not in lhs_set:
        raise RuleApplicationError(
            "reflexivity", f"{member} is not a member of the LHS"
        )
    return NFD(base, lhs_set, member)


def augmentation(premise: NFD, extra: Iterable[Path]) -> NFD:
    """``x0:[X -> z]  =>  x0:[X Y -> z]``."""
    return premise.augment(extra)


def transitivity(premises: Sequence[NFD], bridge: NFD) -> NFD:
    """``x0:[X -> xi] (i), x0:[x1..xn -> y]  =>  x0:[X -> y]``.

    *premises* are the NFDs deriving each path of *bridge*'s LHS from the
    common set ``X``; they must share base and LHS, and their RHS paths
    must cover the bridge's LHS exactly.  The degenerate bridge with an
    empty LHS needs no premises and yields ``x0:[X -> y]`` for any ``X``
    — callers pass at least one premise or use ``augmentation`` instead.
    """
    if not premises:
        raise RuleApplicationError(
            "transitivity",
            "at least one premise of the form x0:[X -> xi] is required "
            "(apply augmentation to a degenerate NFD instead)"
        )
    base = premises[0].base
    lhs = premises[0].lhs
    for premise in premises:
        if premise.base != base:
            raise RuleApplicationError(
                "transitivity",
                f"premises mix base paths {base} and {premise.base}"
            )
        if premise.lhs != lhs:
            raise RuleApplicationError(
                "transitivity",
                "premises must share the same LHS X; found "
                f"{sorted(map(str, lhs))} and "
                f"{sorted(map(str, premise.lhs))}"
            )
    if bridge.base != base:
        raise RuleApplicationError(
            "transitivity",
            f"bridge base {bridge.base} differs from premise base {base}"
        )
    derived = {premise.rhs for premise in premises}
    if bridge.lhs - derived - lhs:
        missing = sorted(map(str, bridge.lhs - derived - lhs))
        raise RuleApplicationError(
            "transitivity",
            f"bridge LHS paths {missing} are derived by no premise "
            "(paths already in X are allowed via reflexivity)"
        )
    return NFD(base, lhs, bridge.rhs)


def push_in(premise: NFD) -> NFD:
    """``x0:y:[X -> z]  =>  x0:[y, y:X -> y:z]``."""
    try:
        return _push_in_impl(premise)
    except Exception as exc:
        raise RuleApplicationError("push-in", str(exc)) from exc


def pull_out(premise: NFD) -> NFD:
    """``x0:[y, y:X -> y:z]  =>  x0:y:[X -> z]``."""
    try:
        return _pull_out_impl(premise)
    except Exception as exc:
        raise RuleApplicationError("pull-out", str(exc)) from exc


def locality(premise: NFD) -> NFD:
    """``x0:[A:X, B1..Bk -> A:z]  =>  x0:A:[X -> z]``.

    ``A`` is the first label of the RHS; every longer LHS path must extend
    ``A`` and the remaining LHS paths must be single labels (which are
    constant within one element of ``x0`` and can therefore be dropped
    when localizing).
    """
    if len(premise.rhs) < 2:
        raise RuleApplicationError(
            "locality",
            f"the RHS {premise.rhs} must traverse into a set-valued "
            "attribute A"
        )
    attribute = Path((premise.rhs.first,))
    inner_lhs: set[Path] = set()
    for path in premise.lhs:
        if attribute.is_proper_prefix_of(path):
            inner_lhs.add(path.strip_prefix(attribute))
        elif len(path) == 1:
            continue  # a single label B, dropped by the rule
        else:
            raise RuleApplicationError(
                "locality",
                f"LHS path {path} neither extends {attribute} nor is a "
                "single label"
            )
    return NFD(premise.base.concat(attribute), inner_lhs,
               premise.rhs.strip_prefix(attribute))


def singleton(premises: Sequence[NFD], schema: Schema) -> NFD:
    """``x0:[x -> x:Ai] for every attribute Ai of x  =>``
    ``x0:[x:A1..x:An -> x]``.

    Type-dependent: *schema* supplies the record type of ``x``'s elements,
    and the premises must cover *all* of its attributes.
    """
    if not premises:
        raise RuleApplicationError("singleton", "no premises given")
    base = premises[0].base
    first_lhs = premises[0].lhs
    if len(first_lhs) != 1:
        raise RuleApplicationError(
            "singleton", "premises must have the single LHS path x"
        )
    x = next(iter(first_lhs))
    covered: set[str] = set()
    for premise in premises:
        if premise.base != base or premise.lhs != first_lhs:
            raise RuleApplicationError(
                "singleton",
                "premises must share the base path and the LHS {x}"
            )
        if premise.rhs.parent != x:
            raise RuleApplicationError(
                "singleton",
                f"premise RHS {premise.rhs} is not of the form x:Ai with "
                f"x = {x}"
            )
        covered.add(premise.rhs.last)
    scope = resolve_base_path(schema, base)
    x_type = type_at(scope, x)
    if not isinstance(x_type, SetType):
        raise RuleApplicationError(
            "singleton", f"{x} is not set-valued in the schema"
        )
    element: RecordType = x_type.element
    missing = set(element.labels) - covered
    if missing:
        raise RuleApplicationError(
            "singleton",
            f"premises cover attributes {sorted(covered)} but {x} also "
            f"has {sorted(missing)}; all attributes are required"
        )
    return NFD(base, {x.child(label) for label in element.labels}, x)


def prefix(premise: NFD, long_path: Path) -> NFD:
    """``x0:[x1:A, rest -> y]  =>  x0:[x1, rest -> y]``.

    *long_path* selects which LHS path ``x1:A`` to shorten; its parent
    ``x1`` must be non-empty and must not be a prefix of the RHS.
    """
    if long_path not in premise.lhs:
        raise RuleApplicationError(
            "prefix", f"{long_path} is not an LHS path of the premise"
        )
    if len(long_path) < 2:
        raise RuleApplicationError(
            "prefix",
            f"{long_path} has no proper non-empty prefix to shorten to"
        )
    shortened = long_path.parent
    if shortened.is_prefix_of(premise.rhs):
        raise RuleApplicationError(
            "prefix",
            f"{shortened} is a prefix of the RHS {premise.rhs}; the rule "
            "would be unsound"
        )
    new_lhs = (premise.lhs - {long_path}) | {shortened}
    return NFD(premise.base, new_lhs, premise.rhs)
