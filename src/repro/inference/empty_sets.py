"""Reasoning in the presence of empty sets (Section 3.2).

Empty sets make formulas like ``forall x in R. P(x)`` trivially true, so
transitivity and the prefix rule are unsound in general (Example 3.2).
The paper's remedy — analogous to NON-NULL declarations — is to let the
user declare which set-valued positions are known to be non-empty, and to
gate the two rules on those declarations plus the *follows* relation
(Definition 3.2).

:class:`NonEmptySpec` holds the declarations.  The modified rules:

* **transitivity** — every intermediate path ``p`` not already in ``X``
  must either *follow* the conclusion's RHS ``y`` (so wherever ``y`` is
  defined, ``p`` is too) or be *always defined*: every set the path
  traverses is declared non-empty.  The paper phrases the second
  disjunct as "p is known not to be an empty set"; traversal through
  ``p``'s set-valued proper prefixes is what can actually fail, so that
  is what we require.

* **prefix** — shortening ``x1:A`` to ``x1`` requires the set at ``x1``
  (and at every intermediate shortening result) to be declared non-empty.

Both gated rules coincide with the plain Section 3.1 rules under
:meth:`NonEmptySpec.all_nonempty`, which models the no-empty-sets
assumption.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import RuleApplicationError
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..paths.typing import set_paths
from ..types.schema import Schema
from ..values.build import Instance
from ..values.inspect import empty_set_positions
from . import rules

__all__ = [
    "NonEmptySpec",
    "transitivity_nonempty",
    "prefix_nonempty",
]


class NonEmptySpec:
    """Declarations of set-valued positions known to be non-empty.

    Positions are absolute paths starting with a relation name, e.g.
    ``Course:students``.  The special *all* spec declares every position
    (the Section 3.1 assumption); the empty spec declares none (fully
    pessimistic).
    """

    __slots__ = ("_declared", "_all")

    def __init__(self, declared: Iterable[Path] = (), all_nonempty: bool = False):
        object.__setattr__(self, "_declared", frozenset(declared))
        object.__setattr__(self, "_all", bool(all_nonempty))

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("NonEmptySpec is immutable")

    def __reduce__(self):
        # the immutability guard defeats pickle's default slot-state
        # restore, so rebuild through the constructor
        return (NonEmptySpec, (self._declared, self._all))

    @staticmethod
    def all_nonempty() -> "NonEmptySpec":
        """The spec modeling the paper's no-empty-sets assumption."""
        return NonEmptySpec(all_nonempty=True)

    @staticmethod
    def none() -> "NonEmptySpec":
        """No position is known non-empty."""
        return NonEmptySpec()

    @staticmethod
    def for_schema(schema: Schema, except_paths: Iterable[Path] = ()) \
            -> "NonEmptySpec":
        """Declare every set position of *schema* except the given ones.

        Handy for tests that poke a single hole into the no-empty-sets
        assumption.  *except_paths* are absolute (``R:B``) paths.
        """
        excluded = frozenset(except_paths)
        declared: set[Path] = set()
        for relation in schema.relation_names:
            declared.add(Path((relation,)))
            for rel_path in set_paths(schema, relation):
                declared.add(Path((relation,)).concat(rel_path))
        return NonEmptySpec(declared - excluded)

    @property
    def declares_everything(self) -> bool:
        return self._all

    @property
    def declared(self) -> frozenset[Path]:
        return self._declared

    def is_declared(self, relation: str, relative_path: Path) -> bool:
        """Is the set at ``relation:relative_path`` declared non-empty?"""
        if self._all:
            return True
        return Path((relation,)).concat(relative_path) in self._declared

    def always_defined(self, relation: str, path: Path,
                       base_tail: Path | None = None) -> bool:
        """Is *path* guaranteed to be defined on every declared instance?

        True when every set-valued proper prefix the path traverses is
        declared non-empty.  Single labels traverse nothing and are
        always defined.  When the path is relative to a nested base
        ``R:base_tail``, pass *base_tail*: definedness on an element of
        the base set involves only the prefixes *inside* the element, but
        their declared positions are the base-tail-qualified ones.
        """
        if self._all:
            return True
        prefix = base_tail if base_tail is not None else Path(())
        for length in range(1, len(path)):
            if not self.is_declared(relation, prefix.concat(path[:length])):
                return False
        return True

    def admits(self, instance: Instance) -> bool:
        """Does *instance* respect every declaration?

        The empty relation itself counts against a declaration of the
        bare relation name.
        """
        if not self._all and not self._declared:
            return True
        empty_positions = set(empty_set_positions(instance))
        for name, relation_value in instance.relations():
            if relation_value.is_empty:
                empty_positions.add(Path((name,)))
        if self._all:
            return not empty_positions
        return not (empty_positions & self._declared)

    def __repr__(self) -> str:
        if self._all:
            return "NonEmptySpec.all_nonempty()"
        inner = ", ".join(str(path) for path in sorted(self._declared))
        return f"NonEmptySpec({{{inner}}})"


def transitivity_nonempty(premises, bridge: NFD,
                          spec: NonEmptySpec) -> NFD:
    """The Section 3.2 transitivity rule, gated by *spec*.

    In addition to the plain pattern match, every path of the bridge's
    LHS that is not already in the shared LHS ``X`` must follow the
    conclusion's RHS or be always defined under *spec*.
    """
    concluded = rules.transitivity(premises, bridge)
    shared_lhs = concluded.lhs
    relation = concluded.relation
    base_tail = concluded.base.tail
    for intermediate in bridge.lhs - shared_lhs:
        if intermediate.follows(bridge.rhs):
            continue
        if spec.always_defined(relation, intermediate,
                               base_tail=base_tail):
            continue
        raise RuleApplicationError(
            "transitivity (non-empty)",
            f"intermediate {intermediate} neither follows {bridge.rhs} "
            "nor traverses only sets declared non-empty"
        )
    return concluded


def prefix_nonempty(premise: NFD, long_path: Path,
                    spec: NonEmptySpec) -> NFD:
    """The Section 3.2 prefix rule, gated by *spec*.

    Shortening ``x1:A`` to ``x1`` additionally requires the set at ``x1``
    to be declared non-empty.
    """
    concluded = rules.prefix(premise, long_path)
    shortened = long_path.parent
    relation = premise.relation
    absolute = premise.base.tail.concat(shortened)
    if not spec.is_declared(relation, absolute):
        raise RuleApplicationError(
            "prefix (non-empty)",
            f"{shortened} is not declared non-empty; the shortening is "
            "unsound in the presence of empty sets"
        )
    return concluded
