"""Multivalued dependencies: the second classical comparison point.

The paper's abstract positions NFDs against "existing notions of
functional, multi-valued, or join dependencies".  This module supplies
the multivalued side of that comparison for flat relations:

* :class:`MVD` — ``X ->> Y`` with the standard exchange semantics;
* :func:`satisfies_mvd` — the tuple-exchange check, and its classical
  equivalence with binary lossless joins (tested against the chase);
* :func:`dependency_basis` — Beeri's refinement algorithm for the mixed
  FD+MVD implication problem;
* :func:`implies_mvd` / :func:`implies_fd_mixed` — membership via the
  basis: ``X ->> Y`` follows iff ``Y − X`` is a union of basis blocks;
  ``X -> A`` follows iff ``A ∈ X`` or ``{A}`` is a singleton block and
  ``A`` appears on the right of some given FD.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import InferenceError
from .armstrong import FD

__all__ = ["MVD", "satisfies_mvd", "dependency_basis", "implies_mvd",
           "implies_fd_mixed"]


class MVD:
    """A multivalued dependency ``X ->> Y``."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Iterable[str], rhs: Iterable[str]):
        object.__setattr__(self, "lhs", frozenset(lhs))
        object.__setattr__(self, "rhs", frozenset(rhs))

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("MVD is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MVD) and self.lhs == other.lhs and \
            self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash(("MVD", self.lhs, self.rhs))

    def __repr__(self) -> str:
        left = ", ".join(sorted(self.lhs)) or "∅"
        right = ", ".join(sorted(self.rhs)) or "∅"
        return f"MVD({left} ->> {right})"


def satisfies_mvd(rows: Sequence[Mapping[str, object]],
                  attributes: Sequence[str], mvd: MVD) -> bool:
    """The exchange semantics: for tuples ``t1, t2`` agreeing on ``X``,
    the tuple taking ``X ∪ Y`` from ``t1`` and the rest from ``t2`` is
    also present."""
    lhs = sorted(mvd.lhs)
    swap = sorted(mvd.rhs - mvd.lhs)
    present = {tuple(sorted(row.items())) for row in rows}
    by_lhs: dict[tuple, list[Mapping[str, object]]] = {}
    for row in rows:
        by_lhs.setdefault(tuple(row[a] for a in lhs), []).append(row)
    for group in by_lhs.values():
        for t1 in group:
            for t2 in group:
                exchanged = dict(t2)
                for attribute in swap:
                    exchanged[attribute] = t1[attribute]
                if tuple(sorted(exchanged.items())) not in present:
                    return False
    return True


def dependency_basis(attributes: Sequence[str], lhs: Iterable[str],
                     fds: Iterable[FD], mvds: Iterable[MVD]) \
        -> list[frozenset[str]]:
    """Beeri's dependency basis of ``X`` under mixed FDs and MVDs.

    Starts from the single block ``R − X`` and refines: a dependency
    ``W ->> Z`` (an FD contributes ``W ->> {A}``) splits any block that
    meets both ``Z`` and its complement and is disjoint from ``W``.
    The result partitions ``R − X``.
    """
    universe = tuple(dict.fromkeys(attributes))
    x_set = frozenset(lhs)
    unknown = x_set - set(universe)
    if unknown:
        raise InferenceError(f"unknown attributes {sorted(unknown)}")
    generators = [(mvd.lhs, mvd.rhs) for mvd in mvds]
    generators += [(fd.lhs, frozenset({fd.rhs})) for fd in fds]
    blocks: list[frozenset[str]] = []
    start = frozenset(universe) - x_set
    if start:
        blocks.append(start)
    changed = True
    while changed:
        changed = False
        for w, z in generators:
            next_blocks: list[frozenset[str]] = []
            for block in blocks:
                if block & w:
                    next_blocks.append(block)
                    continue
                inside = block & z
                outside = block - z
                if inside and outside:
                    next_blocks.append(inside)
                    next_blocks.append(outside)
                    changed = True
                else:
                    next_blocks.append(block)
            blocks = next_blocks
    return sorted(set(blocks), key=lambda b: (len(b), sorted(b)))


def implies_mvd(attributes: Sequence[str], fds: Iterable[FD],
                mvds: Iterable[MVD], candidate: MVD) -> bool:
    """``F ∪ M |= X ->> Y`` iff ``Y − X`` is a union of basis blocks."""
    basis = dependency_basis(attributes, candidate.lhs, fds, mvds)
    remainder = candidate.rhs - candidate.lhs
    covered: set[str] = set()
    for block in basis:
        if block <= remainder:
            covered |= block
    return covered == remainder


def implies_fd_mixed(attributes: Sequence[str], fds: Iterable[FD],
                     mvds: Iterable[MVD], candidate: FD) -> bool:
    """``F ∪ M |= X -> A`` via the coalescence fixpoint.

    Grow the set of attributes functionally determined by ``X``: the
    coalescence rule (``X ->> Y``, ``Z -> A``, ``A ∈ Y``, ``Z ∩ Y = ∅``
    gives ``X -> A``) fires whenever a basis block ``B`` of the current
    closure contains some FD's RHS and is disjoint from its LHS — this
    subsumes the classical Armstrong step (``V ⊆ closure`` makes ``V``
    disjoint from every block), so the fixpoint is the full mixed FD
    closure.  Validated in the tests against Armstrong closure on the
    pure-FD fragment and against random models on the mixed one.
    """
    fd_list = list(fds)
    mvd_list = list(mvds)
    known = set(candidate.lhs)
    changed = True
    while changed:
        changed = False
        basis = dependency_basis(attributes, known, fd_list, mvd_list)
        for fd in fd_list:
            if fd.rhs in known:
                continue
            for block in basis:
                if fd.rhs in block and not (fd.lhs & block):
                    known.add(fd.rhs)
                    changed = True
                    break
    return candidate.rhs in known