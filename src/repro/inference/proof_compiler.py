"""Compiling engine answers into machine-checked derivations.

The closure engine decides implication by saturation; this module turns
its provenance into an explicit :class:`~repro.inference.derivation.Derivation`
— a proof script in the paper's rule system (the eight rules plus
full-locality, per the DESIGN.md 3.2.1 analysis) whose every step is
re-verified by the rule objects.  The compiled proof ends with exactly
the queried NFD, so

    proof = compile_proof(engine, nfd)
    proof.conclusion() == nfd          # machine-checked, step by step

holds for every implied NFD.  This closes the loop between the two
halves of the library: the *decision procedure* produces certificates in
the *proof system*.
"""

from __future__ import annotations

from ..errors import InferenceError
from ..nfd.nfd import NFD
from ..nfd.simple_form import to_simple
from ..paths.path import Path
from .closure import ClosureEngine
from .derivation import Derivation

__all__ = ["compile_proof"]


class _Compiler:
    def __init__(self, engine: ClosureEngine, relation: str):
        self.engine = engine
        self.relation = relation
        self.base = Path((relation,))
        hypotheses = {
            f"s{index + 1}": nfd
            for index, nfd in enumerate(engine.sigma)
        }
        self.derivation = Derivation(engine.schema, hypotheses)
        self._counter = 0
        self._path_steps: dict[tuple, str] = {}
        self._usable_steps: dict[tuple, str] = {}

    def _label(self) -> str:
        self._counter += 1
        return str(self._counter)

    # -- [key -> path] facts ------------------------------------------------

    def derive_path(self, path: Path, key: frozenset[Path]) -> str:
        """A step concluding ``R:[key -> path]``; returns its label."""
        memo_key = (key, path)
        if memo_key in self._path_steps:
            return self._path_steps[memo_key]
        if path in key:
            label = self._label()
            self.derivation.reflexivity(label, self.base, key, path)
            self._path_steps[memo_key] = label
            return label
        record = self.engine._provenance[self.relation] \
            .get(key, {}).get(path)
        if record is None:
            raise InferenceError(
                f"no recorded derivation of {path} from "
                f"{sorted(map(str, key))}; is the NFD implied?"
            )
        usable, member_pairs = record
        bridge_label = self.derive_usable(usable)
        # prefix-rule shortenings transform the bridge before use
        for member, used in member_pairs:
            current = member
            while current != used:
                label = self._label()
                self.derivation.prefix(label, bridge_label, current)
                bridge_label = label
                current = current.parent
        premises = [self.derive_path(used, key)
                    for _, used in member_pairs]
        if not premises:
            # degenerate bridge [∅ -> r]: augment up to the key
            label = self._label()
            self.derivation.augmentation(label, bridge_label, key)
            self._path_steps[memo_key] = label
            return label
        label = self._label()
        self.derivation.transitivity(label, premises, bridge_label)
        self._path_steps[memo_key] = label
        return label

    # -- usable NFDs ------------------------------------------------------------

    def derive_usable(self, usable) -> str:
        """A step concluding the usable NFD in simple form."""
        memo_key = usable.key()
        if memo_key in self._usable_steps:
            return self._usable_steps[memo_key]
        if usable.origin == "sigma":
            label = self._derive_sigma(usable.detail)
        elif usable.origin == "localized":
            source, x = usable.detail
            source_label = self.derive_usable(source)
            label = self._label()
            self.derivation.full_locality(label, source_label, x)
        elif usable.origin == "singleton":
            label = self._derive_singleton(usable.detail)
        else:  # pragma: no cover - no other origins
            raise InferenceError(f"unknown origin {usable.origin!r}")
        self._usable_steps[memo_key] = label
        return label

    def _derive_sigma(self, member: NFD) -> str:
        """Push a Sigma member into simple form."""
        index = self.engine.sigma.index(member)
        label = f"s{index + 1}"
        nfd = self.engine.sigma[index]
        while not nfd.is_simple:
            new_label = self._label()
            self.derivation.push_in(new_label, label)
            label = new_label
            nfd = self.derivation.fact(label)
        return label

    def _derive_singleton(self, candidate) -> str:
        """Build a gated singleton NFD: premises, pull-out chain,
        the singleton rule, push-in chain back to simple form."""
        ybar = candidate.split
        premise_labels = []
        for target in sorted(candidate.targets):
            # R:[prefixes(ybar), s -> s:Ai] from the premise query...
            simple_label = self.derive_path(target,
                                            candidate.premise_lhs)
            # ...pulled out |ybar| times to base R:ybar.
            for _ in range(len(ybar)):
                label = self._label()
                self.derivation.pull_out(label, simple_label)
                simple_label = label
            premise_labels.append(simple_label)
        label = self._label()
        self.derivation.singleton(label, premise_labels)
        for _ in range(len(ybar)):
            new_label = self._label()
            self.derivation.push_in(new_label, label)
            label = new_label
        return label

    # -- the final pull-out chain --------------------------------------------

    def finish(self, nfd: NFD) -> Derivation:
        simple = to_simple(nfd)
        label = self.derive_path(simple.rhs, simple.lhs)
        depth = len(nfd.base) - 1
        for _ in range(depth):
            new_label = self._label()
            self.derivation.pull_out(new_label, label)
            label = new_label
        concluded = self.derivation.fact(label)
        if concluded != nfd:  # pragma: no cover - internal invariant
            raise InferenceError(
                f"proof compilation concluded {concluded}, expected {nfd}"
            )
        return self.derivation


def compile_proof(engine: ClosureEngine, nfd: NFD) -> Derivation:
    """A machine-checked derivation of *nfd* from the engine's Sigma.

    Every step is validated by the rule objects as it is recorded; the
    last step concludes exactly *nfd*.  Raises
    :class:`~repro.errors.InferenceError` when the NFD is not implied.
    """
    if not engine.implies(nfd):
        raise InferenceError(
            f"{nfd} is not implied; no proof exists (Theorem 3.1)"
        )
    compiler = _Compiler(engine, nfd.relation)
    return compiler.finish(nfd)
