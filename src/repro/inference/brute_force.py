"""Exhaustive rule application: an independent oracle for the engine.

The closure engine of :mod:`repro.inference.closure` is an efficient
saturation *strategy*; this module is the brute-force ground truth for
what the inference rules can derive.  It enumerates the entire (finite)
space of NFDs over a schema — every base path, every LHS subset, every
RHS — and applies the eight rules of Section 3.1 *plus* full-locality
(Section 3.2) to a fixpoint; see the inline comment in ``_saturate`` for
why full-locality is required for the system to match the semantic
implication that Theorem 3.1's completeness promises.

The space is exponential in the number of paths, so construction guards
against large schemas (``max_paths``).  Intended for cross-validation
tests and the closure-vs-brute-force benchmark, not for production
queries.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..errors import InferenceError
from ..nfd.nfd import NFD
from .simple_rules import full_locality
from ..paths.path import Path
from ..paths.typing import resolve_base_path, set_paths, type_at
from ..types.base import SetType
from ..types.schema import Schema

__all__ = ["BruteForceProver"]

_Key = tuple[Path, frozenset[Path]]


class BruteForceProver:
    """Fixpoint of the eight rules over the full NFD space of a schema."""

    def __init__(self, schema: Schema, sigma: Iterable[NFD],
                 max_paths: int = 7):
        self.schema = schema
        self.sigma = tuple(sigma)
        for nfd in self.sigma:
            nfd.check_well_formed(schema)

        # Enumerate all base paths: every relation name plus every
        # set-valued path inside it.
        self._bases: list[Path] = []
        self._scope_paths: dict[Path, tuple[Path, ...]] = {}
        for relation in schema.relation_names:
            relation_base = Path((relation,))
            bases = [relation_base] + [
                relation_base.concat(p) for p in set_paths(schema, relation)
            ]
            for base in bases:
                scope = resolve_base_path(schema, base)
                paths = tuple(sorted(self._paths_of_record(scope)))
                if len(paths) > max_paths:
                    raise InferenceError(
                        f"base {base} scopes {len(paths)} paths; the "
                        f"brute-force space is exponential — limit is "
                        f"{max_paths}"
                    )
                self._bases.append(base)
                self._scope_paths[base] = paths

        # derived[(base, lhs)] = set of derivable RHS paths.
        self._derived: dict[_Key, set[Path]] = {}
        for base in self._bases:
            paths = self._scope_paths[base]
            for size in range(len(paths) + 1):
                for combo in combinations(paths, size):
                    lhs = frozenset(combo)
                    self._derived[(base, lhs)] = set(lhs)  # reflexivity
        for nfd in self.sigma:
            self._add(nfd)
        self._saturate()

    @staticmethod
    def _paths_of_record(record) -> list[Path]:
        found: list[Path] = []

        def recurse(rec, prefix: Path) -> None:
            for label, field_type in rec.fields:
                here = prefix.child(label)
                found.append(here)
                if isinstance(field_type, SetType):
                    recurse(field_type.element, here)

        recurse(record, Path(()))
        return found

    # -- fact management ------------------------------------------------------

    def _add(self, nfd: NFD) -> bool:
        key = (nfd.base, nfd.lhs)
        bucket = self._derived.get(key)
        if bucket is None:
            # An NFD outside the enumerated space (e.g. ill-typed LHS)
            # cannot arise from rule application to well-formed inputs.
            raise InferenceError(f"{nfd} is outside the enumerated space")
        if nfd.rhs in bucket:
            return False
        bucket.add(nfd.rhs)
        return True

    def _facts(self) -> list[NFD]:
        return [
            NFD(base, lhs, rhs)
            for (base, lhs), bucket in self._derived.items()
            for rhs in bucket
        ]

    # -- the fixpoint -----------------------------------------------------------

    def _saturate(self) -> None:
        from . import rules as r

        changed = True
        while changed:
            changed = False
            facts = self._facts()

            # augmentation: one path at a time walks the subset lattice.
            for (base, lhs), bucket in list(self._derived.items()):
                for extra in self._scope_paths[base]:
                    if extra in lhs:
                        continue
                    bigger = (base, lhs | {extra})
                    target = self._derived[bigger]
                    for rhs in bucket:
                        if rhs not in target:
                            target.add(rhs)
                            changed = True

            # transitivity: bridge [Z -> y] fires on any X deriving Z.
            for (base, bridge_lhs), bridge_bucket in list(
                    self._derived.items()):
                for (base2, lhs), bucket in list(self._derived.items()):
                    if base2 != base:
                        continue
                    if not all(z in bucket for z in bridge_lhs):
                        continue
                    for y in bridge_bucket:
                        if y not in bucket:
                            bucket.add(y)
                            changed = True

            # the structural rules, applied fact by fact.
            for fact in facts:
                # push-in
                if not fact.is_simple:
                    changed |= self._add(r.push_in(fact))
                # pull-out
                try:
                    changed |= self._add(r.pull_out(fact))
                except Exception:
                    pass
                # locality
                try:
                    changed |= self._add(r.locality(fact))
                except Exception:
                    pass
                # prefix: try to shorten every eligible LHS path.
                for path in fact.lhs:
                    if len(path) < 2:
                        continue
                    try:
                        changed |= self._add(r.prefix(fact, path))
                    except Exception:
                        pass
                # full-locality (Section 3.2): the literal eight rules
                # cannot remove the base-chain prefixes that push-in
                # introduces on the LHS, yet Example 3.1 and the
                # completeness claim of Theorem 3.1 require that power
                # (e.g. R:[A:B, A:B:C -> A:B:E] is semantically implied
                # by R:[A:B:C, A:D -> A:B:E] but unreachable without
                # it).  We therefore saturate with full-locality as
                # well, matching the six-rule simple system the paper
                # proves equivalent.
                for length in range(1, len(fact.rhs)):
                    x = fact.rhs[:length]
                    try:
                        changed |= self._add(full_locality(fact, x))
                    except Exception:
                        pass

            # singleton: for each base and set path with all attributes
            # derivable from {x}.
            for base in self._bases:
                scope = resolve_base_path(self.schema, base)
                for x in self._scope_paths[base]:
                    x_type = type_at(scope, x)
                    if not isinstance(x_type, SetType):
                        continue
                    attributes = x_type.element.labels
                    attr_paths = [x.child(a) for a in attributes]
                    singleton_bucket = self._derived[(base,
                                                      frozenset({x}))]
                    if all(p in singleton_bucket for p in attr_paths):
                        conclusion = NFD(base, attr_paths, x)
                        changed |= self._add(conclusion)

    # -- queries -----------------------------------------------------------------

    def closure(self, base: Path, lhs: Iterable[Path]) -> frozenset[Path]:
        """All derivable RHS paths for the query ``(base, lhs)``."""
        key = (base, frozenset(lhs))
        if key not in self._derived:
            raise InferenceError(
                f"query {key[0]}:[{sorted(map(str, key[1]))}] is outside "
                "the enumerated space"
            )
        return frozenset(self._derived[key])

    def implies(self, nfd: NFD) -> bool:
        """Is *nfd* derivable by the eight rules?"""
        return nfd.rhs in self.closure(nfd.base, nfd.lhs)
