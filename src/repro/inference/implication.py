"""Convenience API for implication questions.

Thin functional wrappers around :class:`~repro.inference.closure.ClosureEngine`
plus derived notions: equivalence of NFD sets, redundancy, and the set of
all implied dependencies over a bounded syntactic space.
"""

from __future__ import annotations

from typing import Iterable

from ..nfd.nfd import NFD
from ..paths.path import Path
from ..types.schema import Schema
from .closure import ClosureEngine
from .empty_sets import NonEmptySpec

__all__ = [
    "implies",
    "closure",
    "equivalent_sets",
    "redundant_members",
    "implied_keys",
]


def implies(schema: Schema, sigma: Iterable[NFD], nfd: NFD,
            nonempty: NonEmptySpec | None = None) -> bool:
    """Decide ``Sigma |= nfd`` under *schema* (Definition 3.1).

    With the default *nonempty* (everything non-empty) this is the
    Section 3.1 problem; pass an explicit spec for the Section 3.2
    variant.  Build a :class:`ClosureEngine` directly when asking many
    questions against the same ``Sigma``.
    """
    return ClosureEngine(schema, sigma, nonempty).implies(nfd)


def closure(schema: Schema, sigma: Iterable[NFD], base: Path,
            lhs: Iterable[Path],
            nonempty: NonEmptySpec | None = None) -> frozenset[Path]:
    """Compute ``(x0, X, Sigma)*`` relative to *base*."""
    return ClosureEngine(schema, sigma, nonempty).closure(base, lhs)


def equivalent_sets(schema: Schema, sigma1: Iterable[NFD],
                    sigma2: Iterable[NFD],
                    nonempty: NonEmptySpec | None = None) -> bool:
    """True iff the two NFD sets imply each other."""
    first = list(sigma1)
    second = list(sigma2)
    engine1 = ClosureEngine(schema, first, nonempty)
    engine2 = ClosureEngine(schema, second, nonempty)
    return engine1.implies_all(second) and engine2.implies_all(first)


def redundant_members(schema: Schema, sigma: Iterable[NFD],
                      nonempty: NonEmptySpec | None = None) -> list[NFD]:
    """The members of *sigma* implied by the others.

    Note that redundancy is not monotone: removing one redundant member
    can make another non-redundant.  Use
    :func:`repro.analysis.cover.minimal_cover` to actually shrink a set.
    """
    members = list(sigma)
    if not members:
        return []
    engine = ClosureEngine(schema, members, nonempty)
    return [
        candidate
        for index, candidate in enumerate(members)
        if engine.without(index).implies(candidate)
    ]


def implied_keys(schema: Schema, sigma: Iterable[NFD], relation: str,
                 nonempty: NonEmptySpec | None = None) \
        -> list[frozenset[Path]]:
    """All minimal keys of *relation* among its top-level attributes.

    A set ``K`` of top-level attribute paths is a key when it determines
    every top-level attribute (which, by the singleton/locality rules,
    pins the whole tuple).  Minimal keys only are returned, smallest
    first.  Exponential in the attribute count; intended for the modest
    schemas of the paper's setting.
    """
    from itertools import combinations

    engine = ClosureEngine(schema, sigma, nonempty)
    attributes = [Path((label,))
                  for label in schema.element_type(relation).labels]
    base = Path((relation,))
    keys: list[frozenset[Path]] = []
    for size in range(1, len(attributes) + 1):
        for combo in combinations(attributes, size):
            candidate = frozenset(combo)
            if any(key <= candidate for key in keys):
                continue
            closed = engine.closure(base, candidate)
            if all(attribute in closed for attribute in attributes):
                keys.append(candidate)
    return sorted(keys, key=lambda key: (len(key), sorted(map(str, key))))
