"""The Appendix-A counterexample construction (completeness witness).

Given a closure ``(x0, X, Sigma)*``, the construction builds an instance
``I`` that satisfies ``Sigma`` but violates ``x0:[X -> y]`` for every
well-typed ``y`` outside the closure — the heart of the completeness
direction of Theorem 3.1.  The shape follows the paper's pseudo-code:

* one global token value ``val`` is shared by *all* closure paths
  (``value(p) := assignVal(val, p)``), so any two bindings agree wherever
  the closure forces agreement;
* ``assignX_0`` builds a singleton chain from the relation down to the
  base path and places *two* elements in the base set: the pair
  ``(v1, v2)`` that agrees on the closure and differs (via fresh values)
  everywhere else;
* ``assignNew`` gives unconstrained positions fresh values, except that a
  set all of whose attributes lie in the closure receives a second row
  (``newRow``) agreeing exactly on the *locally constant* paths
  ``(p, ∅)*`` — without it, such a set would accidentally collapse to a
  singleton and satisfy dependencies the closure does not imply.

The construction requires infinite base-type domains; ``bool`` paths make
it raise :class:`InferenceError`.  Instances are built without empty
sets, matching the Section 3 assumption.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import InferenceError
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..paths.typing import type_at
from ..types.base import BaseType, SetType, Type
from ..values.build import Instance
from ..values.value import Atom, Record, SetValue, Value
from .closure import ClosureEngine

__all__ = ["CountermodelBuilder", "build_countermodel",
           "find_countermodel"]


class CountermodelBuilder:
    """Builds Appendix-A instances against one :class:`ClosureEngine`."""

    def __init__(self, engine: ClosureEngine):
        self.engine = engine
        self.schema = engine.schema
        self._fresh = 0
        self._values: dict[Path, Value] = {}
        self._closure: frozenset[Path] = frozenset()
        self._token = 0

    # -- machinery ----------------------------------------------------------

    def _type_of(self, path: Path) -> Type:
        relation = path.first
        if len(path) == 1:
            return self.schema.relation_type(relation)
        return type_at(self.schema.element_type(relation), path.tail)

    def _new_value(self, base_type: BaseType) -> Atom:
        self._fresh += 1
        if base_type.name == "int":
            return Atom(self._fresh)
        if base_type.name == "string":
            return Atom(f"v{self._fresh}")
        raise InferenceError(
            "the countermodel construction needs an infinite domain; "
            "bool-typed paths are not supported (the paper assumes "
            "infinite base domains)"
        )

    def _token_value(self, base_type: BaseType) -> Atom:
        if base_type.name == "int":
            return Atom(self._token)
        if base_type.name == "string":
            return Atom(f"v{self._token}")
        raise InferenceError(
            "the countermodel construction needs an infinite domain; "
            "bool-typed paths are not supported"
        )

    def _value(self, path: Path) -> Value:
        """The paper's global ``value(p)``, computed lazily and memoized."""
        if path not in self._values:
            self._values[path] = self._assign_val(path)
        return self._values[path]

    # -- the paper's four functions ------------------------------------------

    def _assign_val(self, path: Path) -> Value:
        """``assignVal(val, p)``: the shared-token value of a path."""
        path_type = self._type_of(path)
        if isinstance(path_type, BaseType):
            return self._token_value(path_type)
        assert isinstance(path_type, SetType)
        element = path_type.element
        rows = []
        for _ in range(2):
            fields = []
            for label in element.labels:
                child = path.child(label)
                if child in self._closure:
                    fields.append((label, self._value(child)))
                else:
                    fields.append((label, self._assign_new(child)))
            rows.append(Record(fields))
        # When every attribute lies in the closure the two rows coincide
        # and the set is a singleton, exactly as in Example A.1's B.
        return SetValue(rows)

    def _assign_new(self, path: Path) -> Value:
        """``assignNew(p)``: fresh values for an unconstrained position."""
        path_type = self._type_of(path)
        if isinstance(path_type, BaseType):
            return self._new_value(path_type)
        assert isinstance(path_type, SetType)
        element = path_type.element
        fields = []
        all_in_closure = True
        for label in element.labels:
            child = path.child(label)
            if child in self._closure:
                fields.append((label, self._value(child)))
            else:
                all_in_closure = False
                fields.append((label, self._assign_new(child)))
        first_row = Record(fields)
        if all_in_closure:
            same_val = self._locally_constant(path)
            return SetValue({first_row, self._new_row(path, same_val)})
        return SetValue({first_row})

    def _locally_constant(self, path: Path) -> frozenset[Path]:
        """``(p, ∅)*``: the paths forced constant within the set at *p*."""
        relative = self.engine.closure(path, ())
        return frozenset(path.concat(q) for q in relative)

    def _new_row(self, path: Path, same_val: frozenset[Path]) -> Record:
        """``newRow(p, sameVal)``: agree on *same_val*, fresh elsewhere."""
        element_type = self._type_of(path)
        assert isinstance(element_type, SetType)
        fields = []
        for label in element_type.element.labels:
            child = path.child(label)
            if child in same_val:
                fields.append((label, self._value(child)))
                continue
            child_type = self._type_of(child)
            if isinstance(child_type, BaseType):
                fields.append((label, self._new_value(child_type)))
            else:
                fields.append(
                    (label, SetValue({self._new_row(child, same_val)}))
                )
        return Record(fields)

    def _assign_x0(self, path: Path, base: Path) -> SetValue:
        """``assignX_0(p)``: singleton chain down to the base, then split."""
        if path == base:
            result = self._assign_val(path)
            assert isinstance(result, SetValue)
            return result
        path_type = self._type_of(path)
        assert isinstance(path_type, SetType)
        fields = []
        for label in path_type.element.labels:
            child = path.child(label)
            if child.is_prefix_of(base):
                fields.append((label, self._assign_x0(child, base)))
            else:
                fields.append((label, self._assign_new(child)))
        return SetValue({Record(fields)})

    # -- public API -----------------------------------------------------------

    def build(self, base: Path, lhs: Iterable[Path]) -> Instance:
        """Construct the instance for the query ``(base, lhs)``.

        The result satisfies every NFD of the engine's ``Sigma`` and
        violates ``base:[lhs -> y]`` for every well-typed ``y`` not in
        the closure (Lemma A.1); the test suite verifies both claims
        semantically.
        """
        lhs_set = frozenset(lhs)
        relative_closure = self.engine.closure(base, lhs_set)
        self._closure = frozenset(base.concat(q) for q in relative_closure)
        self._values = {}
        self._fresh = 0
        self._token = 0
        self._fresh = self._token  # fresh values start above the token

        relations: dict[str, SetValue] = {}
        target = base.first
        relations[target] = self._assign_x0(Path((target,)), base)
        for name in self.schema.relation_names:
            if name == target:
                continue
            other = self._assign_new(Path((name,)))
            assert isinstance(other, SetValue)
            relations[name] = other
        return Instance(self.schema, relations)


def build_countermodel(engine: ClosureEngine, base: Path,
                       lhs: Iterable[Path]) -> Instance:
    """One-shot convenience wrapper around :class:`CountermodelBuilder`."""
    return CountermodelBuilder(engine).build(base, lhs)


def find_countermodel(engine: ClosureEngine, nfd: NFD) -> Instance | None:
    """An instance separating ``Sigma`` from *nfd*, or None if implied.

    When the closure does not contain the NFD's RHS, the Appendix-A
    instance is the separator; when it does, Theorem 3.1 (soundness) says
    none exists.
    """
    nfd.check_well_formed(engine.schema)
    if engine.implies(nfd):
        return None
    return build_countermodel(engine, nfd.base, nfd.lhs)
