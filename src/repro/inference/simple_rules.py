"""The six-rule system for simple NFDs (Section 3.2).

When NFDs are restricted to relation-name bases, push-in and pull-out
disappear and locality must be strengthened to **full-locality**:

    x0:[x:X, Y -> x:z],  x not a proper prefix of any y in Y
    =>  x0:[x, x:X -> x:z]

Full-locality combines pull-out and locality: it drops *arbitrary* paths
outside ``x`` (not just single labels) at the price of adding ``x`` itself
to the LHS.  Example 3.1 of the paper shows a derivation possible with
full-locality but not with plain locality.

This module provides the rule itself, the conversion of any NFD set to
the simple system, and a checker that a derivation uses only the six
simple rules.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import RuleApplicationError
from ..nfd.nfd import NFD
from ..nfd.simple_form import to_simple
from ..paths.path import Path
from .derivation import Derivation

__all__ = [
    "full_locality",
    "to_simple_system",
    "SIMPLE_RULE_NAMES",
    "uses_only_simple_rules",
]

SIMPLE_RULE_NAMES = (
    "reflexivity",
    "augmentation",
    "transitivity",
    "full-locality",
    "singleton",
    "prefix",
)


def full_locality(premise: NFD, x: Path) -> NFD:
    """``x0:[x:X, Y -> x:z]  =>  x0:[x, x:X -> x:z]``.

    *x* must be a non-empty proper prefix of the RHS, and no LHS path may
    have ``x`` as a proper prefix unless it is kept (all such paths *are*
    kept, so the side condition "x is not a proper prefix of any y in Y"
    holds by construction of the partition).
    """
    if x.is_empty:
        raise RuleApplicationError(
            "full-locality", "x must be a non-empty path"
        )
    if not x.is_proper_prefix_of(premise.rhs):
        raise RuleApplicationError(
            "full-locality",
            f"{x} is not a proper prefix of the RHS {premise.rhs}"
        )
    kept = {p for p in premise.lhs if x.is_proper_prefix_of(p)}
    return NFD(premise.base, kept | {x}, premise.rhs)


def to_simple_system(sigma: Iterable[NFD]) -> list[NFD]:
    """Convert every NFD to its canonical simple form.

    The conversion is lossless (Section 2.3), so reasoning in the
    six-rule system over the result is equivalent to reasoning in the
    eight-rule system over the original set.
    """
    return [to_simple(nfd) for nfd in sigma]


def uses_only_simple_rules(derivation: Derivation) -> bool:
    """True iff the derivation avoids push-in/pull-out/locality.

    Derivations in the simple system express locality reasoning through
    ``full-locality`` steps (recorded as transitivity over localized
    facts by the closure engine); the structural rules are the signature
    of the eight-rule system.
    """
    forbidden = {"push-in", "pull-out", "locality"}
    return all(step.rule not in forbidden for step in derivation.steps)
