"""Derivations: machine-checked proof scripts over the NFD rules.

A :class:`Derivation` is a sequence of named steps.  Each step records the
rule used, the premises (given NFDs or earlier steps, referenced by
label), the parameters, and the concluded NFD.  Steps are *checked on
construction* by re-running the rule, so a Derivation that exists is a
valid proof.  :meth:`Derivation.to_text` renders the proof in the style of
the worked example in Section 3.1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import InferenceError
from ..nfd.nfd import NFD
from ..paths.path import Path
from ..types.schema import Schema
from . import rules

__all__ = ["Derivation", "Step"]


class Step:
    """One proof step: ``conclusion`` derived by ``rule`` from premises."""

    __slots__ = ("label", "rule", "premise_labels", "conclusion", "note")

    def __init__(self, label: str, rule: str,
                 premise_labels: tuple[str, ...], conclusion: NFD,
                 note: str = ""):
        self.label = label
        self.rule = rule
        self.premise_labels = premise_labels
        self.conclusion = conclusion
        self.note = note

    def __repr__(self) -> str:
        return f"Step({self.label}: {self.conclusion} by {self.rule})"


class Derivation:
    """A checked sequence of rule applications.

    Usage mirrors the paper's proofs::

        d = Derivation(schema, {"nfd1": f1, "nfd2": f2})
        d.locality("1", "nfd1")
        d.prefix("2", "1", long_path=parse_path("B:C"))
        ...
        d.conclusion("8")   # the proven NFD

    Premises of each step are referenced by the label of an earlier step
    or of a hypothesis.  Every application re-runs the rule, so an invalid
    script raises immediately.
    """

    def __init__(self, schema: Schema,
                 hypotheses: dict[str, NFD] | None = None):
        self.schema = schema
        self._facts: dict[str, NFD] = {}
        self._steps: list[Step] = []
        for label, nfd in (hypotheses or {}).items():
            nfd.check_well_formed(schema)
            self._facts[label] = nfd

    # -- bookkeeping ------------------------------------------------------

    def fact(self, label: str) -> NFD:
        """Look up a hypothesis or a previously concluded step."""
        try:
            return self._facts[label]
        except KeyError:
            raise InferenceError(
                f"unknown premise label {label!r}; known labels: "
                f"{', '.join(self._facts)}"
            ) from None

    @property
    def steps(self) -> list[Step]:
        return list(self._steps)

    def conclusion(self, label: str | None = None) -> NFD:
        """The NFD proved by step *label* (default: the last step)."""
        if label is not None:
            return self.fact(label)
        if not self._steps:
            raise InferenceError("the derivation has no steps yet")
        return self._steps[-1].conclusion

    def _record(self, label: str, rule: str,
                premise_labels: Iterable[str], conclusion: NFD,
                note: str = "") -> NFD:
        if label in self._facts:
            raise InferenceError(f"step label {label!r} is already used")
        conclusion.check_well_formed(self.schema)
        step = Step(label, rule, tuple(premise_labels), conclusion, note)
        self._steps.append(step)
        self._facts[label] = conclusion
        return conclusion

    # -- the eight rules ---------------------------------------------------

    def reflexivity(self, label: str, base: Path,
                    lhs: Iterable[Path], member: Path) -> NFD:
        concluded = rules.reflexivity(base, lhs, member)
        return self._record(label, "reflexivity", (), concluded)

    def augmentation(self, label: str, premise: str,
                     extra: Iterable[Path]) -> NFD:
        concluded = rules.augmentation(self.fact(premise), extra)
        return self._record(label, "augmentation", (premise,), concluded)

    def transitivity(self, label: str, premises: Sequence[str],
                     bridge: str) -> NFD:
        concluded = rules.transitivity(
            [self.fact(p) for p in premises], self.fact(bridge)
        )
        return self._record(label, "transitivity",
                            tuple(premises) + (bridge,), concluded)

    def push_in(self, label: str, premise: str) -> NFD:
        concluded = rules.push_in(self.fact(premise))
        return self._record(label, "push-in", (premise,), concluded)

    def pull_out(self, label: str, premise: str) -> NFD:
        concluded = rules.pull_out(self.fact(premise))
        return self._record(label, "pull-out", (premise,), concluded)

    def locality(self, label: str, premise: str) -> NFD:
        concluded = rules.locality(self.fact(premise))
        return self._record(label, "locality", (premise,), concluded)

    def singleton(self, label: str, premises: Sequence[str]) -> NFD:
        concluded = rules.singleton(
            [self.fact(p) for p in premises], self.schema
        )
        return self._record(label, "singleton", tuple(premises), concluded)

    def prefix(self, label: str, premise: str, long_path: Path) -> NFD:
        concluded = rules.prefix(self.fact(premise), long_path)
        return self._record(label, "prefix", (premise,), concluded)

    # -- the Section 3.2 extension used by compiled proofs -----------------

    def full_locality(self, label: str, premise: str, x: Path) -> NFD:
        """Full-locality (Section 3.2's six-rule system; see DESIGN.md
        3.2.1 for why compiled proofs need it)."""
        from .simple_rules import full_locality as _full_locality
        concluded = _full_locality(self.fact(premise), x)
        return self._record(label, "full-locality", (premise,),
                            concluded)

    # -- rendering ---------------------------------------------------------

    def to_text(self) -> str:
        """Render the proof in the numbered style of Section 3.1."""
        lines: list[str] = []
        for step in self._steps:
            if step.premise_labels:
                premises = " of " + ", ".join(
                    f"({p})" for p in step.premise_labels
                )
            else:
                premises = ""
            line = (f"{step.label}. {step.conclusion}  "
                    f"by {step.rule}{premises}")
            if step.note:
                line += f"  -- {step.note}"
            lines.append(line)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._steps)
